"""E10 — crossover: when does hierarchy-awareness matter?

Sweeps the cost-multiplier spread ``cm(0) / cm(1)`` from 1 (uniform
metric — plain k-BGP, where flat partitioning is already the right
algorithm) upward.  Expected shape: at ratio 1 the flat baseline matches
hierarchy-aware methods; as the spread grows, the gap between
hierarchy-oblivious (``flat_identity``) and hierarchy-aware (``hgp``,
``flat_quotient``) placements widens roughly linearly in the spread,
because every cross-socket edge's penalty scales with it.
"""

from __future__ import annotations


from repro import Hierarchy, SolverConfig
from repro.bench import Table, make_instance, run_method, save_result


def _experiment() -> Table:
    table = Table(
        ["cm_ratio", "method", "cost", "gap_vs_identity"],
        title="E10: cost vs cm(0)/cm(1) spread (2x4, blocks family)",
    )
    for ratio in (1.0, 2.0, 5.0, 10.0, 20.0):
        hier = Hierarchy([2, 4], [3.0 * ratio, 3.0, 0.0])
        inst = make_instance("blocks", 28, hier, seed=41)
        costs = {}
        for method in ("flat_identity", "flat_quotient", "hgp"):
            p = run_method(
                method, inst, seed=0, config=SolverConfig(seed=0, n_trees=4)
            )
            costs[method] = p.cost()
        for method in ("flat_identity", "flat_quotient", "hgp"):
            gap = (
                0.0
                if costs["flat_identity"] == 0
                else 1.0 - costs[method] / costs["flat_identity"]
            )
            table.add_row([ratio, method, costs[method], gap])
    return table


def test_e10_cm_sweep(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E10_cm_sweep", table.show(), results_dir)
    # Shape: the hgp-vs-identity gap is non-trivial at large spreads and
    # weakly grows from the uniform-metric corner to the widest spread.
    gaps = {
        (float(r), m): float(g)
        for r, m, _c, g in table.rows
    }
    assert gaps[(20.0, "hgp")] >= gaps[(1.0, "hgp")] - 0.05
    assert gaps[(20.0, "hgp")] > 0.1
