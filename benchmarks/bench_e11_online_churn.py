"""E11 (extension) — online placement under churn vs. migration budget.

Beyond the paper: stream systems see continuous task arrivals and
departures, and migrating a running operator is expensive.  This
experiment replays a clustered churn trace under re-optimisation
policies of increasing aggressiveness and reports the mean/final Eq. (1)
cost and migrations paid.

Expected shape: mean cost decreases monotonically as the policy gets
more aggressive (never → small budget → unlimited), and most of the
benefit arrives with a small migration budget — the anytime behaviour a
production scheduler wants.
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig
from repro.bench import Table, save_result
from repro.streaming.online import ChurnEvent, simulate_churn
from repro.utils.rng import ensure_rng


def make_churn_trace(n_events: int, n_clusters: int, seed: int) -> list[ChurnEvent]:
    """Clustered arrivals with 25% departures, deterministic per seed."""
    rng = ensure_rng(seed)
    events: list[ChurnEvent] = []
    live: list[int] = []
    next_id = 0
    for _ in range(n_events):
        if live and rng.random() < 0.25:
            t = live.pop(int(rng.integers(0, len(live))))
            events.append(ChurnEvent("depart", t))
        else:
            cluster = next_id % n_clusters
            intra = tuple(
                (u, 5.0) for u in live if u % n_clusters == cluster
            )[:4]
            inter = tuple((u, 0.3) for u in live if u % n_clusters != cluster)[:2]
            events.append(
                ChurnEvent(
                    "arrive", next_id, float(rng.uniform(0.1, 0.3)), intra + inter
                )
            )
            live.append(next_id)
            next_id += 1
    return events


def _experiment() -> Table:
    table = Table(
        ["policy", "mean_cost", "final_cost", "migrations", "reopts", "rejections"],
        title="E11: online churn vs re-optimisation policy (extension)",
    )
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    events = make_churn_trace(48, 4, seed=3)
    cfg = SolverConfig(n_trees=2, refine=False, seed=0)
    policies = [
        ("never", 0, None),
        ("period12_budget2", 12, 2),
        ("period12_budget6", 12, 6),
        ("period12_unlimited", 12, None),
    ]
    for name, period, budget in policies:
        result = simulate_churn(
            hier, events, reopt_period=period, migration_budget=budget, config=cfg
        )
        table.add_row(
            [
                name,
                float(np.mean(result.costs)),
                result.costs[-1],
                result.migrations,
                result.counters.reopt_calls,
                result.counters.rejections,
            ]
        )
    return table


def test_e11_online_churn(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E11_online_churn", table.show(), results_dir)
    means = {row[0]: float(row[1]) for row in table.rows}
    finals = {row[0]: float(row[2]) for row in table.rows}
    # Unlimited re-optimisation dominates never on both metrics; small
    # budgets reliably improve the *final* state (the mean can dip:
    # early migrations become stale as more tasks arrive — an honest
    # finding recorded in EXPERIMENTS.md).
    assert means["period12_unlimited"] <= means["never"] + 1e-9
    assert finals["period12_unlimited"] <= finals["never"] + 1e-9
    assert finals["period12_budget6"] <= finals["never"] + 1e-9
