"""E12 (extension) — end-to-end pipeline wall-clock at practical sizes.

The paper's DP is pseudo-polynomial (E4 measures the blow-up axes); the
*practical* question is what instance sizes the engineering defaults
(auto grid + beam + heuristic trees) make interactive.  This experiment
sweeps the vertex count at fixed hierarchy and reports per-phase wall
clock plus the solution quality proxy (cost vs. the greedy baseline).

Expected shape: well-under-quadratic wall-clock growth at fixed
cells-per-vertex (beam caps the DP state space), and a stable quality
advantage over greedy across sizes.
"""

from __future__ import annotations

import time


from repro import SolverConfig, solve_hgp
from repro.baselines import placement_baselines
from repro.bench import Table, make_instance, save_result, standard_hierarchy


def _experiment() -> Table:
    table = Table(
        ["n", "trees_s", "dp_s", "total_s", "hgp_cost", "greedy_cost", "advantage"],
        title="E12: pipeline wall-clock and quality vs instance size (defaults)",
    )
    hier = standard_hierarchy("2x8")
    greedy = placement_baselines()["greedy"]
    for n_target in (32, 64, 128, 256):
        inst = make_instance("blocks", n_target, hier, fill=0.55, skew=0.4, seed=5)
        t0 = time.perf_counter()
        res = solve_hgp(
            inst.graph,
            inst.hierarchy,
            inst.demands,
            SolverConfig(seed=0, n_trees=4, beam_width=128),
        )
        total = time.perf_counter() - t0
        g_cost = greedy(inst.graph, inst.hierarchy, inst.demands, seed=0).cost()
        table.add_row(
            [
                inst.graph.n,
                res.stopwatch.total("trees"),
                res.stopwatch.total("dp"),
                total,
                res.cost,
                g_cost,
                g_cost / res.cost if res.cost > 0 else float("inf"),
            ]
        )
    return table


def test_e12_pipeline_scale(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E12_pipeline_scale", table.show(), results_dir)
    for row in table.rows:
        assert float(row[6]) >= 1.0  # hgp never loses to greedy here
    # Wall clock stays interactive at the largest size.
    assert float(table.rows[-1][3]) < 120.0
