"""E13 (extension) — how machine shape changes the placement problem.

Same 16 processors, four shapes: flat (k-BGP), 2 sockets × 8, 4 × 4,
and a 3-level 4 × 2 × 2.  For comparability every hierarchy uses
``cm(0) = 16`` at the root and geometric decay toward the leaves, so the
*worst* possible cost (all edges at root distance) is identical across
shapes.

Expected shape: the HGP solver's advantage over the honest
hierarchy-oblivious baseline (``flat_shuffled``) grows with hierarchy
depth — deeper machines give locality more levels to exploit — while the
flat shape reduces to k-BGP where the two coincide up to partition
quality.
"""

from __future__ import annotations


from repro import Hierarchy, SolverConfig
from repro.bench import Table, make_instance, run_method, save_result

SHAPES = {
    "flat16": Hierarchy([16], [16.0, 0.0]),
    "2x8": Hierarchy([2, 8], [16.0, 4.0, 0.0]),
    "4x4": Hierarchy([4, 4], [16.0, 4.0, 0.0]),
    "4x2x2": Hierarchy([4, 2, 2], [16.0, 8.0, 4.0, 0.0]),
}


def _experiment() -> Table:
    table = Table(
        ["shape", "h", "method", "cost", "violation"],
        title="E13: same 16 processors, different hierarchy shapes",
    )
    for name, hier in SHAPES.items():
        inst = make_instance("blocks", 32, hier, fill=0.55, skew=0.3, seed=29)
        for method in ("flat_shuffled", "recursive_bisection", "hgp"):
            p = run_method(
                method, inst, seed=0, config=SolverConfig(seed=0, n_trees=4)
            )
            table.add_row([name, hier.h, method, p.cost(), p.max_violation()])
    return table


def test_e13_hierarchy_shapes(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E13_hierarchy_shapes", table.show(), results_dir)
    costs: dict[tuple, float] = {}
    for shape, _h, method, cost, _v in table.rows:
        costs[(shape, method)] = float(cost)
    # hgp never loses to the oblivious baseline on any shape ...
    for shape in SHAPES:
        assert costs[(shape, "hgp")] <= costs[(shape, "flat_shuffled")] + 1e-9
    # ... and the relative advantage on the deepest shape beats the
    # flat shape (locality pays more where there are more levels).
    def advantage(shape):
        return costs[(shape, "flat_shuffled")] / max(costs[(shape, "hgp")], 1e-9)

    assert advantage("4x2x2") >= advantage("flat16") * 0.9
