"""E14 (extension) — cluster recovery quality by method.

On planted-partition instances at high fill (so blocks *must* spread
across hierarchy groups), measure how well each placement method
recovers the ground-truth blocks at socket granularity (adjusted Rand
index of the level-1 assignment), alongside the cost and cut-fraction
columns.

Expected shape: hierarchy-aware methods recover the blocks (ARI ≈ 1)
when the signal is strong; locality-oblivious ones hover near ARI 0;
recovery degrades gracefully as the planted signal weakens.
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig
from repro.bench import Table, block_recovery, save_result
from repro.bench.instances import run_method, Instance
from repro.graph.generators import planted_partition, random_demands


def _experiment() -> Table:
    table = Table(
        ["p_out", "method", "ari_group", "cut_fraction", "cost"],
        title="E14: planted-block recovery at socket granularity (2x4, fill 0.9)",
    )
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    blocks_true = np.arange(32) // 16
    for p_out in (0.02, 0.1, 0.3):
        g = planted_partition(2, 16, 0.8, p_out, seed=13)
        d = random_demands(g.n, hier.total_capacity, fill=0.9, skew=0.2, seed=14)
        inst = Instance(f"sbm-{p_out}", g, hier, d, 13)
        for method in ("flat_shuffled", "recursive_bisection", "hgp"):
            p = run_method(
                method, inst, seed=0, config=SolverConfig(seed=0, n_trees=4)
            )
            scores = block_recovery(p, blocks_true)
            table.add_row(
                [p_out, method, scores["ari_group"], scores["cut_fraction"], p.cost()]
            )
    return table


def test_e14_block_recovery(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E14_block_recovery", table.show(), results_dir)
    scores = {(float(r[0]), r[1]): float(r[2]) for r in table.rows}
    # Strong signal: hgp recovers the blocks at socket level.
    assert scores[(0.02, "hgp")] > 0.8
    # And always at least matches the oblivious baseline.
    for p_out in (0.02, 0.1, 0.3):
        assert scores[(p_out, "hgp")] >= scores[(p_out, "flat_shuffled")] - 0.05
