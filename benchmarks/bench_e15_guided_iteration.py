"""E15 (extension) — warm-started (placement-guided) iteration ablation.

Measures whether re-solving on decomposition trees derived from the
incumbent placement improves quality, across base-ensemble strengths.

Expected shape: iterated cost ≤ plain cost always (the incumbent stays a
candidate); the improvement is largest when the base ensemble is weak
(1 tree, no refinement) and disappears as the base gets strong — i.e.
guided iteration is a *recovery* mechanism, cheaper than enlarging the
ensemble.
"""

from __future__ import annotations


from repro import SolverConfig
from repro.bench import Table, make_instance, save_result, standard_hierarchy
from repro.core.solver import solve_hgp
from repro.decomposition.guided import solve_hgp_iterated


def _experiment() -> Table:
    table = Table(
        ["base", "family", "plain_cost", "iterated_cost", "improvement"],
        title="E15: placement-guided iteration vs base ensemble strength",
    )
    hier = standard_hierarchy("2x4")
    bases = {
        "weak(1 tree, no refine)": SolverConfig(
            seed=0, n_trees=1, refine=False, tree_methods=("contraction",)
        ),
        "default(4 trees)": SolverConfig(seed=0, n_trees=4),
    }
    for base_name, cfg in bases.items():
        for family in ("blocks", "powerlaw"):
            inst = make_instance(family, 32, hier, fill=0.65, skew=0.4, seed=37)
            plain = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg)
            iterated = solve_hgp_iterated(
                inst.graph, inst.hierarchy, inst.demands, cfg, rounds=3
            )
            gain = 0.0 if plain.cost == 0 else 1.0 - iterated.cost / plain.cost
            table.add_row([base_name, family, plain.cost, iterated.cost, gain])
    return table


def test_e15_guided_iteration(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E15_guided_iteration", table.show(), results_dir)
    for _base, _family, plain, iterated, _gain in table.rows:
        assert float(iterated) <= float(plain) + 1e-9
