"""E16 (extension) — sensitivity to demand skew.

Real stream operators have heavily skewed CPU demands (a parser dwarfs a
filter); skew stresses the quantization (one vertex spans many grid
cells) and the repair's bin packing (big items).  Sweeps the lognormal
sigma of the demand distribution and reports cost, violation and the
grid's effective resolution.

Expected shape: violations stay within the Theorem-1 envelope at every
skew; cost rises mildly with skew (placement freedom shrinks as a few
tasks pin whole leaves); the solver never fails on feasible instances.
"""

from __future__ import annotations


from repro import SolverConfig, solve_hgp
from repro.bench import Table, save_result, standard_hierarchy
from repro.graph.generators import planted_partition, random_demands


def _experiment() -> Table:
    table = Table(
        ["skew_sigma", "d_max", "cost", "violation", "bound"],
        title="E16: demand-skew sensitivity (2x4, blocks, fill 0.6)",
    )
    hier = standard_hierarchy("2x4")
    g = planted_partition(4, 8, 0.7, 0.05, seed=19)
    for skew in (0.0, 0.5, 1.0, 1.5, 2.0):
        d = random_demands(
            g.n, hier.total_capacity, fill=0.6, skew=skew, seed=20
        )
        res = solve_hgp(g, hier, d, SolverConfig(seed=0, n_trees=4))
        bound = (1 + res.grid.epsilon) * (1 + hier.h)
        table.add_row(
            [skew, float(d.max()), res.cost, res.placement.max_violation(), bound]
        )
    return table


def test_e16_skew_sensitivity(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E16_skew_sensitivity", table.show(), results_dir)
    for _skew, _dmax, _cost, violation, bound in table.rows:
        assert float(violation) <= float(bound) + 1e-9
