"""E17 — warm-path reuse through the content-addressed solver cache.

Two measurements on one mid-size instance whose embedding stage is
deliberately flow-heavy (spectral + mincut + gomory-hu builders, so the
cold solve pays eigensolves *and* ~n max-flow calls):

* **cold vs warm batch solve** — the first ``run_pipeline`` populates
  the cache, the second must hit it, skip tree construction entirely
  (asserted via the ``trees`` span's cache counters), return bit-for-bit
  identical placements/costs, and finish at least 2x faster;
* **20-call reoptimize churn loop** — an :class:`OnlinePlacer` whose
  live graph does not change between calls: every re-optimisation after
  the first must reuse the cached ensemble (19/20 hits).

The machine-readable companion (``BENCH_E17_cache_warm.json``) carries a
``meta`` block with the measured ``warm_speedup`` and ``hit_rate`` so
``tools/bench_regress.py --min-meta`` can gate CI on cache
effectiveness, plus one point per phase (cold / warm) whose embedded run
reports let the cost gate prove zero drift.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Hierarchy, SolverConfig, run_pipeline
from repro.bench import Table, save_result, save_result_json
from repro.cache import get_cache
from repro.obs.exporter import maybe_start_from_env
from repro.graph.generators import planted_partition, random_demands
from repro.streaming.online import OnlinePlacer

#: Flow-heavy ensemble: tree building dominates the cold solve, which is
#: exactly the regime the cache is built for.
TREE_METHODS = ("spectral", "mincut", "gomory_hu")
N_TREES = 6
SEED = 17


def _instance():
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(8, 8, 0.7, 0.06, seed=SEED)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=SEED)
    return g, hier, d


def _config():
    return SolverConfig(
        seed=SEED,
        n_trees=N_TREES,
        tree_methods=TREE_METHODS,
        beam_width=64,
        refine=False,
    )


def _experiment():
    # Scrapeable while running: REPRO_METRICS_PORT=9091 exposes /metrics
    # (with worker-merged totals) for the duration of the experiment.
    exporter = maybe_start_from_env()
    try:
        return _experiment_body()
    finally:
        if exporter is not None:
            exporter.stop()


def _experiment_body():
    g, hier, d = _instance()
    cfg = _config()
    cache = get_cache()
    cache.clear()  # both tiers: the cold run must be genuinely cold

    t0 = time.perf_counter()
    cold = run_pipeline(g, hier, d, cfg)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_pipeline(g, hier, d, cfg)
    warm_s = time.perf_counter() - t0

    # Bit-for-bit determinism under caching.
    assert warm.cost == cold.cost
    assert np.array_equal(warm.placement.leaf_of, cold.placement.leaf_of)
    assert warm.tree_costs == cold.tree_costs
    # The warm embed stage skipped tree construction entirely.
    assert cold.telemetry.root.lookup("trees").counters.get("cache_misses") == 1.0
    assert warm.telemetry.root.lookup("trees").counters.get("cache_hits") == 1.0

    # Churn loop: 20 re-optimisations of an unchanged live graph.
    live_hier = Hierarchy([2, 4], [10.0, 3.0, 0.0], leaf_capacity=4.0)
    placer = OnlinePlacer(live_hier, cfg)
    rng = np.random.default_rng(SEED)
    for task in range(24):
        edges = tuple(
            (other, 1.0) for other in range(task) if rng.random() < 0.3
        )
        placer.arrive(task, 0.5, edges)
    t0 = time.perf_counter()
    for _ in range(20):
        placer.reoptimize()
    reopt_s = time.perf_counter() - t0
    assert placer.counters.tree_cache_misses == 1
    assert placer.counters.tree_cache_hits == 19

    trees_stats = cache.stats.by_kind["trees"]
    hit_rate = trees_stats["hits"] / (trees_stats["hits"] + trees_stats["misses"])
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    table = Table(
        ["phase", "time_s", "cost", "cache_hits", "cache_misses"],
        title="E17: cold vs warm solve through the solver cache",
    )
    table.add_row(["cold", cold_s, cold.cost, 0, 1])
    table.add_row(["warm", warm_s, warm.cost, 1, 0])
    table.add_row(
        [
            "reopt_x20",
            reopt_s,
            placer.cost(),
            placer.counters.tree_cache_hits,
            placer.counters.tree_cache_misses,
        ]
    )

    points = [
        {
            "sweep": phase,
            "n": g.n,
            "h": hier.h,
            "grid_cells": 4 * g.n,
            "time_s": secs,
            "cost": result.cost,
            "report": result.report(phase=phase).to_dict(),
        }
        for phase, secs, result in (("cold", cold_s, cold), ("warm", warm_s, warm))
    ]
    meta = {
        "warm_speedup": warm_speedup,
        "hit_rate": hit_rate,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "reopt20_s": reopt_s,
        "reopt_hits": placer.counters.tree_cache_hits,
        "cost_drift": abs(warm.cost - cold.cost),
    }
    return table, points, meta


def test_e17_cache_warm(benchmark, results_dir):
    table, points, meta = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E17_cache_warm", table.show(), results_dir)
    save_result_json(
        "BENCH_E17_cache_warm",
        {
            "experiment": "E17_cache_warm",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    # Acceptance: warm solve at least 2x faster with zero cost drift.
    assert meta["cost_drift"] == 0.0
    assert meta["warm_speedup"] >= 2.0, meta
    assert meta["hit_rate"] > 0.0


def test_e17_warm_solve_throughput(benchmark):
    """Wall-clock of one warm solve (the pytest-benchmark headline)."""
    g, hier, d = _instance()
    cfg = _config()
    run_pipeline(g, hier, d, cfg)  # prime the cache
    benchmark(lambda: run_pipeline(g, hier, d, cfg))
