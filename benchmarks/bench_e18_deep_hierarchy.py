"""E18 — the bounded/tiled merge kernel on deep hierarchies.

The ``O(n · D^{3h+2})`` state space makes hierarchy height the DP's
hardest axis (E4's ``h`` sweep).  This experiment pins the merge
kernel's effect exactly there: for ``h ∈ {3, 4}`` it solves the same
instance with

* the **legacy** kernel (untiled, unbounded — the pre-kernel merge
  semantics, still available as a :class:`DPConfig`), and
* the **default** kernel (tiled + incumbent-bound pruning), run twice —
  cold, then warm — so the headline per-``h`` speedup is measured
  against a warmed process.

Costs must be identical across all three runs per height (the kernel's
contract), and the machine-readable companion
(``BENCH_E18_deep_hierarchy.json``) carries a ``meta`` block with
``h3_speedup`` / ``h4_speedup`` plus the kernel counters
(``states_max`` / ``merges`` / ``bound_pruned`` / ``table_peak_bytes``)
so ``tools/bench_regress.py --min-meta`` can gate both the speedup and
the footprint in CI.
"""

from __future__ import annotations

import time

from repro import Hierarchy
from repro.bench import Table, save_result, save_result_json
from repro.core.telemetry import MemberRecord, Telemetry
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import planted_partition, random_demands
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPConfig, DPStats, solve_rhgpt
from repro.hgpt.quantize import DemandGrid
from repro.obs.exporter import maybe_start_from_env

SEED = 18

#: The pre-kernel merge semantics (the baseline of the speedup).
LEGACY = DPConfig(tile_size=0, bound_pruning=False, parallel_subtrees=False)

#: Height sweep: (h, hierarchy, grid budget).  h=4 uses a smaller grid
#: so the legacy kernel stays tractable inside a CI run.
SWEEP = (
    (3, Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0]), 144),
    (4, Hierarchy([2, 2, 2, 2], [16.0, 8.0, 4.0, 1.0, 0.0]), 72),
)


def _solve(bt, hier, grid, kernel):
    caps = [grid.caps[j] for j in range(1, hier.h + 1)]
    norm, _ = hier.normalized()
    deltas = [0.0] + [norm.cm[k - 1] - norm.cm[k] for k in range(1, hier.h + 1)]
    stats = DPStats()
    t0 = time.perf_counter()
    solution = solve_rhgpt(
        bt, caps, deltas, beam_width=None, stats=stats, dp_config=kernel
    )
    return time.perf_counter() - t0, solution, stats


def _experiment():
    # Scrapeable while running: REPRO_METRICS_PORT=9091 exposes /metrics
    # for the duration of the sweep (see repro.obs.exporter).
    exporter = maybe_start_from_env()
    try:
        return _experiment_body()
    finally:
        if exporter is not None:
            exporter.stop()


def _experiment_body():
    g = planted_partition(6, 6, 0.6, 0.05, seed=1)
    table = Table(
        ["h", "kernel", "time_s", "cost", "states_max", "merges",
         "bound_pruned", "table_peak_bytes"],
        title="E18: deep-hierarchy DP, legacy vs bounded/tiled kernel",
    )
    points = []
    meta = {}

    for h, hier, budget in SWEEP:
        d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.5, seed=3)
        grid = DemandGrid.from_budget(hier, d, budget, slack=0.25)
        q = grid.quantize(d)
        tree = spectral_decomposition_tree(g, seed=0)
        bt = binarize(tree, q)

        legacy_s, legacy_sol, legacy_stats = _solve(bt, hier, grid, LEGACY)
        cold_s, cold_sol, _cold_stats = _solve(bt, hier, grid, None)
        warm_s, warm_sol, warm_stats = _solve(bt, hier, grid, None)

        # The kernel's contract: identical costs, every knob combination.
        assert cold_sol.cost == legacy_sol.cost
        assert warm_sol.cost == legacy_sol.cost

        for kernel, secs, stats in (
            ("legacy", legacy_s, legacy_stats),
            ("default_cold", cold_s, _cold_stats),
            ("default_warm", warm_s, warm_stats),
        ):
            table.add_row(
                [h, kernel, secs, warm_sol.cost, stats.states_max,
                 stats.merges, stats.bound_pruned, stats.table_peak_bytes]
            )
            tel = Telemetry("bench")
            tel.add_seconds("dp", secs, 1)
            tel.record_member(
                MemberRecord(
                    index=0,
                    method="spectral",
                    dp_cost=float(warm_sol.cost),
                    dp_seconds=secs,
                    dp_nodes=stats.nodes,
                    dp_states_total=stats.states_total,
                    dp_states_max=stats.states_max,
                    dp_merges=stats.merges,
                    dp_tiles=stats.tiles,
                    dp_bound_pruned=stats.bound_pruned,
                    dp_table_peak_bytes=stats.table_peak_bytes,
                )
            )
            points.append(
                {
                    "sweep": kernel,
                    "n": g.n,
                    "h": h,
                    "grid_cells": budget,
                    "time_s": secs,
                    "states_max": stats.states_max,
                    "merges": stats.merges,
                    "bound_pruned": stats.bound_pruned,
                    "table_peak_bytes": stats.table_peak_bytes,
                    "report": tel.report(
                        config={"kernel": kernel, "h": h, "grid_cells": budget}
                    ).to_dict(),
                }
            )
        meta[f"h{h}_speedup"] = legacy_s / warm_s if warm_s > 0 else float("inf")
        meta[f"h{h}_legacy_s"] = legacy_s
        meta[f"h{h}_warm_s"] = warm_s
        meta[f"h{h}_states_max"] = warm_stats.states_max
        meta[f"h{h}_merges"] = warm_stats.merges
        meta[f"h{h}_bound_pruned"] = warm_stats.bound_pruned
        meta[f"h{h}_table_peak_bytes"] = warm_stats.table_peak_bytes
        meta[f"h{h}_peak_shrink"] = (
            legacy_stats.table_peak_bytes / warm_stats.table_peak_bytes
            if warm_stats.table_peak_bytes
            else float("inf")
        )
    return table, points, meta


def test_e18_deep_hierarchy(benchmark, results_dir):
    table, points, meta = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E18_deep_hierarchy", table.show(), results_dir)
    save_result_json(
        "BENCH_E18_deep_hierarchy",
        {
            "experiment": "E18_deep_hierarchy",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    # Acceptance: the bounded kernel beats the legacy merge on both
    # depths and prunes real work (CI re-gates via --min-meta floors).
    # Measured ~10x (h=3) and ~5.5x (h=4) on the reference box; the
    # floors leave headroom for noisy CI runners.
    assert meta["h3_speedup"] >= 5.0, meta
    assert meta["h4_speedup"] >= 3.5, meta
    assert meta["h3_bound_pruned"] > 0
    assert meta["h4_bound_pruned"] > 0
    assert meta["h3_peak_shrink"] > 1.0


def test_e18_deep_solve_throughput(benchmark):
    """Wall-clock of one h=3 deep solve (the pytest-benchmark headline)."""
    g = planted_partition(6, 6, 0.6, 0.05, seed=1)
    h, hier, budget = SWEEP[0]
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.5, seed=3)
    grid = DemandGrid.from_budget(hier, d, budget, slack=0.25)
    bt = binarize(spectral_decomposition_tree(g, seed=0), grid.quantize(d))
    benchmark.pedantic(
        lambda: _solve(bt, hier, grid, None), rounds=1, iterations=1
    )
