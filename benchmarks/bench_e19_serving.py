"""E19 — placement service under 2x open-loop overload.

The robustness headline for ``repro serve``: an in-process server is
stormed with an open-loop, duplicate-heavy, mixed-priority trace whose
*unique-work* arrival rate is ~2x the measured solve capacity, and the
gates assert the overload contract rather than raw throughput:

* ``sheds >= 1`` with ``zero_deaths = 1`` — admission control turned
  the overload into fast 503s; the server (IO loop + dispatcher)
  survived the storm.
* ``dedupe_rate >= 0.5`` — the duplicate-heavy half of the trace was
  absorbed by coalescing + the response cache instead of the solver.
* ``interactive_p99_bounded = 1`` — interactive latency stayed inside
  the request SLO even while batch traffic queued behind it.
* ``zero_drift = 1`` — every post-storm served result is bit-identical
  (cost and placement vector) to a cold single-shot ``run_pipeline`` of
  the same instance: overload handling never changes answers.

The traffic engine is ``tools/loadgen.py`` (imported, not shelled out),
so the CI smoke and this benchmark measure the same trace semantics.
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path

import numpy as np

from repro import run_pipeline
from repro.bench import Table, save_result, save_result_json
from repro.cache import reset_cache
from repro.core.config import SolverConfig
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.obs.exporter import maybe_start_from_env
from repro.serve import PlacementClient, PlacementServer, ServeConfig

SEED = 19
N_INSTANCES = 4
N_VERTS = 32
DURATION_S = 8.0
DUP_FRAC = 0.5
INTERACTIVE_FRAC = 0.7
DEADLINE_S = 5.0
QUEUE_CAPACITY = 8
OVERLOAD_FACTOR = 2.0

_TOOLS = Path(__file__).resolve().parent.parent / "tools"
_spec = importlib.util.spec_from_file_location(
    "repro_loadgen", _TOOLS / "loadgen.py"
)
loadgen = importlib.util.module_from_spec(_spec)
sys.modules["repro_loadgen"] = loadgen  # dataclasses resolve via sys.modules
_spec.loader.exec_module(loadgen)


def _solver() -> SolverConfig:
    return SolverConfig(
        seed=SEED,
        n_trees=2,
        n_jobs=2,
        tree_methods=("contraction",),
        refine=False,
        resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
    )


def _decode(payload):
    g = Graph(
        payload["graph"]["n"], [tuple(e) for e in payload["graph"]["edges"]]
    )
    hier = Hierarchy(
        payload["hierarchy"]["degrees"],
        payload["hierarchy"]["cm"],
        leaf_capacity=payload["hierarchy"]["leaf_capacity"],
    )
    return g, hier, np.asarray(payload["demands"], dtype=np.float64)


def _experiment():
    exporter = maybe_start_from_env()
    try:
        return _experiment_body()
    finally:
        if exporter is not None:
            exporter.stop()


def _experiment_body():
    payloads = loadgen.make_instances(N_INSTANCES, N_VERTS, SEED)

    # Cold single-shot references, solved before any server exists —
    # the bit-identity yardstick for everything the service returns.
    reset_cache()
    refs, points = [], []
    for i, payload in enumerate(payloads):
        g, hier, d = _decode(payload)
        t0 = time.perf_counter()
        r = run_pipeline(g, hier, d, _solver(), path="serve")
        dt = time.perf_counter() - t0
        refs.append(
            {"cost": r.cost, "leaf_of": r.placement.leaf_of.tolist()}
        )
        points.append(
            {
                "sweep": f"ref_i{i}",
                "n": g.n,
                "h": hier.h,
                "grid_cells": 4 * g.n,
                "time_s": dt,
                "cost": r.cost,
                "report": r.report(phase=f"ref_i{i}").to_dict(),
            }
        )

    reset_cache()  # the server starts as cold as the references did
    server = PlacementServer(
        ServeConfig(
            port=0,
            queue_capacity=QUEUE_CAPACITY,
            default_deadline_s=DEADLINE_S,
            solver=_solver(),
        )
    ).start()
    try:
        client = PlacementClient(server.url, timeout=120.0)

        # Measure warm capacity on distinct probes (negative perturb
        # keys can't collide with the storm trace).
        probe_times = []
        for j in range(4):
            probe = loadgen.perturb_demands(payloads[0], -(j + 1))
            probe["deadline_s"] = 60.0
            t0 = time.perf_counter()
            assert client.solve_raw(probe).status == 200
            probe_times.append(time.perf_counter() - t0)
        solve_s = max(5e-3, sum(probe_times[1:]) / (len(probe_times) - 1))

        unique_frac = 1.0 - DUP_FRAC
        rate = min(300.0, OVERLOAD_FACTOR / solve_s / unique_frac)
        n_requests = max(16, int(rate * DURATION_S))
        trace = loadgen.make_trace(
            n_requests, N_INSTANCES, DUP_FRAC, INTERACTIVE_FRAC, SEED
        )
        load = loadgen.run_load(
            server.url,
            payloads,
            trace,
            rate,
            deadline_s=DEADLINE_S,
            timeout_s=120.0,
        )
        summary = load.summary()

        # Survival: both server threads still up, health endpoint sane.
        alive = (
            server._loop_thread.is_alive()
            and server._dispatcher.is_alive()
            and client.healthz().status == 200
        )

        # Post-storm bit-identity against the cold references.
        drift = 0
        for payload, ref in zip(payloads, refs):
            check = dict(payload)
            check["deadline_s"] = 60.0
            resp = client.solve_raw(check)
            if resp.status != 200:
                drift += 1
                continue
            body = resp.json()
            if body["cost"] != ref["cost"] or body["leaf_of"] != ref["leaf_of"]:
                drift += 1
        stats = server.stats()
    finally:
        server.drain(timeout=60.0)

    p99 = summary["interactive_p99_s"]
    meta = {
        "sheds": summary["shed"],
        "shed_rate": summary["shed_rate"],
        "zero_deaths": 1 if alive and summary["errors"] == 0 else 0,
        "dedupe_rate": summary["dedupe_rate"],
        "coalesced_total": stats["coalesced_total"],
        "zero_drift": 1 if drift == 0 else 0,
        "interactive_p99_s": p99,
        "interactive_p99_bounded": 1 if p99 <= DEADLINE_S + 1.0 else 0,
        "batch_p99_s": summary["batch_p99_s"],
        "qps_sent": summary["qps_sent"],
        "qps_ok": summary["qps_ok"],
        "warm_solve_s": solve_s,
        "overload_factor": OVERLOAD_FACTOR,
        "duration_s": DURATION_S,
        "requests": summary["sent"],
    }

    table = Table(
        ["metric", "value"],
        title="E19: placement service under 2x open-loop overload",
    )
    for key in (
        "requests",
        "qps_sent",
        "qps_ok",
        "sheds",
        "shed_rate",
        "dedupe_rate",
        "interactive_p99_s",
        "batch_p99_s",
        "zero_deaths",
        "zero_drift",
    ):
        table.add_row([key, meta[key]])
    return table, points, meta


def test_e19_serving(benchmark, results_dir):
    table, points, meta = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E19_serving", table.show(), results_dir)
    save_result_json(
        "BENCH_E19_serving",
        {
            "experiment": "E19_serving",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    # Acceptance: overload is shed (never fatal), duplicates are
    # deduplicated, interactive latency honors the SLO, and every served
    # answer matches the cold solver bit-for-bit.
    assert meta["zero_deaths"] == 1, meta
    assert meta["sheds"] >= 1, meta
    assert meta["dedupe_rate"] >= 0.5, meta
    assert meta["interactive_p99_bounded"] == 1, meta
    assert meta["zero_drift"] == 1, meta
