"""E1 — Theorem 2: the DP is cost-optimal on trees.

Compares the signature DP's optimum against exhaustive enumeration of
all cut-level assignments on random small trees (the oracle from the
unit tests, run here across a parameter grid and reported as a table).
Expected shape: ratio exactly 1.0 everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, save_result
from repro.bench.oracles import brute_force_optimum, path_binary_tree as simple_btree
from repro.hgpt.dp import solve_rhgpt


def _experiment() -> Table:
    table = Table(
        ["n_leaves", "h", "seed", "dp_cost", "oracle_cost", "ratio"],
        title="E1: DP optimality on trees (Theorem 2)",
    )
    rng_master = np.random.default_rng(42)
    for n in (4, 5, 6):
        for h in (1, 2):
            for trial in range(3):
                seed = int(rng_master.integers(0, 1 << 30))
                rng = np.random.default_rng(seed)
                weights = rng.uniform(0.3, 3.0, size=n - 1).round(2).tolist()
                demands = rng.integers(1, 4, size=n).tolist()
                bt = simple_btree(weights, demands)
                total = sum(demands)
                if h == 1:
                    caps = [max(max(demands), total // 2 + 1)]
                    deltas = [0.0, 1.0]
                else:
                    caps = [total, max(max(demands), total // 2)]
                    deltas = [0.0, 2.0, 1.0]
                dp = solve_rhgpt(bt, caps, deltas).cost
                oracle = brute_force_optimum(bt, caps, deltas)
                ratio = 1.0 if oracle == dp == 0 else dp / oracle
                table.add_row([n, h, trial, dp, oracle, ratio])
    return table


def test_e1_tree_optimality(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E1_tree_optimality", table.show(), results_dir)
    for row in table.rows:
        assert abs(float(row[-1]) - 1.0) < 1e-6


def test_e1_dp_throughput(benchmark):
    """Raw DP speed on a 32-leaf tree (the pytest-benchmark headline)."""
    rng = np.random.default_rng(0)
    bt = simple_btree(
        rng.uniform(0.3, 3.0, size=31).tolist(), rng.integers(1, 4, size=32).tolist()
    )
    caps = [64, 24]
    benchmark(lambda: solve_rhgpt(bt, caps, [0.0, 2.0, 1.0]))
