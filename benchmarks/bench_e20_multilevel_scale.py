"""E20 — the multilevel coarsen–solve–refine front-end at scale.

The staged engine solves a few-hundred-vertex instance well but walks
every vertex through tree building and the DP; a million-vertex graph
never fits that budget.  The ``repro.multilevel`` front-end coarsens the
graph to ``coarsen_to`` supervertices first, runs the full engine on the
coarsest instance, and projects the placement back down with
hierarchy-aware FM at every level.  This experiment measures what that
buys on two heavy families — a 3D mesh (``mesh3d``, generator input) and
a Barabási–Albert graph routed through a METIS ``.graph`` file round
trip (``ba``, exercising the vectorised I/O path):

* **smoke tier** (CI): ``n = 10^4`` — multilevel HGP cost vs the flat
  METIS-style k-way baseline's Eq. 1 objective on the same instance.
  The acceptance bar is multilevel ≤ 1.1× flat; measured it is *better*
  than flat by ~1.9–2.5× (the hierarchy-aware refinement optimises
  Eq. 1 directly while the flat baseline only minimises the cut).
* **big tier** (``-m big``, not in CI): ``n = 10^5`` with the flat
  comparison and ``n = 10^6`` end-to-end multilevel-only inside a
  memory ceiling, recording peak RSS.

The machine-readable companion (``BENCH_E20_multilevel_scale.json``)
carries a ``meta`` block with ``flat_over_multilevel_cost`` (inverted so
the ≤ 1.1× acceptance becomes a ``--min-meta`` *floor* of ``1/1.1``),
per-family cost ratios, coarsening depth/shrink, and the session's peak
RSS, so ``tools/bench_regress.py`` gates both quality and scalability.
"""

from __future__ import annotations

import resource
import time

import pytest

from repro import Hierarchy
from repro.baselines.fm import eq1_cost
from repro.baselines.multilevel import partition_kway
from repro.bench import Table, save_result, save_result_json
from repro.bench.instances import FAMILIES
from repro.core.config import MultilevelConfig, SolverConfig
from repro.graph.generators import random_demands
from repro.graph.io import read_metis, write_metis
from repro.multilevel import solve_multilevel

SEED = 20

#: 2×4 hierarchy, strongly non-uniform cm so Eq. 1 rewards locality.
HIER = Hierarchy([2, 4], [10.0, 3.0, 0.0])

#: Quantisation when routing through a METIS file (the ``ba`` leg writes
#: weights+demands to ``.graph`` and reads them back).  Edge weights in
#: [0.5, 2] survive a 10× scale; per-vertex demands are ~1e-4 so they
#: get an extra pre-scale before the format's integer rounding.
WEIGHT_SCALE = 10.0
DEMAND_PRESCALE = 2e4


def _instance(family, n_target, tmp_path=None):
    """Build one (graph, demands) pair, optionally via a METIS file."""
    g = FAMILIES[family](n_target, SEED)
    d = random_demands(g.n, HIER.total_capacity, fill=0.6, skew=0.3, seed=SEED + 1)
    if tmp_path is not None:
        # Round-trip through the on-disk format: both methods then solve
        # the *read-back* instance, so the comparison stays apples to
        # apples under the integer quantisation.
        path = tmp_path / f"{family}_{n_target}.graph"
        write_metis(path, g, demands=d * DEMAND_PRESCALE, weight_scale=WEIGHT_SCALE)
        g, vw = read_metis(path)
        d = vw / (DEMAND_PRESCALE * WEIGHT_SCALE)
    return g, d


def _run_multilevel(g, d, coarsen_to=160):
    cfg = SolverConfig(
        seed=0,
        n_trees=4,
        multilevel=MultilevelConfig(enabled=True, coarsen_to=coarsen_to),
    )
    t0 = time.perf_counter()
    res = solve_multilevel(g, HIER, d, cfg)
    return time.perf_counter() - t0, res


def _run_flat(g, d):
    """Flat METIS-style k-way baseline, scored on the Eq. 1 objective."""
    t0 = time.perf_counter()
    labels = partition_kway(
        g, HIER.k, vertex_weights=d, seed=0, kl_polish_max_n=None
    )
    return time.perf_counter() - t0, float(eq1_cost(g, HIER, labels))


def _peak_rss_mib():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _compare(family, n_target, table, points, meta, tmp_path=None):
    g, d = _instance(family, n_target, tmp_path=tmp_path)
    ml_s, res = _run_multilevel(g, d)
    flat_s, flat_cost = _run_flat(g, d)
    st = res.levels.stats
    ratio = flat_cost / res.cost if res.cost > 0 else float("inf")

    table.add_row(
        [family, g.n, "multilevel", ml_s, res.cost, st.levels,
         st.n_coarsest, f"{st.shrink_factor:.0f}x"]
    )
    table.add_row([family, g.n, "flat_kway", flat_s, flat_cost, 1, g.n, "1x"])
    points.append(
        {
            "sweep": f"{family}_multilevel",
            "n": g.n,
            "h": HIER.h,
            "grid_cells": None,
            "time_s": ml_s,
            "cost": res.cost,
            "levels": st.levels,
            "coarsest_n": st.n_coarsest,
            "report": res.report().to_dict(),
        }
    )
    points.append(
        {
            "sweep": f"{family}_flat",
            "n": g.n,
            "h": HIER.h,
            "grid_cells": None,
            "time_s": flat_s,
            "cost": flat_cost,
            "report": {"path": "flat", "cost": flat_cost, "spans": None,
                       "members": [], "meta": {"family": family, "n": g.n}},
        }
    )
    key = f"{family}_n{g.n}"
    meta[f"{key}_cost_ratio"] = ratio
    meta[f"{key}_levels"] = st.levels
    meta[f"{key}_shrink_factor"] = st.shrink_factor
    meta[f"{key}_ml_s"] = ml_s
    meta[f"{key}_flat_s"] = flat_s
    return ratio


def _experiment(tmp_path):
    table = Table(
        ["family", "n", "method", "time_s", "eq1_cost", "levels",
         "coarsest_n", "shrink"],
        title="E20: multilevel front-end vs flat METIS-style k-way",
    )
    points = []
    meta = {}
    ratios = [
        _compare("mesh3d", 10_000, table, points, meta),
        _compare("ba", 10_000, table, points, meta, tmp_path=tmp_path),
    ]
    meta["flat_over_multilevel_cost"] = min(ratios)
    meta["min_shrink_factor"] = min(
        v for k, v in meta.items() if k.endswith("_shrink_factor")
    )
    meta["min_levels"] = min(
        v for k, v in meta.items() if k.endswith("_levels")
    )
    meta["peak_rss_mib"] = _peak_rss_mib()
    return table, points, meta


def test_e20_multilevel_scale(benchmark, results_dir, tmp_path):
    table, points, meta = benchmark.pedantic(
        _experiment, args=(tmp_path,), rounds=1, iterations=1
    )
    save_result("E20_multilevel_scale", table.show(), results_dir)
    save_result_json(
        "BENCH_E20_multilevel_scale",
        {
            "experiment": "E20_multilevel_scale",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    # Acceptance (ISSUE 6): multilevel cost ≤ 1.1× flat, i.e.
    # flat/multilevel ≥ 1/1.1 ≈ 0.909.  Measured ~1.9 (mesh3d) and ~2.5
    # (ba) on the reference box — multilevel *beats* flat because the
    # uncoarsening refines the Eq. 1 objective directly.  CI re-gates
    # via --min-meta with the same floors.
    assert meta["flat_over_multilevel_cost"] >= 0.909, meta
    assert meta["min_shrink_factor"] >= 20.0, meta
    assert meta["min_levels"] >= 4, meta


@pytest.mark.big
def test_e20_big_comparison(results_dir, tmp_path):
    """``n = 10^5`` tier: the flat baseline is ~30–50× slower here, so
    this runs outside CI (``-m big``).  Quality bar is unchanged."""
    table = Table(
        ["family", "n", "method", "time_s", "eq1_cost", "levels",
         "coarsest_n", "shrink"],
        title="E20 (big): multilevel vs flat at n=1e5",
    )
    points, meta = [], {}
    ratios = [
        _compare("mesh3d", 100_000, table, points, meta),
        _compare("ba", 100_000, table, points, meta, tmp_path=tmp_path),
    ]
    save_result("E20_big_comparison", table.show(), results_dir)
    assert min(ratios) >= 0.909, meta


#: Memory ceiling for the million-vertex end-to-end run (MiB).  Measured
#: peak RSS ~2.5 GiB for mesh3d + ba in one process on the reference
#: box; the ceiling leaves ~2x headroom while still proving the front
#: end never materialises anything quadratic.
MILLION_VERTEX_RSS_CEILING_MIB = 6144.0


@pytest.mark.big
def test_e20_million_vertices(results_dir):
    """``n = 10^6`` end-to-end, single process, multilevel only (the
    flat baseline is intractable at this size — that is the point)."""
    table = Table(
        ["family", "n", "m", "time_s", "eq1_cost", "levels", "coarsest_n",
         "rss_mib"],
        title="E20 (big): million-vertex end-to-end",
    )
    for family in ("mesh3d", "ba"):
        g, d = _instance(family, 1_000_000)
        ml_s, res = _run_multilevel(g, d)
        st = res.levels.stats
        assert res.placement.leaf_of.shape == (g.n,)
        # ba legitimately stalls above coarsen_to (the hub supervertex
        # rides the leaf-capacity cap), but the coarsest instance must
        # still be engine-sized: >=1000x shrink from a million vertices.
        assert st.shrink_factor >= 1000.0, st
        table.add_row(
            [family, g.n, g.m, ml_s, res.cost, st.levels, st.n_coarsest,
             f"{_peak_rss_mib():.0f}"]
        )
    save_result("E20_million_vertices", table.show(), results_dir)
    assert _peak_rss_mib() <= MILLION_VERTEX_RSS_CEILING_MIB
