"""E21 — pluggable kernel backends: python reference vs numba JIT.

The kernel seam (``src/repro/kernels``) promises two things: the numba
backend is *fast* (the point of the seam) and *bit-identical* (the
contract that makes it safe to enable by default).  This experiment pins
both on the six-kernel ABI:

* **Per-kernel microbenches** — representative inputs for each kernel,
  timed per backend (best-of-``repeat``; the numba timings exclude the
  one-off JIT compile because later repeats dominate the minimum).
  Outputs are compared with exact equality — any drift fails the run.
* **End-to-end** — the E18 ``h=3`` deep-hierarchy DP solved under each
  backend via :func:`repro.kernels.use_backend`; solutions (costs *and*
  level sets) must be verbatim identical.

The machine-readable companion (``BENCH_E21_kernels.json``) keeps its
``points`` backend-independent (python-backend timings + deterministic
checksums as the gated "cost"), so the checked-in baseline matches in
both CI legs; the numba measurements land in ``meta``
(``{kernel}_speedup``, ``e2e_dp_speedup``, ``numba_available``,
``zero_drift``) where the kernels CI job gates them with
``tools/bench_regress.py --min-meta``.  On a python-only box the
speedup keys are simply absent and the microbenches still pin the
reference timings and checksums.
"""

from __future__ import annotations

import importlib.util
import time

import numpy as np

from repro import Hierarchy
from repro.bench import Table, save_result, save_result_json
from repro.core.telemetry import MemberRecord, Telemetry
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import (
    barabasi_albert,
    planted_partition,
    random_demands,
)
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, solve_rhgpt
from repro.hgpt.quantize import DemandGrid
from repro.kernels import resolve_backend, use_backend
from repro.obs.exporter import maybe_start_from_env

SEED = 21

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: The E18 h=3 point — the deep-hierarchy regime the seam targets.
E2E_HIER = Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0])
E2E_BUDGET = 144

_pc = time.perf_counter


# ----------------------------------------------------------------------
# microbench inputs (deterministic; sized so python-side work dominates)
# ----------------------------------------------------------------------


def _dinic_instance():
    """A paired-arc residual network from a clustered graph."""
    g = planted_partition(8, 40, 0.3, 0.03, seed=2)
    heads, tails, caps = [], [], []
    for u, v, w in g.iter_edges():
        heads += [int(v), int(u)]
        tails += [int(u), int(v)]
        caps += [float(w), float(w)]
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    caps = np.asarray(caps, dtype=np.float64)
    arc_ids = np.argsort(tails, kind="stable").astype(np.int64)
    arc_indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(np.bincount(tails, minlength=g.n), out=arc_indptr[1:])
    return g.n, heads, caps, arc_indptr, arc_ids, 0, g.n - 1


def _bench_dinic(backend, inst, repeat=3):
    """Full Dinic on ``inst``; returns per-kernel times + drift payload."""
    _n, heads, caps0, arc_indptr, arc_ids, s, t = inst
    best_bfs = best_blk = float("inf")
    total = 0.0
    caps = caps0
    for _ in range(repeat):
        caps = caps0.copy()
        bfs_s = blk_s = 0.0
        total = 0.0
        while True:
            t0 = _pc()
            level = np.asarray(
                backend.dinic_bfs_levels(heads, caps, arc_indptr, arc_ids, s)
            )
            bfs_s += _pc() - t0
            if level[t] < 0:
                break
            t0 = _pc()
            total += backend.dinic_blocking_flow(
                heads, caps, arc_indptr, arc_ids, level, s, t
            )
            blk_s += _pc() - t0
        best_bfs = min(best_bfs, bfs_s)
        best_blk = min(best_blk, blk_s)
    return best_bfs, best_blk, float(total), caps


def _tile_instance():
    rng = np.random.default_rng(3)
    na = nb = 400
    h = 3
    pa_sig = rng.integers(0, 30, size=(na, h)).astype(np.int64)
    pb_sig = rng.integers(0, 30, size=(nb, h)).astype(np.int64)
    pa_cost = rng.uniform(0.0, 50.0, size=na)
    pb_cost = rng.uniform(0.0, 50.0, size=nb)
    caps = np.asarray([45, 40, 35], dtype=np.int64)
    return pa_sig, pa_cost, pb_sig, pb_cost, caps, 0, na * nb, float("inf")


def _prune_instance():
    rng = np.random.default_rng(4)
    m, h = 20_000, 3
    sigs = rng.integers(0, 16, size=(m, h)).astype(np.int64)
    costs = rng.uniform(0.0, 100.0, size=m)
    order = np.lexsort(tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (costs,))
    return sigs, costs, order, -1


def _matvec_instance():
    g = barabasi_albert(2000, 4, weight_range=(0.5, 2.0), seed=5)
    lap = g.to_scipy_sparse().tocsr()
    x = np.random.default_rng(6).uniform(-1.0, 1.0, size=g.n)
    return (
        lap.indptr.astype(np.int64),
        lap.indices.astype(np.int64),
        lap.data.astype(np.float64),
        x,
    )


def _hem_instance():
    g = barabasi_albert(5000, 4, weight_range=(0.5, 2.0), seed=7)
    tie = np.random.default_rng(8).permutation(g.n).astype(np.int64)
    fits = np.ones(g.indices.size, dtype=bool)
    return g.n, g.indptr, g.indices, g.adj_weights, tie, fits, 8


def _time_best(fn, repeat=3):
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = _pc()
        out = fn()
        best = min(best, _pc() - t0)
    return best, out


def _e2e_instance():
    g = planted_partition(6, 6, 0.6, 0.05, seed=1)
    hier = E2E_HIER
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.5, seed=3)
    grid = DemandGrid.from_budget(hier, d, E2E_BUDGET, slack=0.25)
    bt = binarize(spectral_decomposition_tree(g, seed=0), grid.quantize(d))
    caps = [grid.caps[j] for j in range(1, hier.h + 1)]
    norm, _ = hier.normalized()
    deltas = [0.0] + [norm.cm[k - 1] - norm.cm[k] for k in range(1, hier.h + 1)]
    return g.n, bt, caps, deltas


def _canonical(sol):
    return (
        sol.cost,
        [
            [(tuple(int(v) for v in s.vertices), int(s.qdemand)) for s in level]
            for level in sol.levels
        ],
    )


def _point(sweep, n, secs, cost, extra_meta=None):
    tel = Telemetry("bench")
    tel.add_seconds("kernel", secs, 1)
    return {
        "sweep": sweep,
        "n": n,
        "h": 0,
        "grid_cells": 0,
        "time_s": secs,
        "report": tel.report(
            config=dict({"sweep": sweep}, **(extra_meta or {})), cost=float(cost)
        ).to_dict(),
    }


def _experiment():
    exporter = maybe_start_from_env()
    try:
        return _experiment_body()
    finally:
        if exporter is not None:
            exporter.stop()


def _experiment_body():
    backends = {"python": resolve_backend("python")}
    if HAVE_NUMBA:
        backends["numba"] = resolve_backend("numba")
        assert backends["numba"].name == "numba"

    table = Table(
        ["kernel", "n", "python_s", "numba_s", "speedup"],
        title="E21: kernel backends, python reference vs numba JIT",
    )
    points = []
    meta = {"numba_available": 1.0 if HAVE_NUMBA else 0.0}
    drift_ok = True

    # --- Dinic (two kernels share one instance) -----------------------
    dinic = _dinic_instance()
    runs = {name: _bench_dinic(b, dinic) for name, b in backends.items()}
    bfs_py, blk_py, flow_py, caps_py = runs["python"]
    for kernel, idx, checksum in (
        ("dinic_bfs_levels", 0, flow_py),
        ("dinic_blocking_flow", 1, flow_py),
    ):
        py_s = runs["python"][idx]
        meta[f"{kernel}_python_s"] = py_s
        nb_s = None
        if HAVE_NUMBA:
            nb_s = runs["numba"][idx]
            meta[f"{kernel}_numba_s"] = nb_s
            meta[f"{kernel}_speedup"] = py_s / nb_s if nb_s > 0 else float("inf")
            drift_ok &= runs["numba"][2] == flow_py
            drift_ok &= bool(np.array_equal(runs["numba"][3], caps_py))
        table.add_row(
            [kernel, dinic[0], py_s, nb_s,
             meta.get(f"{kernel}_speedup")]
        )
        points.append(_point(f"kernel_{kernel}", dinic[0], py_s, checksum))

    # --- the four single-call kernels ---------------------------------
    tile = _tile_instance()
    prune = _prune_instance()
    matvec = _matvec_instance()
    hem = _hem_instance()
    single = (
        (
            "dp_tile_merge",
            tile[0].shape[0] * tile[2].shape[0],
            lambda b: b.dp_tile_merge(*tile),
            lambda out: float(np.asarray(out[1]).sum()) + float(out[5]),
            lambda a, c: all(
                np.array_equal(np.asarray(x), np.asarray(y))
                for x, y in zip(a[:5], c[:5])
            ) and int(a[5]) == int(c[5]),
        ),
        (
            "dp_dominance_prune",
            prune[0].shape[0],
            lambda b: b.dp_dominance_prune(*prune),
            lambda out: float(np.asarray(out[0]).sum()),
            lambda a, c: np.array_equal(np.asarray(a[0]), np.asarray(c[0]))
            and bool(a[1]) == bool(c[1]),
        ),
        (
            "csr_matvec",
            matvec[3].shape[0],
            lambda b: b.csr_matvec(*matvec),
            lambda out: float(np.asarray(out).sum()),
            lambda a, c: np.array_equal(np.asarray(a), np.asarray(c)),
        ),
        (
            "heavy_edge_match",
            hem[0],
            lambda b: b.heavy_edge_match(*hem[1:]),
            lambda out: float((np.asarray(out) >= 0).sum()),
            lambda a, c: np.array_equal(np.asarray(a), np.asarray(c)),
        ),
    )
    for kernel, n, run, checksum, same in single:
        py_s, py_out = _time_best(lambda: run(backends["python"]))
        meta[f"{kernel}_python_s"] = py_s
        nb_s = None
        if HAVE_NUMBA:
            nb_s, nb_out = _time_best(lambda: run(backends["numba"]))
            meta[f"{kernel}_numba_s"] = nb_s
            meta[f"{kernel}_speedup"] = py_s / nb_s if nb_s > 0 else float("inf")
            drift_ok &= bool(same(nb_out, py_out))
        table.add_row([kernel, n, py_s, nb_s, meta.get(f"{kernel}_speedup")])
        points.append(_point(f"kernel_{kernel}", n, py_s, checksum(py_out)))

    # --- end-to-end: the E18 h=3 DP under each backend ----------------
    n, bt, caps, deltas = _e2e_instance()

    def solve_under(name):
        with use_backend(name):
            stats = DPStats()
            t0 = _pc()
            sol = solve_rhgpt(bt, caps, deltas, stats=stats)
            return _pc() - t0, sol, stats

    solve_under("python")  # warm process caches
    py_s, py_sol, py_stats = solve_under("python")
    if HAVE_NUMBA:
        solve_under("numba")  # JIT warm-up
        nb_s, nb_sol, _ = solve_under("numba")
        drift_ok &= _canonical(nb_sol) == _canonical(py_sol)
        meta["e2e_numba_s"] = nb_s
        meta["e2e_dp_speedup"] = py_s / nb_s if nb_s > 0 else float("inf")
    meta["e2e_python_s"] = py_s
    table.add_row(
        ["e2e_dp_h3", n, py_s, meta.get("e2e_numba_s"),
         meta.get("e2e_dp_speedup")]
    )
    tel = Telemetry("bench")
    tel.add_seconds("dp", py_s, 1)
    tel.record_member(
        MemberRecord(
            index=0,
            method="spectral",
            dp_cost=float(py_sol.cost),
            dp_seconds=py_s,
            dp_nodes=py_stats.nodes,
            dp_states_total=py_stats.states_total,
            dp_states_max=py_stats.states_max,
            dp_merges=py_stats.merges,
            dp_tiles=py_stats.tiles,
            dp_bound_pruned=py_stats.bound_pruned,
            dp_table_peak_bytes=py_stats.table_peak_bytes,
        )
    )
    points.append(
        {
            "sweep": "e2e_python",
            "n": n,
            "h": E2E_HIER.h,
            "grid_cells": E2E_BUDGET,
            "time_s": py_s,
            "report": tel.report(config={"backend": "python"}).to_dict(),
        }
    )

    assert drift_ok, "backend outputs drifted — the bit-identity contract broke"
    meta["zero_drift"] = 1.0
    return table, points, meta


def test_e21_kernel_backends(benchmark, results_dir):
    table, points, meta = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E21_kernels", table.show(), results_dir)
    save_result_json(
        "BENCH_E21_kernels",
        {
            "experiment": "E21_kernels",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    assert meta["zero_drift"] == 1.0
    if HAVE_NUMBA:
        # Acceptance (re-gated in CI via --min-meta): the JIT backend
        # beats the python hot loops where they are interpreter-bound.
        assert meta["dinic_blocking_flow_speedup"] >= 3.0, meta
        assert meta["dp_dominance_prune_speedup"] >= 3.0, meta
