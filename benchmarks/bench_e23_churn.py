"""E23 — incremental re-solve speedup under streaming weight churn.

The scenario the subtree-DP memo is built for: a long-lived instance
whose edge weights drift a little between re-solves (a hot link's
bandwidth estimate updating each interval) while topology and demands
stay put.  Demands unchanged means the Hochbaum–Shmoys grid is
bit-identical across the trace, so every re-solve quantizes onto the
same capacities — the regime where subtree digests can actually hit.

Protocol (both legs identical except ``incremental.enabled``):

1. **base solve** of the clean graph, untimed — populates the tree and
   subtree-table cache tiers;
2. **one warm-up churn step**, untimed — the first perturbation can
   legitimately shift a few heavy-edge matchings (a one-off shape
   settle), after which the contraction trees are stable under the
   monotone weight ramp;
3. **4 measured churn steps** — each bumps the same three intra-block
   edges by a further 2% and re-runs the full pipeline.

``incremental_speedup`` is cold-leg wall-clock over warm-leg wall-clock
across the measured steps.  ``zero_drift`` is 1 only when every step's
cost *and placement vector* match bit-for-bit between the legs — the
hard contract of the memo (a hit returns exactly what the rebuild would
produce).  CI gates ``incremental_speedup >= 3`` (target 5) and
``zero_drift = 1`` via ``tools/bench_regress.py --min-meta``.

The dirty spine (the perturbed edges' leaves up to the root) rebuilds
every step by design; the measured hit pattern is steady — roughly 290
of ~320 per-node tables served from the memo per warm step.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro import Hierarchy, SolverConfig, run_pipeline
from repro.bench import Table, save_result, save_result_json
from repro.cache import reset_cache
from repro.core.config import IncrementalConfig
from repro.obs.exporter import maybe_start_from_env
from repro.graph.generators import planted_partition, random_demands

SEED = 23
N_BLOCKS = 16
PER_BLOCK = 10
CHURN_STEPS = 4  # measured; one extra warm-up step is untimed

#: Contraction trees keep embedding cheap (no eigensolves), so the DP —
#: the stage the memo accelerates — dominates both legs' wall-clock.
TREE_METHODS = ("contraction",)


def _instance():
    hier = Hierarchy([2, 2, 2, 2], [20.0, 10.0, 5.0, 2.0, 0.0])
    g = planted_partition(N_BLOCKS, PER_BLOCK, 0.85, 0.02, seed=SEED)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=SEED)
    return g, hier, d


def _config(incremental: bool) -> SolverConfig:
    return SolverConfig(
        seed=SEED,
        n_trees=2,
        tree_methods=TREE_METHODS,
        beam_width=192,
        refine=False,
        incremental=IncrementalConfig(enabled=incremental),
    )


def _churn_graphs(g):
    """The weight-churn trace: three intra-block edges ramp by 2%/step.

    A monotone ramp on a fixed edge set preserves the relative weight
    order heavy-edge matching sorts by, so the decomposition trees stay
    shape-stable after the first step and churn dirties only the
    perturbed spine — the steady state the speedup gate measures.
    """
    intra = [
        i
        for i in range(g.m)
        if g.edges_u[i] < PER_BLOCK and g.edges_v[i] < PER_BLOCK
    ][:3]
    out = []
    for k in range(CHURN_STEPS + 1):
        w = g.edges_w.copy()
        for i in intra:
            w[i] = w[i] * (1.0 + 0.02 * (k + 1))
        out.append(g.reweighted(w))
    return out


def _run_leg(graphs, hier, d, incremental: bool):
    """Solve the whole trace; returns (times, results) of measured steps."""
    reset_cache()  # both legs start genuinely cold
    cfg = _config(incremental)
    g0 = graphs[0]
    run_pipeline(g0.reweighted(g0.edges_w), hier, d, cfg)  # base, untimed
    run_pipeline(graphs[0], hier, d, cfg)  # warm-up step, untimed
    times, results = [], []
    for gg in graphs[1:]:
        t0 = time.perf_counter()
        r = run_pipeline(gg, hier, d, cfg)
        times.append(time.perf_counter() - t0)
        results.append(r)
    return times, results


def _experiment():
    exporter = maybe_start_from_env()
    try:
        return _experiment_body()
    finally:
        if exporter is not None:
            exporter.stop()


def _experiment_body():
    g, hier, d = _instance()
    base = g
    graphs = _churn_graphs(base)

    warm_times, warm = _run_leg(graphs, hier, d, incremental=True)
    cold_times, cold = _run_leg(graphs, hier, d, incremental=False)

    drift = 0
    for w, c in zip(warm, cold):
        if w.cost != c.cost or not np.array_equal(
            w.placement.leaf_of, c.placement.leaf_of
        ):
            drift += 1

    memo_hits = sum(
        m.dp_memo_hits for r in warm for m in r.telemetry.members
    )
    memo_misses = sum(
        m.dp_memo_misses for r in warm for m in r.telemetry.members
    )
    hit_rate = memo_hits / max(1, memo_hits + memo_misses)
    speedup = sum(cold_times) / sum(warm_times)

    table = Table(
        ["step", "cold_s", "warm_s", "step_speedup", "cost"],
        title="E23: incremental re-solve under weight churn (per step)",
    )
    for i, (ct, wt, r) in enumerate(zip(cold_times, warm_times, warm)):
        table.add_row([i + 1, ct, wt, ct / wt, r.cost])

    points = []
    for leg, times, results in (
        ("cold", cold_times, cold),
        ("warm", warm_times, warm),
    ):
        for i, (secs, r) in enumerate(zip(times, results)):
            points.append(
                {
                    "sweep": f"{leg}_step{i + 1}",
                    "n": base.n,
                    "h": hier.h,
                    "grid_cells": 4 * base.n,
                    "time_s": secs,
                    "cost": r.cost,
                    "report": r.report(phase=f"{leg}_step{i + 1}").to_dict(),
                }
            )
    meta = {
        "incremental_speedup": speedup,
        "zero_drift": 1 if drift == 0 else 0,
        "memo_hit_rate": hit_rate,
        "memo_hits": memo_hits,
        "memo_misses": memo_misses,
        "cold_total_s": sum(cold_times),
        "warm_total_s": sum(warm_times),
        "churn_steps": CHURN_STEPS,
    }
    return table, points, meta


def test_e23_churn(benchmark, results_dir):
    table, points, meta = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E23_churn", table.show(), results_dir)
    save_result_json(
        "BENCH_E23_churn",
        {
            "experiment": "E23_churn",
            "schema_version": 1,
            "meta": meta,
            "points": points,
        },
        results_dir,
    )
    # Acceptance: warm churn re-solves at least 3x faster (target 5x)
    # with placements bit-identical to the cold path on every step.
    assert meta["zero_drift"] == 1, meta
    assert meta["incremental_speedup"] >= 3.0, meta
    assert meta["memo_hit_rate"] > 0.5, meta


def test_e23_warm_resolve_throughput(benchmark):
    """Wall-clock of one warm churn re-solve (pytest-benchmark headline)."""
    g, hier, d = _instance()
    graphs = _churn_graphs(g)
    reset_cache()
    cfg = _config(True)
    for gg in (g, *graphs):
        run_pipeline(gg, hier, d, cfg)
    benchmark(lambda: run_pipeline(graphs[-1], hier, d, cfg))
