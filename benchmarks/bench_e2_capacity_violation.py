"""E2 — Theorems 2 & 5: measured capacity violation vs. the guarantee.

For hierarchies of height 1, 2 and 3 and a range of grid slacks, run the
pipeline and record the realised per-level violation against the proven
bound ``(1 + j)(1 + ε)``.  Expected shape: measured ≤ bound always, and
usually far below it (the worst case needs adversarial demand packings).
"""

from __future__ import annotations


from repro import Hierarchy, SolverConfig, solve_hgp
from repro.bench import Table, save_result
from repro.graph.generators import power_law, random_demands

HIERARCHIES = {
    1: Hierarchy([8], [1.0, 0.0]),
    2: Hierarchy([2, 4], [10.0, 3.0, 0.0]),
    3: Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0]),
}


def _experiment() -> Table:
    table = Table(
        [
            "h",
            "slack",
            "fill",
            "level",
            "violation",
            "bound",
            "within",
        ],
        title="E2: capacity violation vs Theorem-1 bound",
    )
    for h, hier in HIERARCHIES.items():
        for slack in (0.1, 0.3):
            for fill in (0.5, 0.85):
                g = power_law(28, seed=h * 10)
                d = random_demands(
                    g.n, hier.total_capacity, fill=fill, skew=0.5, seed=h * 10 + 1
                )
                cfg = SolverConfig(seed=0, n_trees=4, slack=slack, refine=False)
                res = solve_hgp(g, hier, d, cfg)
                for j in range(1, h + 1):
                    violation = res.placement.level_violation(j)
                    bound = (1 + j) * (1 + res.grid.epsilon)
                    table.add_row(
                        [h, slack, fill, j, violation, bound, str(violation <= bound + 1e-9)]
                    )
    return table


def test_e2_capacity_violation(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E2_capacity_violation", table.show(), results_dir)
    for row in table.rows:
        assert row[-1] == "True"
