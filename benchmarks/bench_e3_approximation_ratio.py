"""E3 — Theorem 1: end-to-end cost against the exact optimum.

Small instances where branch-and-bound ground truth is affordable.  The
bicriteria guarantee is ``O(log n)`` on cost with ``(1+ε)(1+h)`` balance
slack; expected shape: realized ratios are small constants (often < 1
because the pipeline may use its balance slack where OPT may not).
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig, exact_hgp, solve_hgp
from repro.bench import Table, save_result
from repro.graph.generators import grid_2d, power_law, random_regular


def _experiment() -> Table:
    table = Table(
        ["instance", "n", "opt_cost", "hgp_cost", "ratio", "violation"],
        title="E3: approximation ratio vs exact optimum (Theorem 1)",
    )
    hier = Hierarchy([2, 2], [5.0, 1.0, 0.0])
    cases = []
    for seed in range(3):
        cases.append((f"grid2x4-s{seed}", grid_2d(2, 4, weight_range=(0.5, 2.0), seed=seed)))
        cases.append((f"rr8-s{seed}", random_regular(8, 3, weight_range=(0.5, 2.0), seed=seed)))
    cases.append(("pl9", power_law(9, seed=5)))
    for name, g in cases:
        # Uniform demands sized so a strictly feasible packing exists:
        # ceil(n / k) vertices must fit on one unit leaf.
        per_leaf = -(-g.n // hier.k)
        d = np.full(g.n, min(0.5, 0.95 / per_leaf))
        opt = exact_hgp(g, hier, d, violation=1.0)
        cfg = SolverConfig(seed=0, n_trees=8, grid_mode="epsilon", epsilon=0.2)
        res = solve_hgp(g, hier, d, cfg)
        ratio = res.cost / opt.cost() if opt.cost() > 0 else (0.0 if res.cost == 0 else float("inf"))
        table.add_row(
            [name, g.n, opt.cost(), res.cost, ratio, res.placement.max_violation()]
        )
    return table


def test_e3_approximation_ratio(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E3_approximation_ratio", table.show(), results_dir)
    for row in table.rows:
        ratio = float(row[4])
        assert ratio <= 3.0  # small-constant regime on these instances
        assert float(row[5]) <= (1 + 0.2) * 3 + 1e-9
