"""E4 — running-time scaling of the DP (``O(n · D^{3h+2})`` in theory).

Three sweeps on the signature DP:

* vertices ``n`` at fixed grid (near-linear thanks to sparse states +
  dominance pruning + beam),
* grid resolution ``D`` at fixed ``n`` (the pseudo-polynomial axis —
  sharp growth, the reason the engineering grid exists),
* height ``h`` at fixed ``n`` and grid (each level multiplies the
  signature space).

Expected shape: polynomial growth in ``n`` and sharp growth in ``h``,
as the paper's bound predicts.  The ``D`` axis used to be the second
steep one; the bounded merge kernel's incumbent pruning now flattens it
(the per-point ``bound_pruned`` counters show the work it discards), so
the sweep documents the kernel instead of the raw bound.

Besides the human-readable table (``E4_runtime_scaling.txt``), the
experiment persists a machine-readable companion
(``BENCH_E4_runtime_scaling.json``) built from the engine's structured
run reports — one report per sweep point, with per-stage spans and a
member record carrying the DP counters — so the perf trajectory is
trackable across PRs.
"""

from __future__ import annotations

import time

from repro import Hierarchy
from repro.bench import Table, save_result, save_result_json
from repro.core.telemetry import MemberRecord, Telemetry
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import planted_partition, random_demands
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, solve_rhgpt
from repro.hgpt.quantize import DemandGrid


def _run_dp(g, hier, d, budget, beam=256):
    tel = Telemetry("bench")
    with tel.span("quantize"):
        grid = DemandGrid.from_budget(hier, d, budget, slack=0.25)
        q = grid.quantize(d)
    with tel.span("trees"):
        tree = spectral_decomposition_tree(g, seed=0)
    stats = DPStats()
    t0 = time.perf_counter()
    with tel.span("dp"):
        bt = binarize(tree, q)
        caps = [grid.caps[j] for j in range(1, hier.h + 1)]
        norm, _ = hier.normalized()
        deltas = [0.0] + [norm.cm[k - 1] - norm.cm[k] for k in range(1, hier.h + 1)]
        solution = solve_rhgpt(bt, caps, deltas, beam_width=beam, stats=stats)
    elapsed = time.perf_counter() - t0
    tel.record_member(
        MemberRecord(
            index=0,
            method="spectral",
            dp_cost=float(solution.cost),
            dp_seconds=tel.root.child("dp").seconds,
            dp_nodes=stats.nodes,
            dp_states_total=stats.states_total,
            dp_states_max=stats.states_max,
            dp_merges=stats.merges,
            dp_tiles=stats.tiles,
            dp_bound_pruned=stats.bound_pruned,
            dp_table_peak_bytes=stats.table_peak_bytes,
        )
    )
    return elapsed, stats, tel


def _experiment():
    table = Table(
        ["sweep", "n", "h", "grid_cells", "time_s", "states_max", "merges"],
        title="E4: DP runtime scaling (O(n * D^{3h+2}) axis-by-axis)",
    )
    points = []

    def add_point(sweep, g, hier, budget, secs, stats, tel):
        table.add_row(
            [sweep, g.n, hier.h, budget, secs, stats.states_max, stats.merges]
        )
        report = tel.report(
            config={"sweep": sweep, "n": g.n, "h": hier.h, "grid_cells": budget}
        )
        points.append(
            {
                "sweep": sweep,
                "n": g.n,
                "h": hier.h,
                "grid_cells": budget,
                "time_s": secs,
                "states_max": stats.states_max,
                "merges": stats.merges,
                "tiles": stats.tiles,
                "bound_pruned": stats.bound_pruned,
                "table_peak_bytes": stats.table_peak_bytes,
                "report": report.to_dict(),
            }
        )

    hier2 = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    # Sweep n.
    for blocks in (4, 8, 16):
        g = planted_partition(blocks, 6, 0.6, 0.05, seed=blocks)
        d = random_demands(g.n, hier2.total_capacity, fill=0.6, seed=blocks)
        secs, stats, tel = _run_dp(g, hier2, d, budget=4 * g.n)
        add_point("n", g, hier2, 4 * g.n, secs, stats, tel)
    # Sweep grid resolution D.
    g = planted_partition(6, 6, 0.6, 0.05, seed=1)
    d = random_demands(g.n, hier2.total_capacity, fill=0.6, skew=0.5, seed=2)
    for budget in (g.n, 2 * g.n, 4 * g.n, 8 * g.n):
        secs, stats, tel = _run_dp(g, hier2, d, budget=budget, beam=None)
        add_point("D", g, hier2, budget, secs, stats, tel)
    # Sweep height h.
    for h, hier in (
        (1, Hierarchy([8], [1.0, 0.0])),
        (2, Hierarchy([2, 4], [10.0, 3.0, 0.0])),
        (3, Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0])),
    ):
        d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.5, seed=3)
        secs, stats, tel = _run_dp(g, hier, d, budget=4 * g.n, beam=None)
        add_point("h", g, hier, 4 * g.n, secs, stats, tel)
    return table, points


def test_e4_runtime_scaling(benchmark, results_dir):
    table, points = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E4_runtime_scaling", table.show(), results_dir)
    # Headline DP-kernel counters of the deepest (h-sweep h=3) point, so
    # tools/bench_regress.py --min-meta can gate the merge kernel's
    # footprint alongside the per-point costs/times.
    deep = max(
        (p for p in points if p["sweep"] == "h"), key=lambda p: p["h"]
    )
    save_result_json(
        "BENCH_E4_runtime_scaling",
        {
            "experiment": "E4_runtime_scaling",
            "schema_version": 1,
            "meta": {
                "deep_h": deep["h"],
                "deep_states_max": deep["states_max"],
                "deep_merges": deep["merges"],
                "deep_tiles": deep["tiles"],
                "deep_bound_pruned": deep["bound_pruned"],
                "deep_table_peak_bytes": deep["table_peak_bytes"],
            },
            "points": points,
        },
        results_dir,
    )
    # Shape assertions.  The h-sweep still shows the D^{3h+2} blow-up
    # (each level multiplies surviving states and merges); the D-sweep no
    # longer does — incumbent-bound pruning flattens the pseudo-polynomial
    # axis, so instead assert the pruning that flattens it actually fired.
    h_rows = [r for r in table.rows if r[0] == "h"]
    assert int(h_rows[-1][6]) > int(h_rows[0][6])
    assert int(h_rows[-1][5]) >= int(h_rows[0][5])
    d_points = [p for p in points if p["sweep"] == "D"]
    assert all(p["bound_pruned"] > 0 for p in d_points)


def test_e4_pipeline_throughput(benchmark):
    """Wall-clock of one mid-size DP run (the pytest-benchmark headline)."""
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(8, 6, 0.6, 0.05, seed=0)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, seed=1)
    benchmark(lambda: _run_dp(g, hier, d, budget=4 * g.n))
