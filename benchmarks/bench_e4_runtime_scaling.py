"""E4 — running-time scaling of the DP (``O(n · D^{3h+2})`` in theory).

Three sweeps on the signature DP:

* vertices ``n`` at fixed grid (near-linear thanks to sparse states +
  dominance pruning + beam),
* grid resolution ``D`` at fixed ``n`` (the pseudo-polynomial axis —
  sharp growth, the reason the engineering grid exists),
* height ``h`` at fixed ``n`` and grid (each level multiplies the
  signature space).

Expected shape: polynomial growth along every axis, steepest in ``D``
and ``h``, exactly as the paper's bound predicts.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Hierarchy
from repro.bench import Table, save_result
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import planted_partition, random_demands
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, solve_rhgpt
from repro.hgpt.quantize import DemandGrid


def _run_dp(g, hier, d, budget, beam=256):
    grid = DemandGrid.from_budget(hier, d, budget, slack=0.25)
    q = grid.quantize(d)
    tree = spectral_decomposition_tree(g, seed=0)
    bt = binarize(tree, q)
    caps = [grid.caps[j] for j in range(1, hier.h + 1)]
    norm, _ = hier.normalized()
    deltas = [0.0] + [norm.cm[k - 1] - norm.cm[k] for k in range(1, hier.h + 1)]
    stats = DPStats()
    t0 = time.perf_counter()
    solve_rhgpt(bt, caps, deltas, beam_width=beam, stats=stats)
    return time.perf_counter() - t0, stats


def _experiment() -> Table:
    table = Table(
        ["sweep", "n", "h", "grid_cells", "time_s", "states_max", "merges"],
        title="E4: DP runtime scaling (O(n * D^{3h+2}) axis-by-axis)",
    )
    hier2 = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    # Sweep n.
    for blocks in (4, 8, 16):
        g = planted_partition(blocks, 6, 0.6, 0.05, seed=blocks)
        d = random_demands(g.n, hier2.total_capacity, fill=0.6, seed=blocks)
        secs, stats = _run_dp(g, hier2, d, budget=4 * g.n)
        table.add_row(["n", g.n, 2, 4 * g.n, secs, stats.states_max, stats.merges])
    # Sweep grid resolution D.
    g = planted_partition(6, 6, 0.6, 0.05, seed=1)
    d = random_demands(g.n, hier2.total_capacity, fill=0.6, skew=0.5, seed=2)
    for budget in (g.n, 2 * g.n, 4 * g.n, 8 * g.n):
        secs, stats = _run_dp(g, hier2, d, budget=budget, beam=None)
        table.add_row(["D", g.n, 2, budget, secs, stats.states_max, stats.merges])
    # Sweep height h.
    for h, hier in (
        (1, Hierarchy([8], [1.0, 0.0])),
        (2, Hierarchy([2, 4], [10.0, 3.0, 0.0])),
        (3, Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0])),
    ):
        d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.5, seed=3)
        secs, stats = _run_dp(g, hier, d, budget=4 * g.n, beam=None)
        table.add_row(["h", g.n, h, 4 * g.n, secs, stats.states_max, stats.merges])
    return table


def test_e4_runtime_scaling(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E4_runtime_scaling", table.show(), results_dir)
    # Shape assertions: D-sweep and h-sweep merge counts must be increasing.
    d_rows = [r for r in table.rows if r[0] == "D"]
    assert int(d_rows[-1][6]) > int(d_rows[0][6])
    h_rows = [r for r in table.rows if r[0] == "h"]
    assert int(h_rows[-1][5]) >= int(h_rows[0][5])


def test_e4_pipeline_throughput(benchmark):
    """Wall-clock of one mid-size DP run (the pytest-benchmark headline)."""
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(8, 6, 0.6, 0.05, seed=0)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, seed=1)
    benchmark(lambda: _run_dp(g, hier, d, budget=4 * g.n))
