"""E5 — the headline comparison: HGP vs every baseline, per graph family.

The evaluation the paper's framing implies: on each workload family
(mesh, expander, power-law, planted blocks, operator DAG), compare
communication cost (Eq. 1) and worst load violation across all methods.

Expected shape: ``hgp`` wins or ties the cost column everywhere (it may
use its bicriteria balance slack); ``hgp_feasible`` and the
hierarchy-aware heuristics (``flat_quotient``, ``recursive_bisection``)
beat the honestly hierarchy-oblivious ``flat_shuffled`` (plain
``flat_identity`` is *accidentally* hierarchy-friendly because recursive
bisection numbers parts hierarchically); everything beats ``random`` /
``round_robin`` by a wide margin on clusterable inputs; expanders
compress the spread (no good cuts exist).
"""

from __future__ import annotations

import numpy as np

from repro import SolverConfig
from repro.bench import METHODS, Table, make_instance, run_method, save_result, standard_hierarchy

FAMILY_LIST = ("grid", "expander", "powerlaw", "blocks", "dag")


def _experiment() -> Table:
    table = Table(
        ["family", "n", "method", "cost", "violation"],
        title="E5: cost and violation by method and graph family (h=2, 2x4)",
    )
    hier = standard_hierarchy("2x4")
    cfg = SolverConfig(seed=0, n_trees=4)
    for family in FAMILY_LIST:
        inst = make_instance(family, 32, hier, fill=0.6, skew=0.3, seed=17)
        for method in METHODS:
            p = run_method(method, inst, seed=0, config=cfg)
            table.add_row([family, inst.graph.n, method, p.cost(), p.max_violation()])
    return table


def test_e5_baselines(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E5_baselines", table.show(), results_dir)
    # Shape assertions per family: hgp <= random, and the hierarchy-aware
    # flat mapping <= oblivious flat mapping.
    by_family: dict[str, dict[str, float]] = {}
    for family, _n, method, cost, _viol in table.rows:
        by_family.setdefault(family, {})[method] = float(cost)
    for family, costs in by_family.items():
        assert costs["hgp"] <= costs["random"] + 1e-9, family
        assert costs["hgp"] <= costs["flat_identity"] + 1e-9, family
    # Hierarchy-aware mapping beats the honest oblivious baseline on the
    # families with real cut structure (identity is accidentally
    # hierarchy-friendly: recursive bisection numbers parts
    # hierarchically, see flat.py).  On hub-dominated power-law graphs
    # the quotient heuristic can lose -- an honest negative finding
    # recorded in EXPERIMENTS.md.
    for family in ("grid", "blocks", "dag"):
        costs = by_family[family]
        assert costs["flat_quotient"] <= costs["flat_shuffled"] + 1e-9, family
