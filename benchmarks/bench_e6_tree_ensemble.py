"""E6 — ablation: value of the decomposition-tree ensemble (Theorem 7).

Sweeps the ensemble size and compares single-builder ensembles against
the mixed default.  Expected shape: best-mapped-cost is non-increasing
in ensemble size with rapidly diminishing returns (a handful of trees
captures most of Räcke's ``arg min``), and the mixed ensemble is at
least as good as the typical single builder.
"""

from __future__ import annotations


from repro import SolverConfig, solve_hgp
from repro.bench import Table, make_instance, save_result, standard_hierarchy


def _experiment() -> Table:
    table = Table(
        ["family", "builders", "n_trees", "best_cost"],
        title="E6: ensemble-size and builder ablation (Theorem 7 arg-min)",
    )
    hier = standard_hierarchy("2x4")
    for family in ("blocks", "powerlaw"):
        inst = make_instance(family, 28, hier, seed=23)
        for methods, label in (
            (None, "mixed"),
            (("spectral",), "spectral"),
            (("contraction",), "contraction"),
            (("frt",), "frt"),
        ):
            for n_trees in (1, 2, 4, 8):
                cfg = SolverConfig(
                    seed=0, n_trees=n_trees, tree_methods=methods, refine=False
                )
                res = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg)
                table.add_row([family, label, n_trees, res.cost])
    return table


def test_e6_tree_ensemble(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E6_tree_ensemble", table.show(), results_dir)
    # Monotonicity within each (family, builder) series.
    series: dict[tuple, list[tuple[int, float]]] = {}
    for family, label, n_trees, cost in table.rows:
        series.setdefault((family, label), []).append((int(n_trees), float(cost)))
    for key, points in series.items():
        points.sort()
        costs = [c for _, c in points]
        assert all(costs[i + 1] <= costs[i] + 1e-9 for i in range(len(costs) - 1)), key
