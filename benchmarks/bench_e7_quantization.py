"""E7 — ablation: demand-grid resolution and slack (the ε trade-off).

Sweeps (a) the grid budget (cells of quantized demand — the paper's
``D``) and (b) the capacity slack, recording cost, violation and DP
time.  Expected shape: finer grids and larger slack weakly lower cost;
violation tracks ``(1 + slack)``-scaled bounds; time grows sharply with
the budget (the pseudo-polynomial axis measured in E4).
"""

from __future__ import annotations

import time


from repro import SolverConfig, solve_hgp
from repro.bench import Table, make_instance, save_result, standard_hierarchy


def _experiment() -> Table:
    table = Table(
        ["knob", "value", "cost", "violation", "solve_s"],
        title="E7: demand-grid resolution / slack ablation",
    )
    hier = standard_hierarchy("2x4")
    inst = make_instance("blocks", 28, hier, seed=31)
    for budget_mult in (1, 2, 4, 8):
        cfg = SolverConfig(
            seed=0,
            n_trees=4,
            grid_mode="budget",
            grid_budget=budget_mult * inst.graph.n,
            refine=False,
        )
        t0 = time.perf_counter()
        res = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg)
        secs = time.perf_counter() - t0
        table.add_row(
            [
                "budget_cells",
                budget_mult * inst.graph.n,
                res.cost,
                res.placement.max_violation(),
                secs,
            ]
        )
    for slack in (0.05, 0.15, 0.3, 0.6):
        cfg = SolverConfig(seed=0, n_trees=4, slack=slack, refine=False)
        t0 = time.perf_counter()
        res = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg)
        secs = time.perf_counter() - t0
        table.add_row(
            ["slack", slack, res.cost, res.placement.max_violation(), secs]
        )
    return table


def test_e7_quantization(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E7_quantization", table.show(), results_dir)
    # Violation must always respect the worst-case bound (1+slack)(1+h).
    for knob, value, _cost, violation, _secs in table.rows:
        slack = float(value) if knob == "slack" else 0.25
        assert float(violation) <= (1 + slack) * 3 + 1e-9
