"""E8 — the k-BGP specialisation (h = 1) against classical partitioners.

HGP with a flat hierarchy *is* balanced k-way partitioning; this
experiment checks the general machinery degrades gracefully: on
minimum-bisection and k-way instances the pipeline's cut should sit in
the same range as the dedicated multilevel/KL/FM machinery, and both
should crush random partitions.  Expected shape: multilevel ≈ hgp ≪
random; on planted instances both land near the planted cut.
"""

from __future__ import annotations

import numpy as np

from repro import SolverConfig, solve_kbgp
from repro.bench import Table, save_result
from repro.baselines.multilevel import partition_kway
from repro.core.kbgp import minimum_bisection
from repro.graph.generators import grid_2d, planted_partition, random_regular


def _experiment() -> Table:
    table = Table(
        ["instance", "k", "method", "cut"],
        title="E8: k-BGP specialisation (h = 1)",
    )
    cases = [
        ("grid6x6", grid_2d(6, 6), 4),
        ("blocks4x8", planted_partition(4, 8, 0.8, 0.03, seed=3), 4),
        ("expander24", random_regular(24, 4, seed=4), 4),
    ]
    rng = np.random.default_rng(0)
    for name, g, k in cases:
        labels_ml = partition_kway(g, k, seed=0)
        table.add_row([name, k, "multilevel", g.partition_cut_weight(labels_ml)])
        p = solve_kbgp(g, k, config=SolverConfig(seed=0, n_trees=4))
        table.add_row([name, k, "hgp(h=1)", g.partition_cut_weight(p.leaf_of)])
        random_labels = rng.integers(0, k, size=g.n)
        table.add_row([name, k, "random", g.partition_cut_weight(random_labels)])
    # Minimum bisection corner.
    g = planted_partition(2, 12, 0.85, 0.02, seed=9)
    cut, _ = minimum_bisection(g, seed=0)
    table.add_row(["bisect-blocks", 2, "multilevel_bisect", cut])
    planted = g.cut_weight(np.arange(24) < 12)
    table.add_row(["bisect-blocks", 2, "planted", planted])
    return table


def test_e8_kbgp(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E8_kbgp", table.show(), results_dir)
    cuts: dict[tuple, float] = {}
    for name, k, method, cut in table.rows:
        cuts[(name, method)] = float(cut)
    for name in ("grid6x6", "blocks4x8", "expander24"):
        assert cuts[(name, "multilevel")] < cuts[(name, "random")]
        assert cuts[(name, "hgp(h=1)")] < cuts[(name, "random")]
    assert cuts[("bisect-blocks", "multilevel_bisect")] <= 1.5 * cuts[
        ("bisect-blocks", "planted")
    ]
