"""E9 — the motivating application: streaming throughput vs placement.

Section 1 of the paper observes that pinning strongly-communicating
stream operators to nearby cores raises maximum throughput.  This
experiment reproduces that observation end-to-end on synthetic
TidalRace-style workloads: the throughput model's λ* (max input scale
before a core saturates) per placement method.

Expected shape: methods ordered by Eq. (1) cost are (weakly) ordered by
communication burn, and the hierarchy-aware placements sustain equal or
higher λ* than round-robin/random — the paper's original observation.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, save_result, standard_hierarchy
from repro.streaming import CommCostModel, place_dag, random_workload


def _experiment() -> Table:
    table = Table(
        ["workload", "method", "eq1_cost", "max_scale", "comm_frac"],
        title="E9: streaming throughput by placement method (2 sockets x 8 cores)",
    )
    hier = standard_hierarchy("2x8")
    model = CommCostModel.for_hierarchy(hier, base=2e-7, ratio=4.0)
    for seed in (1, 2):
        dag = random_workload(n_queries=4, n_sources=3, seed=seed)
        for method in ("random", "round_robin", "greedy", "flat_quotient", "hgp"):
            placement, report = place_dag(
                dag, hier, method=method, model=model, seed=0
            )
            table.add_row(
                [
                    f"wl{seed}(n={dag.n_operators})",
                    method,
                    placement.cost(),
                    report.max_scale,
                    report.comm_fraction,
                ]
            )
    return table


def test_e9_streaming(benchmark, results_dir):
    table = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result("E9_streaming", table.show(), results_dir)
    by_wl: dict[str, dict[str, tuple[float, float]]] = {}
    for wl, method, cost, scale, frac in table.rows:
        by_wl.setdefault(wl, {})[method] = (float(cost), float(frac))
    for wl, rows in by_wl.items():
        # Hierarchy-aware placement burns less CPU on communication than
        # locality-oblivious round-robin (the paper's Section 1 claim).
        assert rows["hgp"][1] <= rows["round_robin"][1] + 1e-9, wl
        assert rows["hgp"][0] <= rows["random"][0] + 1e-9, wl
