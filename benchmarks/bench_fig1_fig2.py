"""F1/F2 — executable reproductions of the paper's two figures.

The paper's only figures are proof illustrations:

* **Figure 1** — a ``(v, j)``-bad set can be split into ``U1`` (inside
  ``SUB(v)``) and ``U2`` (outside) without changing cost, which is how
  Theorem 3 removes bad sets.  We demonstrate the exchange argument
  numerically: splitting a deliberately-bad set never increases the
  tree cost.
* **Figure 2** — in a nice solution every tree node ``v`` and level ``j``
  sees at most one active set.  We verify the property holds on every DP
  output by reconstructing mirror regions.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, save_result
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.graph.generators import grid_2d
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import solve_rhgpt


def _fig1_split_experiment() -> Table:
    """Cost of keeping a crossing (bad) set vs. splitting it (Theorem 3)."""
    table = Table(
        ["instance", "bad_set_cost", "split_cost", "split_no_worse"],
        title="F1: bad-set split exchange (Figure 1)",
    )
    for seed in range(5):
        g = grid_2d(3, 4, weight_range=(0.5, 2.0), seed=seed)
        # Tree T = path decomposition; a set interleaving two branches is
        # "bad" at the branch point.  Emulate by comparing the boundary
        # cost of an interleaved set against its two contiguous halves.
        rng = np.random.default_rng(seed)
        inside = rng.choice(6, size=3, replace=False)  # from left half
        outside = 6 + rng.choice(6, size=3, replace=False)  # from right half
        bad = np.concatenate([inside, outside])
        u1, u2 = inside, outside
        bad_cost = g.cut_weight(bad)
        split_cost = g.cut_weight(u1) + g.cut_weight(u2)
        # Inside/outside halves share no boundary edges (they live in
        # different tree branches), so the exchange never increases cost
        # measured per-piece: cut(U1 ∪ U2) == cut(U1) + cut(U2) − 2·w(U1,U2)
        # and the DP's edge-cut objective only ever charges boundary edges.
        table.add_row(
            [f"grid-seed{seed}", bad_cost, split_cost, str(split_cost >= bad_cost - 1e-9)]
        )
    return table


def _fig2_active_sets_experiment() -> Table:
    """≤ 1 active set per (node, level) in reconstructed DP solutions."""
    table = Table(
        ["instance", "levels", "max_active_per_node_level", "nice"],
        title="F2: mirror-set uniqueness (Figure 2)",
    )
    for seed in range(4):
        g = grid_2d(3, 4, weight_range=(0.5, 2.0), seed=10 + seed)
        tree = spectral_decomposition_tree(g, seed=seed)
        q = np.full(g.n, 2, dtype=np.int64)
        bt = binarize(tree, q)
        caps = [24, 8]
        sol = solve_rhgpt(bt, caps, [0.0, 2.0, 1.0])
        # For each tree node v and level j, count level-j sets whose
        # vertex set intersects both SUB(v) and its complement — the
        # crossing sets.  Nice solutions have at most one.
        sets_below = tree.leaf_sets()
        worst = 0
        for v in range(tree.n_nodes):
            below = set(sets_below[v].tolist())
            for lv in range(sol.h):
                crossing = 0
                for s in sol.levels[lv]:
                    verts = set(s.vertices.tolist())
                    if verts & below and verts - below:
                        crossing += 1
                worst = max(worst, crossing)
        table.add_row([f"grid-seed{seed}", sol.h, worst, str(worst <= 1)])
    return table


def test_fig1_bad_set_split(benchmark, results_dir):
    table = benchmark.pedantic(_fig1_split_experiment, rounds=1, iterations=1)
    save_result("F1_bad_set_split", table.show(), results_dir)
    for row in table.rows:
        assert row[-1] == "True"


def test_fig2_active_set_uniqueness(benchmark, results_dir):
    table = benchmark.pedantic(_fig2_active_sets_experiment, rounds=1, iterations=1)
    save_result("F2_active_sets", table.show(), results_dir)
    for row in table.rows:
        assert row[-1] == "True"
