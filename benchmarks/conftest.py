"""Shared configuration for the experiment benchmarks.

Every experiment function both *times* its core computation (via the
pytest-benchmark fixture, so ``--benchmark-only`` runs it) and *prints +
saves* the table/series the paper-style evaluation reports, under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
