"""Shared configuration for the experiment benchmarks.

Every experiment function both *times* its core computation (via the
pytest-benchmark fixture, so ``--benchmark-only`` runs it) and *prints +
saves* the table/series the paper-style evaluation reports, under
``benchmarks/results/``.

In addition, every engine run any benchmark triggers persists its
structured JSON run report under ``benchmarks/results/reports/`` (one
``<path>_<run_id>.json`` per run, via the ``REPRO_RUN_REPORT_DIR``
hook in :func:`repro.core.engine.run_pipeline`) so per-stage timings
are inspectable with ``repro report`` after any benchmark session.
The directory is scratch output and git-ignored.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
RUN_REPORT_DIR = RESULTS_DIR / "reports"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def _persist_run_reports():
    """Have every engine run in the session drop its report to disk."""
    RUN_REPORT_DIR.mkdir(parents=True, exist_ok=True)
    previous = os.environ.get("REPRO_RUN_REPORT_DIR")
    os.environ["REPRO_RUN_REPORT_DIR"] = str(RUN_REPORT_DIR)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_RUN_REPORT_DIR", None)
        else:
            os.environ["REPRO_RUN_REPORT_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def _dump_session_metrics():
    """Dump the registry to ``$REPRO_METRICS_DUMP`` at session end.

    The file carries both the JSON snapshot (machine-readable; what
    ``tools/bench_regress.py --metrics-dump`` validates) and the
    Prometheus text rendering (human-greppable in a CI artifact).
    Unset variable = no dump, zero overhead.
    """
    yield
    path = os.environ.get("REPRO_METRICS_DUMP")
    if not path:
        return
    import json

    from repro.obs.metrics import get_registry

    registry = get_registry()
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(
            {"snapshot": registry.snapshot(), "rendered": registry.render()},
            indent=2,
        )
        + "\n"
    )
