#!/usr/bin/env python
"""Approximation quality study against exact ground truth.

On instances small enough for the exact branch-and-bound solver, this
script measures the realized approximation ratio of the Theorem-1
pipeline and how the two bicriteria dials (cost vs. balance violation)
trade off as the grid slack varies.

Run:  python examples/approximation_study.py
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig, exact_hgp, solve_hgp
from repro.bench import Table
from repro.graph import grid_2d, random_regular


def main() -> None:
    hierarchy = Hierarchy([2, 2], [5.0, 1.0, 0.0])

    table = Table(
        ["instance", "opt", "hgp", "ratio", "hgp_violation"],
        title="pipeline vs exact optimum (4 leaves, h = 2)",
    )
    ratios = []
    for seed in range(4):
        for name, g in (
            (f"grid2x4-{seed}", grid_2d(2, 4, weight_range=(0.5, 2.0), seed=seed)),
            (f"expander8-{seed}", random_regular(8, 3, weight_range=(0.5, 2.0), seed=seed)),
        ):
            d = np.full(g.n, 0.45)
            opt = exact_hgp(g, hierarchy, d, violation=1.0)
            res = solve_hgp(
                g,
                hierarchy,
                d,
                SolverConfig(seed=seed, n_trees=8, grid_mode="epsilon", epsilon=0.2),
            )
            ratio = res.cost / opt.cost() if opt.cost() > 0 else 1.0
            ratios.append(ratio)
            table.add_row(
                [name, opt.cost(), res.cost, ratio, res.placement.max_violation()]
            )
    table.show()
    print(f"\nmean ratio: {np.mean(ratios):.3f}  worst: {np.max(ratios):.3f} "
          f"(guarantee: O(log n) with (1+eps)(1+h) = 3.6x balance slack)")

    # The slack dial: tighter grids trade cost for balance.
    g = grid_2d(2, 4, weight_range=(0.5, 2.0), seed=9)
    d = np.full(g.n, 0.45)
    dial = Table(["slack", "cost", "violation"], title="the bicriteria dial")
    for slack in (0.05, 0.2, 0.5, 1.0):
        res = solve_hgp(
            g, hierarchy, d, SolverConfig(seed=0, n_trees=6, slack=slack)
        )
        dial.add_row([slack, res.cost, res.placement.max_violation()])
    dial.show()


if __name__ == "__main__":
    main()
