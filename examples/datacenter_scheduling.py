#!/usr/bin/env python
"""Service placement across a datacenter rack hierarchy.

HGP is not just about cores: the same model covers racks and servers.
This example places a micro-service communication graph (power-law:
a few chatty hub services) onto 4 racks x 4 servers where cross-rack
traffic is 4x as expensive as cross-server-same-rack traffic, and shows
the per-level cost decomposition for every method.

Run:  python examples/datacenter_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig, solve_hgp
from repro.baselines import placement_baselines
from repro.bench import Table
from repro.graph import power_law, random_demands


def main() -> None:
    # 48 services; heavy-tailed communication (hubs talk to everyone).
    graph = power_law(48, m_per_node=2, weight_range=(1.0, 8.0), seed=3)
    # 4 racks x 4 servers; cm: cross-rack 20, cross-server 5, same 0.
    hierarchy = Hierarchy([4, 4], [20.0, 5.0, 0.0])
    demands = random_demands(
        graph.n, hierarchy.total_capacity, fill=0.65, skew=0.6, seed=4
    )

    table = Table(
        ["method", "total_cost", "cross_rack", "cross_server", "violation"],
        title="service placement on 4 racks x 4 servers",
    )

    def add(name: str, placement) -> None:
        by_level = placement.level_cut_costs()
        table.add_row(
            [name, placement.cost(), by_level[0], by_level[1], placement.max_violation()]
        )

    for name, fn in placement_baselines().items():
        add(name, fn(graph, hierarchy, demands, seed=0))
    result = solve_hgp(graph, hierarchy, demands, SolverConfig(seed=0))
    add("hgp", result.placement)
    table.show()

    print("\nphase timings (hgp):")
    print(result.stopwatch.summary())


if __name__ == "__main__":
    main()
