#!/usr/bin/env python
"""MPI rank mapping: a stencil communicator on a hierarchical cluster.

The paper's related work (Träff, SC'02) studies exactly this: mapping an
MPI virtual topology onto a machine hierarchy.  Here a 2-D halo-exchange
(torus) communicator of 64 ranks is mapped onto 4 nodes x 16 cores where
inter-node bytes cost 25x intra-node-cross-core bytes.  We report both
the HGP objective and the *hop-bytes* style breakdown MPI papers use
(bytes by network level).

Run:  python examples/mpi_rank_mapping.py
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig, solve_hgp
from repro.baselines import placement_baselines
from repro.bench import Table
from repro.graph import torus_2d


def main() -> None:
    # 8x8 periodic stencil; halo volumes jittered +-20%.
    comm = torus_2d(8, 8, weight_range=(0.8, 1.2), seed=1)
    # 4 nodes x 16 cores; cm: inter-node 25, intra-node 1, same-core 0.
    machine = Hierarchy([4, 16], [25.0, 1.0, 0.0])
    # One rank per core exactly: uniform demands at full occupancy.
    demands = np.full(comm.n, 1.0)

    table = Table(
        ["method", "objective", "inter_node_bytes", "intra_node_bytes", "violation"],
        title="MPI rank mapping: 8x8 torus on 4 nodes x 16 cores",
    )

    def add(name, placement):
        levels = placement.level_cut_costs()
        # bytes by level = level cost / multiplier at that level
        inter = levels[0] / 25.0
        intra = levels[1] / 1.0
        table.add_row([name, placement.cost(), inter, intra, placement.max_violation()])

    for name in ("random", "round_robin", "flat_shuffled", "flat_quotient",
                 "recursive_bisection"):
        add(name, placement_baselines()[name](comm, machine, demands, seed=0))
    res = solve_hgp(
        comm, machine, demands, SolverConfig(seed=0, n_trees=4, beam_width=128)
    )
    add("hgp", res.placement)
    table.show()

    # The ideal mapping puts each 4x4 quadrant on one node: 16 + 16 torus
    # edges cross quadrants horizontally/vertically (plus wraparound).
    quadrant = (np.arange(64) // 8 // 4) * 2 + (np.arange(64) % 8) // 4
    ideal_cross = comm.partition_cut_weight(quadrant)
    print(f"\nquadrant-blocked reference: {ideal_cross:.1f} inter-node edge weight")
    print(
        "note: at 100% occupancy a violation of 2 means one core hosts two "
        "ranks — the price bicriteria methods pay for the big cut savings; "
        "lower --fill style demands or enforce_capacity() for strict 1:1."
    )


if __name__ == "__main__":
    main()
