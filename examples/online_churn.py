#!/usr/bin/env python
"""Online placement under churn — beyond the static paper setting.

Streams of task arrivals/departures hit an :class:`OnlinePlacer`; we
compare never re-optimising, re-optimising with a small migration
budget, and unlimited re-optimisation, and show where each policy's cost
trajectory ends up.

Run:  python examples/online_churn.py
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig
from repro.bench import Table
from repro.streaming import ChurnEvent, simulate_churn
from repro.utils.rng import ensure_rng


def make_trace(n_events: int, n_clusters: int, seed: int) -> list[ChurnEvent]:
    """Clustered arrivals with ~25% departures."""
    rng = ensure_rng(seed)
    events: list[ChurnEvent] = []
    live: list[int] = []
    next_id = 0
    for _ in range(n_events):
        if live and rng.random() < 0.25:
            victim = live.pop(int(rng.integers(0, len(live))))
            events.append(ChurnEvent("depart", victim))
            continue
        cluster = next_id % n_clusters
        intra = tuple((u, 5.0) for u in live if u % n_clusters == cluster)[:4]
        inter = tuple((u, 0.3) for u in live if u % n_clusters != cluster)[:2]
        events.append(
            ChurnEvent("arrive", next_id, float(rng.uniform(0.1, 0.3)), intra + inter)
        )
        live.append(next_id)
        next_id += 1
    return events


def main() -> None:
    hierarchy = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    events = make_trace(60, n_clusters=4, seed=5)
    cfg = SolverConfig(n_trees=2, refine=False, seed=0)

    table = Table(
        ["policy", "mean_cost", "final_cost", "migrations", "reopts"],
        title="re-optimisation policies over a 60-event churn trace",
    )
    series = {}
    for name, period, budget in (
        ("never", 0, None),
        ("every 15, budget 3", 15, 3),
        ("every 15, unlimited", 15, None),
    ):
        result = simulate_churn(
            hierarchy, events, reopt_period=period, migration_budget=budget, config=cfg
        )
        series[name] = result.costs
        table.add_row(
            [
                name,
                float(np.mean(result.costs)),
                result.costs[-1],
                result.migrations,
                result.counters.reopt_calls,
            ]
        )
    table.show()

    # A coarse sparkline of the trajectories.
    print("\ncost trajectory (one char per 3 events, scaled to the max):")
    peak = max(max(c) for c in series.values()) or 1.0
    glyphs = " .:-=+*#%@"
    for name, costs in series.items():
        line = "".join(
            glyphs[min(9, int(9 * costs[i] / peak))] for i in range(0, len(costs), 3)
        )
        print(f"  {name:<22s} |{line}|")


if __name__ == "__main__":
    main()
