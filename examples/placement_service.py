#!/usr/bin/env python
"""Placement as a service — a programmatic tour of ``repro.serve``.

Starts an in-process :class:`PlacementServer` (the same object
``python -m repro serve`` wraps), then walks the service contract:

1. submit a placement request and read the placement back,
2. storm the server with byte-identical duplicates and watch them
   coalesce onto a single solve (one leader, N-1 followers),
3. miss a deadline on purpose and inspect the 504 + ``stage`` answer,
4. drain gracefully and confirm new work is refused while queued work
   finishes.

Run:  python examples/placement_service.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.config import SolverConfig
from repro.graph import planted_partition, random_demands
from repro.serve import PlacementClient, PlacementServer, ServeConfig


def make_payload(seed: int = 11, n: int = 24) -> dict:
    """A small planted-partition instance as a wire-format request."""
    g = planted_partition(4, n // 4, p_in=0.85, p_out=0.05, seed=seed)
    degrees, cm = [2, 4], [10.0, 3.0, 0.0]
    capacity = 1.0
    demands = random_demands(g.n, 8 * capacity, fill=0.5, seed=seed + 1)
    return {
        "graph": {
            "n": g.n,
            "edges": [
                [int(u), int(v), float(w)]
                for u, v, w in zip(g.edges_u, g.edges_v, g.edges_w)
            ],
        },
        "hierarchy": {"degrees": degrees, "cm": cm, "leaf_capacity": capacity},
        "demands": demands.tolist(),
    }


def main() -> None:
    config = ServeConfig(
        port=0,  # pick a free port; server.url tells us which
        queue_capacity=8,
        default_deadline_s=30.0,
        solver=SolverConfig(seed=11, n_trees=2, n_jobs=2),
    )
    payload = make_payload()

    with PlacementServer(config) as server:
        client = PlacementClient(server.url)
        print(f"service up at {server.url}")

        # -- 1. one request -------------------------------------------
        resp = client.solve(
            graph=payload["graph"],
            hierarchy=payload["hierarchy"],
            demands=payload["demands"],
            deadline_s=20.0,
        )
        body = resp.json()
        print(
            f"solved: cost={body['cost']:.1f} "
            f"leaves={len(set(body['leaf_of']))} "
            f"served_from={resp.served_from}"
        )

        # -- 2. duplicates coalesce onto one solve --------------------
        # Eight tenants submit a byte-identical *fresh* instance at
        # once; the first becomes the leader, the rest subscribe to its
        # in-flight solve (a repeat of step 1's instance would be a
        # response-cache hit instead).  Every body is byte-identical.
        dup = dict(make_payload(seed=23), priority="batch")
        with ThreadPoolExecutor(max_workers=8) as pool:
            answers = list(
                pool.map(lambda _: client.solve_raw(dup), range(8))
            )
        sources = sorted(r.served_from for r in answers)
        unique_bodies = {r.body for r in answers}
        print(
            f"8 duplicates -> served_from={sources} "
            f"({len(unique_bodies)} distinct body)"
        )
        print(f"server stats: coalesced={server.stats()['coalesced_total']}")

        # -- 3. an impossible deadline is a clean 504, not a hang -----
        # (again a fresh instance: a cached answer is free, so the
        # server happily serves it even with no budget left)
        late = dict(make_payload(seed=37), deadline_s=1e-9)
        resp = client.solve_raw(late)
        print(
            f"deadline_s=1e-9 -> HTTP {resp.status} "
            f"stage={resp.json().get('stage')}"
        )

        # -- 4. graceful drain ----------------------------------------
        server.initiate_drain()
        refused = client.solve_raw(payload)
        print(
            f"after initiate_drain(): new solve -> HTTP {refused.status} "
            f"served_from={refused.served_from}"
        )
    # Leaving the context manager completed the drain: queued work was
    # finished, the pool was shut down, and no spool files were left.
    print("drained; service stopped.")


if __name__ == "__main__":
    main()
