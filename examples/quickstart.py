#!/usr/bin/env python
"""Quickstart: place a task graph on a 2-socket server in ~20 lines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Hierarchy, SolverConfig, solve_hgp
from repro.graph import planted_partition, random_demands


def main() -> None:
    # A task graph with four natural clusters of 6 tasks each.
    graph = planted_partition(
        n_blocks=4, block_size=6, p_in=0.9, p_out=0.05, seed=7
    )

    # The machine: 2 CPU sockets x 4 cores.  Cross-socket traffic costs
    # 10 per unit of communication, same-socket cross-core traffic 3,
    # co-located traffic is free.
    hierarchy = Hierarchy(degrees=[2, 4], cost_multipliers=[10.0, 3.0, 0.0])

    # CPU demands: 60% aggregate utilisation, mildly skewed.
    demands = random_demands(
        graph.n, hierarchy.total_capacity, fill=0.6, skew=0.3, seed=8
    )

    result = solve_hgp(graph, hierarchy, demands, SolverConfig(seed=0))
    placement = result.placement

    print("instance:   ", graph)
    print("hierarchy:  ", hierarchy)
    print("placement:  ", placement.summary())
    print("cost by LCA level (root..leaf):", placement.level_cut_costs())
    print("per-tree mapped costs:", [round(c, 1) for c in result.tree_costs])
    print()
    print("core assignment (task -> core):")
    for core in range(hierarchy.k):
        tasks = np.nonzero(placement.leaf_of == core)[0]
        if tasks.size:
            load = placement.demands[tasks].sum()
            print(f"  core {core} (socket {core // 4}): tasks {tasks.tolist()} "
                  f"load {load:.2f}")


if __name__ == "__main__":
    main()
