#!/usr/bin/env python
"""Streaming-operator placement — the paper's motivating scenario.

Generates a TidalRace-style multi-query streaming workload, pins it onto
a 2-socket x 8-core server with several placement methods, and reports
the throughput model's verdict: how far input rates can scale before a
core saturates, and how much CPU each placement burns on communication.

Run:  python examples/streaming_placement.py
"""

from __future__ import annotations

from repro import Hierarchy, SolverConfig
from repro.bench import Table
from repro.streaming import CommCostModel, place_dag, random_workload


def main() -> None:
    # The workload: 5 queries (pipelines, aggregation trees, diamonds)
    # over 3 shared sources with skewed rates.
    dag = random_workload(n_queries=5, n_sources=3, seed=11)
    in_rate, traffic = dag.propagate_rates()
    print(f"workload: {dag.n_operators} operators, {len(dag.edges)} streams, "
          f"{traffic.sum() / 1e6:.2f} MB/s total traffic")

    # The machine: 2 sockets x 8 cores. Cross-socket bytes cost 4x the
    # CPU tax of same-socket bytes; co-located bytes are free.
    hierarchy = Hierarchy([2, 8], [10.0, 3.0, 0.0])
    model = CommCostModel.for_hierarchy(hierarchy, base=2e-7, ratio=4.0)

    table = Table(
        ["method", "comm_cost(eq1)", "max_input_scale", "comm_cpu_frac", "violation"],
        title="placement quality on a 2x8 server",
    )
    for method in ("round_robin", "random", "greedy", "flat_quotient", "hgp"):
        placement, report = place_dag(
            dag,
            hierarchy,
            method=method,
            config=SolverConfig(seed=0),
            model=model,
            seed=0,
        )
        table.add_row(
            [
                method,
                placement.cost(),
                report.max_scale,
                report.comm_fraction,
                placement.max_violation(),
            ]
        )
    table.show()

    # Where does the traffic land for the best method?
    placement, report = place_dag(
        dag, hierarchy, method="hgp", config=SolverConfig(seed=0), model=model
    )
    labels = ["cross-socket", "cross-core (same socket)", "co-located"]
    print("\ntraffic by placement distance (hgp):")
    for label, t in zip(labels, report.traffic_by_level):
        print(f"  {label:<26s} {t / 1e6:8.3f} MB/s")


if __name__ == "__main__":
    main()
