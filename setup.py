"""Shim for environments without the ``wheel`` package.

The offline sandbox lacks ``wheel``, so PEP-517 editable installs fail
with ``invalid command 'bdist_wheel'``.  Keeping this ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy develop-install path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
