"""repro — reproduction of *Hierarchical Graph Partitioning* (SPAA 2014).

Public API (one import for the common workflow)::

    from repro import Graph, Hierarchy, SolverConfig, solve_hgp

    g = ...                       # task graph (Graph)
    H = Hierarchy([2, 8], [10.0, 3.0, 0.0])   # 2 sockets x 8 cores
    result = solve_hgp(g, H, demands, SolverConfig(seed=0))
    print(result.placement.summary())

Subpackages
-----------
``repro.graph``
    CSR graph kernel, generators, I/O, spectral tools.
``repro.flow``
    Max-flow / min-cut / Gomory–Hu substrate.
``repro.hierarchy``
    The HGP problem model: hierarchy trees, placements, Eq. (1)/(3) costs.
``repro.decomposition``
    Decomposition trees + builders (the Räcke step of Theorem 1).
``repro.hgpt``
    Demand grids, binarization, the RHGPT signature DP, Theorem-5 repair.
``repro.core``
    The end-to-end pipeline, exact ground truth, k-BGP reduction.
``repro.baselines``
    Flat/multilevel/greedy/local-search comparators.
``repro.streaming``
    Streaming-operator placement application (the paper's motivation).
"""

from repro.cache import CacheConfig, configure_cache, get_cache
from repro.errors import (
    DegradedRunError,
    InfeasibleError,
    InvalidInputError,
    ReproError,
    SolverError,
)
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline
from repro.core.resilience import ResilienceConfig, RetryPolicy
from repro.core.solver import HGPResult, solve_hgp, solve_hgpt
from repro.core.telemetry import RunReport, Telemetry
from repro.core.exact import exact_hgp
from repro.core.kbgp import kbgp_hierarchy, solve_kbgp

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "InvalidInputError",
    "InfeasibleError",
    "SolverError",
    "DegradedRunError",
    "Graph",
    "Hierarchy",
    "Placement",
    "SolverConfig",
    "ResilienceConfig",
    "RetryPolicy",
    "CacheConfig",
    "get_cache",
    "configure_cache",
    "HGPResult",
    "solve_hgp",
    "solve_hgpt",
    "run_pipeline",
    "RunReport",
    "Telemetry",
    "exact_hgp",
    "kbgp_hierarchy",
    "solve_kbgp",
    "__version__",
]
