"""Baseline placement algorithms and partition refinement.

Registry
--------
:func:`placement_baselines` returns the name → callable map used by the
benchmark harness; every callable has the uniform signature
``(graph, hierarchy, demands, seed) -> Placement``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement

from repro.baselines.fm import fm_refine
from repro.baselines.kl import kl_refine
from repro.baselines.multilevel import bisect, coarsen, partition_kway
from repro.baselines.flat import flat_placement, map_parts_to_leaves
from repro.baselines.recursive_bisection import recursive_bisection_placement
from repro.baselines.greedy import greedy_placement
from repro.baselines.random_placement import random_placement, round_robin_placement
from repro.baselines.local_search import refine_placement

__all__ = [
    "fm_refine",
    "kl_refine",
    "bisect",
    "coarsen",
    "partition_kway",
    "flat_placement",
    "map_parts_to_leaves",
    "recursive_bisection_placement",
    "greedy_placement",
    "random_placement",
    "round_robin_placement",
    "refine_placement",
    "placement_baselines",
]

BaselineFn = Callable[..., Placement]


def placement_baselines() -> Dict[str, BaselineFn]:
    """Uniform-signature registry of all baseline placement methods."""

    def _flat_identity(g: Graph, h: Hierarchy, d: Sequence[float], seed=None):
        return flat_placement(g, h, d, mapping="identity", seed=seed)

    def _flat_quotient(g: Graph, h: Hierarchy, d: Sequence[float], seed=None):
        return flat_placement(g, h, d, mapping="quotient", seed=seed)

    def _flat_shuffled(g: Graph, h: Hierarchy, d: Sequence[float], seed=None):
        return flat_placement(g, h, d, mapping="shuffled", seed=seed)

    return {
        "random": random_placement,
        "round_robin": round_robin_placement,
        "greedy": greedy_placement,
        "flat_identity": _flat_identity,
        "flat_shuffled": _flat_shuffled,
        "flat_quotient": _flat_quotient,
        "recursive_bisection": recursive_bisection_placement,
    }
