"""Flat (hierarchy-oblivious) partitioning baselines.

The natural "state of practice" the paper argues against: partition ``G``
into ``k`` balanced parts with a high-quality flat partitioner, then
assign parts to leaves.  Two mapping variants:

* ``identity`` — parts go to leaves in index order, i.e. the partitioner
  is *completely* blind to the hierarchy.  This is the honest k-BGP
  baseline: it minimises total cut but pays arbitrary multipliers.
* ``quotient`` — the *dual recursive bipartitioning* mapping of
  Pellegrini/SCOTCH (paper reference [22]): build the quotient graph over
  parts (weights = inter-part traffic) and recursively bisect it along
  the hierarchy's own structure, so heavily-communicating parts land
  under nearby H-nodes.  This is the strongest heuristic comparator and
  the method closest to what production mappers do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.baselines.multilevel import bisect, partition_kway
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["flat_placement", "map_parts_to_leaves"]


def flat_placement(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    mapping: str = "quotient",
    tol: float = 0.05,
    seed: SeedLike = None,
) -> Placement:
    """k-way partition + part-to-leaf mapping.

    Parameters
    ----------
    g, hierarchy, demands:
        The HGP instance.
    mapping:
        ``"identity"`` (hierarchy-oblivious) or ``"quotient"`` (dual
        recursive bipartitioning).
    tol:
        Balance tolerance per bisection split.
    seed:
        RNG seed.
    """
    if mapping not in ("identity", "quotient", "shuffled"):
        raise InvalidInputError(f"unknown mapping {mapping!r}")
    d = np.asarray(demands, dtype=np.float64)
    rng = ensure_rng(seed)
    labels = partition_kway(g, hierarchy.k, vertex_weights=d, tol=tol, seed=rng)
    if mapping == "identity":
        # NOTE: recursive bisection numbers parts hierarchically (parts
        # 0..k/2-1 are one side of the first split), so identity mapping
        # is *accidentally* hierarchy-friendly.  Use "shuffled" for the
        # honest hierarchy-oblivious baseline.
        leaf_of = labels.copy()
    elif mapping == "shuffled":
        perm = rng.permutation(hierarchy.k)
        leaf_of = perm[labels]
    else:
        part_to_leaf = map_parts_to_leaves(g, hierarchy, labels, seed=rng)
        leaf_of = part_to_leaf[labels]
    return Placement(
        g, hierarchy, d, leaf_of, meta={"solver": f"flat_{mapping}"}
    )


def map_parts_to_leaves(
    g: Graph,
    hierarchy: Hierarchy,
    labels: np.ndarray,
    seed: SeedLike = None,
) -> np.ndarray:
    """Dual recursive bipartitioning: map ``k`` parts onto the ``k`` leaves.

    Recursively splits the set of parts following the hierarchy: at a
    level-``j`` node with ``DEG(j)`` children, the quotient graph over
    the remaining parts is split into ``DEG(j)`` groups of proportional
    sizes by recursive bisection (minimising inter-group traffic, which
    is exactly the traffic that will pay ``cm(j)``), and each group
    recurses into one child.

    Returns
    -------
    numpy.ndarray
        ``part_to_leaf[p]`` = leaf id for part ``p``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (g.n,):
        raise InvalidInputError(f"labels must have shape ({g.n},)")
    n_parts = int(labels.max()) + 1 if labels.size else 0
    if n_parts > hierarchy.k:
        raise InvalidInputError(
            f"{n_parts} parts do not fit on {hierarchy.k} leaves"
        )
    rng = ensure_rng(seed)
    quotient = g.contract(labels)
    part_to_leaf = np.zeros(n_parts, dtype=np.int64)

    def rec(parts: np.ndarray, level: int, node: int) -> None:
        if parts.size == 0:
            return
        if level == hierarchy.h:
            # One leaf per part slot (parts.size <= 1 by capacity).
            part_to_leaf[parts] = node
            return
        deg = hierarchy.degrees[level]
        child_nodes = hierarchy.children(level, node)
        # Split `parts` into deg groups of near-equal count by recursive
        # bisection of the induced quotient subgraph.
        groups = _split_groups(quotient, parts, deg, rng)
        for child, group in zip(child_nodes, groups):
            rec(group, level + 1, int(child))

    rec(np.arange(n_parts, dtype=np.int64), 0, 0)
    return part_to_leaf


def _split_groups(
    quotient: Graph, parts: np.ndarray, deg: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Split ``parts`` into ``deg`` groups of near-equal cardinality,
    minimising quotient-graph cut via recursive bisection."""
    if deg == 1 or parts.size <= 1:
        groups = [parts] + [np.empty(0, dtype=np.int64)] * (deg - 1)
        return groups
    d1 = deg // 2
    d2 = deg - d1
    sub, back = quotient.subgraph(parts)
    frac = d1 / deg
    mask = bisect(sub, target_fraction=frac, tol=0.5 / deg, seed=rng)
    left = back[np.nonzero(mask)[0]]
    right = back[np.nonzero(~mask)[0]]
    # Cardinality correction: each side must fit its leaf budget.
    left, right = _enforce_counts(left, right, d1, d2, parts.size)
    return _split_groups(quotient, left, d1, rng) + _split_groups(
        quotient, right, d2, rng
    )


def _enforce_counts(
    left: np.ndarray, right: np.ndarray, d1: int, d2: int, total: int
) -> tuple[np.ndarray, np.ndarray]:
    """Move surplus parts so each side's count fits its leaf budget."""
    max_left = d1 * -(-total // (d1 + d2))
    max_right = d2 * -(-total // (d1 + d2))
    left = left.copy()
    right = right.copy()
    while left.size > max_left:
        left, moved = left[:-1], left[-1:]
        right = np.concatenate([right, moved])
    while right.size > max_right:
        right, moved = right[:-1], right[-1:]
        left = np.concatenate([left, moved])
    return left, right
