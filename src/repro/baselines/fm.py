"""Fiduccia–Mattheyses two-way refinement.

The classic linear-time-per-pass move-based refinement used inside every
serious multilevel partitioner (METIS, SCOTCH, JOSTLE — the packages the
paper's related work cites).  Given an initial two-sided partition, each
pass tentatively moves every vertex once in order of best *gain* (cut
reduction), tracks the best prefix of moves that respects the balance
window, and commits it.  Passes repeat until no improvement.

This implementation uses a lazy max-heap instead of the original gain
buckets — gains here are floats (weighted graphs), so bucket arrays do
not apply; the heap keeps the pass at ``O(m log n)``.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph

__all__ = ["fm_refine"]


def _gains(g: Graph, side: np.ndarray) -> np.ndarray:
    """Gain of moving each vertex to the other side: external − internal weight."""
    gain = np.zeros(g.n)
    same = side[g.edges_u] == side[g.edges_v]
    # external edges contribute +w to both endpoints, internal −w.
    contrib = np.where(same, -g.edges_w, g.edges_w)
    np.add.at(gain, g.edges_u, contrib)
    np.add.at(gain, g.edges_v, contrib)
    return gain


def fm_refine(
    g: Graph,
    side: np.ndarray,
    vertex_weights: Optional[np.ndarray] = None,
    target_fraction: float = 0.5,
    tol: float = 0.1,
    max_passes: int = 10,
) -> np.ndarray:
    """Refine a 2-way partition in place-style (returns a new mask).

    Parameters
    ----------
    g:
        Graph being partitioned.
    side:
        Boolean mask: ``True`` = side A.
    vertex_weights:
        Balance weights (defaults to unit).
    target_fraction:
        Desired fraction of total weight on side A.
    tol:
        Allowed deviation of side A's weight fraction from the target.
    max_passes:
        FM passes (each pass is a full tentative move sequence).

    Returns
    -------
    numpy.ndarray
        Refined boolean mask with cut weight no worse than the input's
        (monotone improvement is asserted by tests).
    """
    side = np.asarray(side, dtype=bool).copy()
    if side.shape != (g.n,):
        raise InvalidInputError(f"side must have shape ({g.n},)")
    w = (
        np.ones(g.n)
        if vertex_weights is None
        else np.asarray(vertex_weights, dtype=np.float64)
    )
    if w.shape != (g.n,):
        raise InvalidInputError(f"vertex_weights must have shape ({g.n},)")
    total_w = float(w.sum())
    # The balance window is widened to at least one heaviest vertex on
    # each side of the target (METIS convention): a window narrower than
    # a single vertex weight would freeze every move and silently disable
    # refinement on small or integer-weighted graphs.
    w_max = float(w.max()) if w.size else 0.0
    half = max(tol * total_w, w_max)
    lo = target_fraction * total_w - half
    hi = target_fraction * total_w + half

    for _ in range(max_passes):
        gain = _gains(g, side)
        locked = np.zeros(g.n, dtype=bool)
        heap = [(-gain[v], v) for v in range(g.n)]
        heapq.heapify(heap)
        weight_a = float(w[side].sum())

        moves: list[int] = []
        cum_gain = 0.0
        best_gain = 0.0
        best_prefix = 0
        trial_side = side.copy()
        trial_gain = gain

        while heap:
            negg, v = heapq.heappop(heap)
            if locked[v] or -negg != trial_gain[v]:
                # Stale entry: every gain change pushed a fresh entry at
                # update time, so this one can simply be discarded.
                continue
            # Balance check for the tentative move.
            new_weight_a = weight_a + (-w[v] if trial_side[v] else w[v])
            if not (lo - 1e-12 <= new_weight_a <= hi + 1e-12):
                locked[v] = True  # cannot move this pass
                continue
            # Commit tentatively.
            locked[v] = True
            cum_gain += float(trial_gain[v])
            moves.append(v)
            weight_a = new_weight_a
            old = trial_side[v]
            trial_side[v] = not old
            # Update neighbour gains: an edge to a same-side neighbour was
            # internal (now external) and vice versa.
            start, end = g.indptr[v], g.indptr[v + 1]
            for idx in range(start, end):
                u = int(g.indices[idx])
                if locked[u]:
                    continue
                wuv = float(g.adj_weights[idx])
                if trial_side[u] == old:
                    # was same side, now opposite: u's gain decreases... no:
                    # moving u would now keep them together; edge flipped
                    # from internal to external for u: gain increases? For u,
                    # edge (u,v): before move, u and v same side => edge
                    # internal => contributed -w to u's gain. After, opposite
                    # sides => +w. Delta = +2w.
                    trial_gain[u] += 2.0 * wuv
                else:
                    trial_gain[u] -= 2.0 * wuv
                heapq.heappush(heap, (-trial_gain[u], u))
            if cum_gain > best_gain + 1e-12:
                best_gain = cum_gain
                best_prefix = len(moves)

        if best_prefix == 0:
            break
        for v in moves[:best_prefix]:
            side[v] = not side[v]
    return side
