"""Fiduccia–Mattheyses refinement: flat two-way and hierarchy-aware k-way.

:func:`fm_refine` is the classic linear-time-per-pass move-based
refinement used inside every serious multilevel partitioner (METIS,
SCOTCH, JOSTLE — the packages the paper's related work cites).  Given an
initial two-sided partition, each pass tentatively moves every vertex
once in order of best *gain* (cut reduction), tracks the best prefix of
moves that respects the balance window, and commits it.  Passes repeat
until no improvement.  It uses a lazy max-heap instead of the original
gain buckets — gains here are floats (weighted graphs), so bucket arrays
do not apply; the heap keeps the pass at ``O(m log n)``.

:func:`fm_refine_hierarchy` is its HGP generalisation, built for the
multilevel front-end's uncoarsening sweep: vertices move between
hierarchy *leaves* and gains score the Eq. (1) objective — ``cm``-level
deltas weighted by the vertex's connection strength to each candidate
subtree — against per-node capacity budgets at every hierarchy level,
not a flat cut.  Gains are computed in bulk with vectorised group-by
passes over the CSR adjacency; only the (short) sequence of applied
moves runs in Python, with neighbour locking so every applied gain is
exact.  Passes snapshot the best labelling seen and roll back to it,
so the refined placement never costs more than the input.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy

__all__ = ["fm_refine", "fm_refine_hierarchy", "HierarchyRefineStats", "eq1_cost"]


def _gains(g: Graph, side: np.ndarray) -> np.ndarray:
    """Gain of moving each vertex to the other side: external − internal weight."""
    gain = np.zeros(g.n)
    same = side[g.edges_u] == side[g.edges_v]
    # external edges contribute +w to both endpoints, internal −w.
    contrib = np.where(same, -g.edges_w, g.edges_w)
    np.add.at(gain, g.edges_u, contrib)
    np.add.at(gain, g.edges_v, contrib)
    return gain


def fm_refine(
    g: Graph,
    side: np.ndarray,
    vertex_weights: Optional[np.ndarray] = None,
    target_fraction: float = 0.5,
    tol: float = 0.1,
    max_passes: int = 10,
) -> np.ndarray:
    """Refine a 2-way partition in place-style (returns a new mask).

    Parameters
    ----------
    g:
        Graph being partitioned.
    side:
        Boolean mask: ``True`` = side A.
    vertex_weights:
        Balance weights (defaults to unit).
    target_fraction:
        Desired fraction of total weight on side A.
    tol:
        Allowed deviation of side A's weight fraction from the target.
    max_passes:
        FM passes (each pass is a full tentative move sequence).

    Returns
    -------
    numpy.ndarray
        Refined boolean mask with cut weight no worse than the input's
        (monotone improvement is asserted by tests).
    """
    side = np.asarray(side, dtype=bool).copy()
    if side.shape != (g.n,):
        raise InvalidInputError(f"side must have shape ({g.n},)")
    w = (
        np.ones(g.n)
        if vertex_weights is None
        else np.asarray(vertex_weights, dtype=np.float64)
    )
    if w.shape != (g.n,):
        raise InvalidInputError(f"vertex_weights must have shape ({g.n},)")
    total_w = float(w.sum())
    # The balance window is widened to at least one heaviest vertex on
    # each side of the target (METIS convention): a window narrower than
    # a single vertex weight would freeze every move and silently disable
    # refinement on small or integer-weighted graphs.
    w_max = float(w.max()) if w.size else 0.0
    half = max(tol * total_w, w_max)
    lo = target_fraction * total_w - half
    hi = target_fraction * total_w + half

    for _ in range(max_passes):
        gain = _gains(g, side)
        locked = np.zeros(g.n, dtype=bool)
        heap = [(-gain[v], v) for v in range(g.n)]
        heapq.heapify(heap)
        weight_a = float(w[side].sum())

        moves: list[int] = []
        cum_gain = 0.0
        best_gain = 0.0
        best_prefix = 0
        trial_side = side.copy()
        trial_gain = gain

        while heap:
            negg, v = heapq.heappop(heap)
            if locked[v] or -negg != trial_gain[v]:
                # Stale entry: every gain change pushed a fresh entry at
                # update time, so this one can simply be discarded.
                continue
            # Balance check for the tentative move.
            new_weight_a = weight_a + (-w[v] if trial_side[v] else w[v])
            if not (lo - 1e-12 <= new_weight_a <= hi + 1e-12):
                locked[v] = True  # cannot move this pass
                continue
            # Commit tentatively.
            locked[v] = True
            cum_gain += float(trial_gain[v])
            moves.append(v)
            weight_a = new_weight_a
            old = trial_side[v]
            trial_side[v] = not old
            # Update neighbour gains: an edge to a same-side neighbour was
            # internal (now external) and vice versa.
            start, end = g.indptr[v], g.indptr[v + 1]
            for idx in range(start, end):
                u = int(g.indices[idx])
                if locked[u]:
                    continue
                wuv = float(g.adj_weights[idx])
                if trial_side[u] == old:
                    # was same side, now opposite: u's gain decreases... no:
                    # moving u would now keep them together; edge flipped
                    # from internal to external for u: gain increases? For u,
                    # edge (u,v): before move, u and v same side => edge
                    # internal => contributed -w to u's gain. After, opposite
                    # sides => +w. Delta = +2w.
                    trial_gain[u] += 2.0 * wuv
                else:
                    trial_gain[u] -= 2.0 * wuv
                heapq.heappush(heap, (-trial_gain[u], u))
            if cum_gain > best_gain + 1e-12:
                best_gain = cum_gain
                best_prefix = len(moves)

        if best_prefix == 0:
            break
        for v in moves[:best_prefix]:
            side[v] = not side[v]
    return side


# ----------------------------------------------------------------------
# hierarchy-aware k-way refinement (the multilevel uncoarsening pass)
# ----------------------------------------------------------------------


@dataclass
class HierarchyRefineStats:
    """Diagnostics of one :func:`fm_refine_hierarchy` call.

    ``gain`` is the realised Eq. (1) cost reduction (input cost minus
    returned cost, ≥ 0 by the rollback contract); ``rolled_back`` is set
    when the final pass had to be discarded in favour of an earlier
    snapshot.
    """

    passes: int = 0
    moves: int = 0
    gain: float = 0.0
    rolled_back: bool = False


def eq1_cost(g: Graph, hierarchy: Hierarchy, leaf_of: np.ndarray) -> float:
    """Eq. (1) cost of a raw leaf labelling (no :class:`Placement` needed).

    The multilevel refiner evaluates intermediate coarse levels whose
    summed demands need no placement-level validation; this is the same
    vectorised kernel as :meth:`repro.hierarchy.placement.Placement.cost`.
    """
    if g.m == 0:
        return 0.0
    mult = hierarchy.pair_cost_multiplier(leaf_of[g.edges_u], leaf_of[g.edges_v])
    return float(np.dot(np.asarray(mult, dtype=np.float64), g.edges_w))


def fm_refine_hierarchy(
    g: Graph,
    hierarchy: Hierarchy,
    demands: np.ndarray,
    leaf_of: np.ndarray,
    max_passes: int = 2,
    load_limit: Optional[float] = None,
    min_gain: float = 1e-12,
) -> Tuple[np.ndarray, HierarchyRefineStats]:
    """Hierarchy-aware FM: move vertices between leaves to cut Eq. (1) cost.

    Each pass works in three vectorised steps plus one short Python
    apply loop:

    1. **Connection tables** — for every hierarchy level ``j``, group-sum
       the CSR adjacency by ``(vertex, level-j ancestor of the
       neighbour's leaf)``; entry ``C_vj(t)`` is how much weight ``v``
       sends under H-node ``t``.
    2. **Gains** — candidate targets are the distinct neighbour leaves of
       each vertex.  Writing ``cm`` via its level deltas
       ``δ_j = cm(j−1) − cm(j)``, moving ``v`` from leaf ``L`` to ``L'``
       changes the cost by ``−Σ_j δ_j (C_vj(anc_j L') − C_vj(anc_j L))``
       — a batched table lookup per level.
    3. **Apply** — positive-gain moves are applied best-first; applying a
       move locks the vertex and its neighbours for the rest of the pass
       so every applied gain stays exact.  A move must fit the capacity
       budget of every hierarchy node it enters (``load_limit ×
       capacity``; the default budget tolerates the incoming placement's
       own violation but never worsens it).
    4. **Rollback** — the cost after each pass is measured exactly; the
       best labelling seen is returned, so refinement is monotone.

    Parameters
    ----------
    g, hierarchy, demands:
        The (possibly coarse) instance; ``demands`` are balance weights.
    leaf_of:
        Initial leaf assignment (not mutated).
    max_passes:
        Maximum refinement sweeps; passes stop early when no positive-gain
        move applies.
    load_limit:
        Per-node load/capacity budget.  ``None`` uses the incoming
        placement's own worst violation (floored at 1.0) per level.
    min_gain:
        Smallest gain considered an improvement.

    Returns
    -------
    (numpy.ndarray, HierarchyRefineStats)
        The refined leaf assignment and pass diagnostics.
    """
    leaf_of = np.asarray(leaf_of, dtype=np.int64).copy()
    d = np.asarray(demands, dtype=np.float64)
    n, h = g.n, hierarchy.h
    if leaf_of.shape != (n,):
        raise InvalidInputError(f"leaf_of must have shape ({n},)")
    if d.shape != (n,):
        raise InvalidInputError(f"demands must have shape ({n},)")
    stats = HierarchyRefineStats()
    if n == 0 or g.m == 0 or max_passes <= 0:
        return leaf_of, stats

    widths = hierarchy._suffix_prod  # widths[j] = leaves under a level-j node
    deltas = np.array(
        [hierarchy.cm[j - 1] - hierarchy.cm[j] for j in range(1, h + 1)],
        dtype=np.float64,
    )
    levels = [j for j in range(1, h + 1) if deltas[j - 1] > 0]
    if not levels:  # constant cm: every labelling costs the same
        return leaf_of, stats
    deg = np.diff(g.indptr)
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    nbr = g.indices
    wts = g.adj_weights
    k = hierarchy.k

    def level_loads(j: int) -> np.ndarray:
        loads = np.zeros(hierarchy.count(j))
        np.add.at(loads, leaf_of // widths[j], d)
        return loads

    # Per-level capacity budgets: never below full capacity, never below
    # the violation the incoming placement already carries.
    budgets = {}
    for j in range(1, h + 1):
        cap = hierarchy.capacity(j)
        loads = level_loads(j)
        limit = (
            load_limit
            if load_limit is not None
            else max(1.0, float(loads.max()) / cap if loads.size else 1.0)
        )
        budgets[j] = limit * cap

    start_cost = eq1_cost(g, hierarchy, leaf_of)
    best_cost = start_cost
    best_leaf = leaf_of.copy()

    for _ in range(max_passes):
        stats.passes += 1
        nbr_leaf = leaf_of[nbr]
        # (1) connection tables, one sorted group-by per level.
        conn_keys, conn_vals = {}, {}
        for j in levels:
            key = owner * hierarchy.count(j) + nbr_leaf // widths[j]
            uk, inv = np.unique(key, return_inverse=True)
            conn_keys[j] = uk
            conn_vals[j] = np.bincount(inv, weights=wts)

        # (2) candidate (vertex, neighbour-leaf) pairs + batched gains.
        ckey = owner * k + nbr_leaf
        uc = np.unique(ckey)
        cand_v = uc // k
        cand_leaf = uc % k
        keep = cand_leaf != leaf_of[cand_v]
        cand_v, cand_leaf = cand_v[keep], cand_leaf[keep]
        if cand_v.size == 0:
            break
        gains = np.zeros(cand_v.size)
        for j in levels:
            cnt = hierarchy.count(j)
            uk, vals = conn_keys[j], conn_vals[j]

            def conn(anc: np.ndarray) -> np.ndarray:
                q = cand_v * cnt + anc
                pos = np.searchsorted(uk, q)
                pos_c = np.minimum(pos, uk.size - 1)
                hit = uk[pos_c] == q
                out = np.zeros(q.size)
                out[hit] = vals[pos_c[hit]]
                return out

            gains += deltas[j - 1] * (
                conn(cand_leaf // widths[j]) - conn(leaf_of[cand_v] // widths[j])
            )
        pos_gain = gains > min_gain
        cand_v, cand_leaf, gains = cand_v[pos_gain], cand_leaf[pos_gain], gains[pos_gain]
        if cand_v.size == 0:
            break
        # Best target per vertex, then apply best-first.
        order = np.lexsort((cand_leaf, -gains, cand_v))
        cand_v, cand_leaf, gains = cand_v[order], cand_leaf[order], gains[order]
        first = np.ones(cand_v.size, dtype=bool)
        first[1:] = cand_v[1:] != cand_v[:-1]
        cand_v, cand_leaf, gains = cand_v[first], cand_leaf[first], gains[first]
        apply_order = np.argsort(-gains, kind="stable")

        # (3) the only Python loop: applied moves with neighbour locking.
        loads = {j: level_loads(j) for j in range(1, h + 1)}
        dirty = np.zeros(n, dtype=bool)
        moved = 0
        for i in apply_order:
            v = int(cand_v[i])
            if dirty[v]:
                continue
            src, tgt = int(leaf_of[v]), int(cand_leaf[i])
            fits = True
            for j in range(1, h + 1):
                t_node = tgt // widths[j]
                if t_node != src // widths[j] and (
                    loads[j][t_node] + d[v] > budgets[j] + 1e-9
                ):
                    fits = False
                    break
            if not fits:
                continue
            for j in range(1, h + 1):
                t_node, s_node = tgt // widths[j], src // widths[j]
                if t_node != s_node:
                    loads[j][t_node] += d[v]
                    loads[j][s_node] -= d[v]
            leaf_of[v] = tgt
            dirty[v] = True
            dirty[nbr[g.indptr[v] : g.indptr[v + 1]]] = True
            moved += 1
        if moved == 0:
            break
        stats.moves += moved
        # (4) exact cost + rollback-to-best snapshot.
        cost = eq1_cost(g, hierarchy, leaf_of)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_leaf = leaf_of.copy()

    final_cost = eq1_cost(g, hierarchy, leaf_of)
    if final_cost > best_cost + 1e-12:
        leaf_of = best_leaf
        stats.rolled_back = True
    stats.gain = start_cost - best_cost
    return leaf_of, stats
