"""Greedy constructive placement.

Places vertices one at a time (heaviest-communication-first BFS order),
each onto the feasible leaf that minimises its *incremental* Eq. (1)
cost against already-placed neighbours.  A strong, cheap baseline — it
is hierarchy-aware (it reads ``cm`` through the LCA levels) but has no
global view, so it shows what local decisions alone can achieve.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["greedy_placement"]


def greedy_placement(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    seed: SeedLike = None,
) -> Placement:
    """Hierarchy-aware greedy constructive placement.

    Order: vertices sorted by weighted degree (descending), ties broken by
    the RNG, then traversed; each vertex goes to the leaf minimising
    ``Σ_{placed u ∈ N(v)} w(u, v) · cm(LCA(leaf, p(u)))``, restricted to
    leaves with room (least-loaded fallback when none fits).
    """
    rng = ensure_rng(seed)
    d = np.asarray(demands, dtype=np.float64)
    k = hierarchy.k
    cap = hierarchy.leaf_capacity
    cm = np.asarray(hierarchy.cm)

    # Heaviest communicators first; random jitter diversifies ties.
    score = g.weighted_degrees + rng.random(g.n) * 1e-9
    order = np.argsort(score)[::-1]

    loads = np.zeros(k)
    leaf_of = np.full(g.n, -1, dtype=np.int64)
    all_leaves = np.arange(k, dtype=np.int64)
    for v in order:
        nbrs = g.neighbors(v)
        ws = g.neighbor_weights(v)
        placed = leaf_of[nbrs] >= 0
        if placed.any():
            pn = nbrs[placed]
            pw = ws[placed]
            # incremental cost of every leaf, vectorised over neighbours:
            # levels[k_leaf, j] via broadcasting ancestor comparisons.
            inc = np.zeros(k)
            nbr_leaves = leaf_of[pn]
            for leaf in all_leaves:
                levels = np.asarray(hierarchy.lca_level(leaf, nbr_leaves))
                inc[leaf] = float(np.dot(cm[levels], pw))
        else:
            inc = np.zeros(k)
        fits = loads + d[v] <= cap + 1e-12
        if fits.any():
            cand = np.where(fits, inc, np.inf)
            # Tie-break toward fuller leaves to keep free leaves available.
            leaf = int(
                min(
                    range(k),
                    key=lambda l: (cand[l], -loads[l]),
                )
            )
        else:
            leaf = int(np.argmin(loads))
        leaf_of[v] = leaf
        loads[leaf] += d[v]
    return Placement(g, hierarchy, d, leaf_of, meta={"solver": "greedy"})
