"""Kernighan–Lin two-way refinement (swap-based).

The 1970 classic: repeatedly find the best *sequence of vertex swaps*
between the two sides and commit the best prefix.  Swaps preserve side
sizes exactly, which makes KL the right refiner when the balance window
is zero — our FM implementation (move-based) needs slack to do anything.
Kept both because the k-BGP literature (and experiment E8) compares them.

O(n² log n)-ish per pass in this straightforward form; use on the ≲ 500
vertex (sub)problems where it is typically applied after coarsening.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph

__all__ = ["kl_refine"]


def _d_values(g: Graph, side: np.ndarray) -> np.ndarray:
    """D(v) = external − internal incident weight (KL's move desirability)."""
    d = np.zeros(g.n)
    same = side[g.edges_u] == side[g.edges_v]
    contrib = np.where(same, -g.edges_w, g.edges_w)
    np.add.at(d, g.edges_u, contrib)
    np.add.at(d, g.edges_v, contrib)
    return d


def kl_refine(
    g: Graph,
    side: np.ndarray,
    max_passes: int = 8,
    max_swaps_per_pass: Optional[int] = None,
) -> np.ndarray:
    """Refine a bisection by Kernighan–Lin swaps.

    Parameters
    ----------
    g:
        Graph being partitioned.
    side:
        Boolean mask; side sizes are preserved exactly.
    max_passes:
        Outer iterations (each pass builds one swap sequence).
    max_swaps_per_pass:
        Optional cap on swaps considered per pass (defaults to
        ``min(|A|, |B|)``).

    Returns
    -------
    numpy.ndarray
        Refined mask with cut weight no worse than the input's.
    """
    side = np.asarray(side, dtype=bool).copy()
    if side.shape != (g.n,):
        raise InvalidInputError(f"side must have shape ({g.n},)")

    for _ in range(max_passes):
        d = _d_values(g, side)
        locked = np.zeros(g.n, dtype=bool)
        trial = side.copy()
        a_idx = np.nonzero(side)[0]
        b_idx = np.nonzero(~side)[0]
        limit = min(a_idx.size, b_idx.size)
        if max_swaps_per_pass is not None:
            limit = min(limit, max_swaps_per_pass)

        gains: list[float] = []
        swaps: list[tuple[int, int]] = []
        for _swap in range(limit):
            free_a = np.nonzero(trial & ~locked)[0]
            free_b = np.nonzero(~trial & ~locked)[0]
            if free_a.size == 0 or free_b.size == 0:
                break
            # Best pair = argmax D(a) + D(b) − 2 w(a, b).  Scan the top
            # few candidates of each side — exact for the common case
            # where the best pair is among high-D vertices, and the pass
            # structure (best prefix) keeps the result monotone anyway.
            top_a = free_a[np.argsort(d[free_a])[::-1][:8]]
            top_b = free_b[np.argsort(d[free_b])[::-1][:8]]
            best = None
            for a in top_a:
                for b in top_b:
                    gain = float(d[a] + d[b] - 2.0 * g.edge_weight(int(a), int(b)))
                    if best is None or gain > best[0]:
                        best = (gain, int(a), int(b))
            assert best is not None
            gain, a, b = best
            gains.append(gain)
            swaps.append((a, b))
            locked[a] = locked[b] = True
            trial[a], trial[b] = False, True
            # Update D-values of unlocked neighbours of a and b.
            for moved, now_in_a in ((a, False), (b, True)):
                nbrs = g.neighbors(moved)
                ws = g.neighbor_weights(moved)
                for u, wuv in zip(nbrs, ws):
                    if locked[u]:
                        continue
                    # After the swap, edge (u, moved): same-side status flips.
                    same_now = trial[u] == trial[moved]
                    d[u] += -2.0 * wuv if same_now else 2.0 * wuv

        if not gains:
            break
        prefix_gain = np.cumsum(gains)
        best_k = int(np.argmax(prefix_gain))
        if prefix_gain[best_k] <= 1e-12:
            break
        for a, b in swaps[: best_k + 1]:
            side[a], side[b] = False, True
    return side
