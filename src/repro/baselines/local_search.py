"""Hierarchy-aware local search (architecture-aware refinement).

The practical counterpart of Moulitsas–Karypis's architecture-aware
refinement (paper reference [20]): repeatedly try to move single vertices
to cheaper leaves — candidate leaves are where the vertex's neighbours
live, plus the least-loaded leaf — accepting a move when it strictly
lowers Eq. (1) cost and keeps every hierarchy level within a violation
budget.  Also used as the polish pass of the Theorem-1 pipeline (the
worst-case analysis leaves constant factors on the table that a few
greedy sweeps recover).

Moves only ever *decrease* cost, so refinement preserves every guarantee
of the input placement except that loads may shift within the supplied
``max_violation`` envelope.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hierarchy.placement import Placement
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["refine_placement", "enforce_capacity"]


def refine_placement(
    placement: Placement,
    max_passes: int = 4,
    max_violation: float = 1.0,
    seed: SeedLike = 0,
    allow_swaps: bool = False,
) -> Placement:
    """Greedy single-vertex move refinement (optionally with swaps).

    Parameters
    ----------
    placement:
        Starting placement.
    max_passes:
        Full sweeps over the vertices.
    max_violation:
        Load budget as a multiple of capacity, enforced at *every*
        hierarchy level after each move (pass the input placement's own
        violation to forbid any worsening; pass the Theorem-1 bound to
        allow moves within the guarantee).
    seed:
        Sweep-order RNG seed.
    allow_swaps:
        After each move sweep, additionally try *pair swaps* along the
        heaviest crossing edges — moving an endpoint into the other
        endpoint's leaf by exchanging it with a resident.  Swaps escape
        the capacity-locked minima single moves cannot (both leaves full
        but an exchange still improves cost).

    Returns
    -------
    Placement
        Refined placement with ``cost() <=`` the input's.
    """
    g = placement.graph
    hier = placement.hierarchy
    d = placement.demands
    cm = np.asarray(hier.cm)
    rng = ensure_rng(seed)

    leaf_of = placement.leaf_of.copy()
    leaf_loads = placement.leaf_loads()
    # Per-level loads, kept incrementally (level h loads == leaf_loads).
    level_loads = [placement.level_loads(j) for j in range(hier.h + 1)]
    budgets = [max_violation * hier.capacity(j) + 1e-12 for j in range(hier.h + 1)]

    def move_ok(v: int, target: int) -> bool:
        dv = float(d[v])
        for j in range(1, hier.h + 1):
            t_node = int(hier.ancestor(target, j))
            s_node = int(hier.ancestor(int(leaf_of[v]), j))
            if t_node != s_node and level_loads[j][t_node] + dv > budgets[j]:
                return False
        return True

    def apply_move(v: int, target: int) -> None:
        dv = float(d[v])
        src = int(leaf_of[v])
        for j in range(1, hier.h + 1):
            level_loads[j][int(hier.ancestor(src, j))] -= dv
            level_loads[j][int(hier.ancestor(target, j))] += dv
        leaf_loads[src] -= dv
        leaf_loads[target] += dv
        leaf_of[v] = target

    def incident_cost(v: int, at_leaf: int, exclude: int = -1) -> float:
        """Eq. (1) mass of v's incident edges with v at ``at_leaf``."""
        nbrs = g.neighbors(v)
        if nbrs.size == 0:
            return 0.0
        ws = g.neighbor_weights(v)
        if exclude >= 0:
            keep = nbrs != exclude
            nbrs, ws = nbrs[keep], ws[keep]
            if nbrs.size == 0:
                return 0.0
        return float(
            np.dot(cm[np.asarray(hier.lca_level(at_leaf, leaf_of[nbrs]))], ws)
        )

    def swap_ok(a: int, la: int, b: int, lb: int) -> bool:
        """Feasibility of exchanging a (at la) and b (at lb) at every level."""
        da, db = float(d[a]), float(d[b])
        for j in range(1, hier.h + 1):
            na = int(hier.ancestor(la, j))
            nb = int(hier.ancestor(lb, j))
            if na == nb:
                continue
            if level_loads[j][nb] + da - db > budgets[j]:
                return False
            if level_loads[j][na] + db - da > budgets[j]:
                return False
        return True

    def try_swaps() -> bool:
        """One pass of exchange moves seeded by the heaviest crossing edges.

        For each endpoint ``a`` of a heavy crossing edge ``(a, c)``, try
        exchanging ``a`` with a resident of any leaf strictly *closer* to
        ``c`` than ``a``'s current leaf — the exchange that single moves
        cannot perform when both leaves are full.  First-improving per
        edge keeps the pass cheap.
        """
        cross = leaf_of[g.edges_u] != leaf_of[g.edges_v]
        if not cross.any():
            return False
        order = np.argsort(np.where(cross, g.edges_w, -np.inf))[::-1]
        improved_here = False
        for e in order[: min(48, int(cross.sum()))]:
            u, v = int(g.edges_u[e]), int(g.edges_v[e])
            done = False
            for a, c in ((u, v), (v, u)):
                la, lc = int(leaf_of[a]), int(leaf_of[c])
                base_level = int(hier.lca_level(la, lc))
                for target in range(hier.k):
                    if target == la:
                        continue
                    if int(hier.lca_level(target, lc)) <= base_level:
                        continue  # not closer to c
                    for b in np.nonzero(leaf_of == target)[0]:
                        b = int(b)
                        if b in (a, c):
                            continue
                        # Exact delta excluding the (a, b) edge, whose
                        # endpoints trade places (LCA unchanged).
                        before = incident_cost(a, la, exclude=b) + incident_cost(
                            b, target, exclude=a
                        )
                        after = incident_cost(a, target, exclude=b) + incident_cost(
                            b, la, exclude=a
                        )
                        if after >= before - 1e-12:
                            continue
                        if not swap_ok(a, la, b, target):
                            continue
                        apply_move(a, target)
                        apply_move(b, la)
                        improved_here = True
                        done = True
                        break
                    if done:
                        break
                if done:
                    break
        return improved_here

    improved_any = False
    for _ in range(max_passes):
        improved = False
        for v in rng.permutation(g.n):
            nbrs = g.neighbors(v)
            if nbrs.size == 0:
                continue
            ws = g.neighbor_weights(v)
            src = int(leaf_of[v])
            nbr_leaves = leaf_of[nbrs]
            base = float(
                np.dot(cm[np.asarray(hier.lca_level(src, nbr_leaves))], ws)
            )
            candidates = set(int(l) for l in np.unique(nbr_leaves))
            candidates.add(int(np.argmin(leaf_loads)))
            candidates.discard(src)
            best_leaf: Optional[int] = None
            best_delta = -1e-12
            for target in candidates:
                delta = (
                    float(
                        np.dot(
                            cm[np.asarray(hier.lca_level(target, nbr_leaves))], ws
                        )
                    )
                    - base
                )
                if delta < best_delta and move_ok(v, target):
                    best_delta = delta
                    best_leaf = target
            if best_leaf is not None:
                apply_move(v, best_leaf)
                improved = True
                improved_any = True
        if allow_swaps and try_swaps():
            improved = True
            improved_any = True
        if not improved:
            break

    if not improved_any:
        return placement
    return Placement(
        g,
        hier,
        d,
        leaf_of,
        meta={**placement.meta, "refined": True},
    )


def enforce_capacity(
    placement: Placement,
    target_violation: float = 1.0,
    seed: SeedLike = 0,
    max_moves: Optional[int] = None,
) -> Placement:
    """Restore (near-)feasibility by evicting vertices from overloaded leaves.

    The bicriteria guarantee permits ``(1 + ε)(1 + h)`` overload; for
    apples-to-apples comparisons against strictly-feasible baselines this
    pass repeatedly takes the most overloaded leaf, picks the resident
    vertex whose cheapest relocation (by Eq. (1) delta) is smallest, and
    moves it to the best leaf with room.  Cost may increase — that is the
    price of the stricter balance, and exactly the trade-off the paper's
    bicriteria framing makes explicit.

    Parameters
    ----------
    placement:
        Starting placement (any violation level).
    target_violation:
        Leaf-load budget as a multiple of leaf capacity.
    seed:
        Tie-breaking RNG seed.
    max_moves:
        Safety cap (default ``4 n``).

    Returns
    -------
    Placement
        Placement with ``max_violation()`` at most ``target_violation``
        whenever total demand permits; otherwise the best achieved.
    """
    g = placement.graph
    hier = placement.hierarchy
    d = placement.demands
    cm = np.asarray(hier.cm)

    leaf_of = placement.leaf_of.copy()
    loads = placement.leaf_loads()
    budget = target_violation * hier.leaf_capacity + 1e-12
    if max_moves is None:
        max_moves = 4 * g.n

    moves = 0
    stuck: set[int] = set()  # overloaded leaves with no feasible eviction
    while moves < max_moves:
        over = [
            int(l) for l in np.nonzero(loads > budget)[0] if int(l) not in stuck
        ]
        if not over:
            break
        leaf = max(over, key=lambda l: loads[l])
        residents = np.nonzero(leaf_of == leaf)[0]
        if residents.size <= 1:
            stuck.add(leaf)  # single oversized vertex: nothing to evict
            continue
        # Cheapest (vertex, target) eviction by cost delta.
        best = None
        for v in residents:
            dv = float(d[v])
            targets = np.nonzero(loads + dv <= budget)[0]
            if targets.size == 0:
                continue
            nbrs = g.neighbors(int(v))
            ws = g.neighbor_weights(int(v))
            if nbrs.size:
                nbr_leaves = leaf_of[nbrs]
                base = float(
                    np.dot(cm[np.asarray(hier.lca_level(leaf, nbr_leaves))], ws)
                )
                deltas = np.array(
                    [
                        float(
                            np.dot(
                                cm[np.asarray(hier.lca_level(int(t), nbr_leaves))],
                                ws,
                            )
                        )
                        - base
                        for t in targets
                    ]
                )
            else:
                deltas = np.zeros(targets.size)
            idx = int(np.argmin(deltas))
            cand = (float(deltas[idx]), float(-dv), int(v), int(targets[idx]))
            if best is None or cand < best:
                best = cand
        if best is None:
            stuck.add(leaf)  # no resident fits anywhere else
            continue
        _delta, _negd, v, target = best
        loads[leaf] -= float(d[v])
        loads[target] += float(d[v])
        leaf_of[v] = target
        moves += 1
        # A successful eviction frees room on `leaf`, which may unstick
        # other overloaded leaves; re-examine everything.
        stuck.clear()

    if moves == 0:
        return placement
    return Placement(
        g,
        hier,
        d,
        leaf_of,
        meta={**placement.meta, "capacity_enforced": target_violation},
    )
