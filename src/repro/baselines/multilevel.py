"""Multilevel balanced graph partitioning (METIS-style, from scratch).

The three classic phases:

1. **Coarsen** — iterated randomized heavy-edge matching contracts the
   graph to a few hundred vertices while summing vertex weights;
2. **Initial partition** — spectral bisection (plus a random restart) on
   the coarsest graph;
3. **Uncoarsen + refine** — project the partition up the hierarchy,
   running FM refinement at every level.

``partition_kway`` obtains k parts by *recursive bisection* with
proportional weight targets — Simon & Teng's classic scheme (paper
reference [25]) and what SCOTCH/METIS default to for moderate k.

This module is both (a) the paper's k-BGP comparison point (HGP with
``h = 1``) and (b) the engine of the flat and dual-recursive-bipartition
baselines in :mod:`repro.baselines.flat` /
:mod:`repro.baselines.recursive_bisection`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.graph.spectral import fiedler_vector, sweep_cut
from repro.baselines.fm import fm_refine
from repro.baselines.kl import kl_refine
from repro.decomposition.contraction import (
    aggregate_unmatched,
    heavy_edge_matching,
    matching_labels,
)
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["bisect", "partition_kway", "coarsen"]


def coarsen(
    g: Graph,
    vertex_weights: np.ndarray,
    target_n: int,
    rng: np.random.Generator,
) -> Tuple[List[Graph], List[np.ndarray], List[np.ndarray]]:
    """Build the coarsening hierarchy.

    Returns ``(graphs, weights, maps)`` where ``graphs[0]`` is the input,
    ``maps[i]`` sends level-``i`` vertices to level-``i+1`` supervertices,
    and the last graph has at most ``target_n`` vertices (or coarsening
    stalled).  Each level is one vectorised heavy-edge-matching pass —
    no per-vertex Python loop anywhere on this path.

    Supervertex weight is capped METIS-style at ``1.5 × total /
    target_n`` so no cluster can swallow the graph (hub-heavy inputs
    would otherwise leave one unsplittable mega-vertex and break the
    bisection's balance), and stalled matchings fall back to
    many-to-one aggregation of the unmatched vertices.
    """
    graphs = [g]
    weights = [np.asarray(vertex_weights, dtype=np.float64)]
    maps: List[np.ndarray] = []
    max_weight = 1.5 * float(weights[0].sum()) / max(1, target_n)
    while graphs[-1].n > target_n:
        cur = graphs[-1]
        w = weights[-1]
        match = heavy_edge_matching(
            cur, rng, vertex_weights=w, max_weight=max_weight
        )
        labels = matching_labels(match)
        n_super = int(labels.max()) + 1 if labels.size else 0
        if n_super >= 0.98 * cur.n:  # stalled (hubs, independent remnants)
            labels = aggregate_unmatched(
                cur, match, vertex_weights=w, max_weight=max_weight
            )
            n_super = int(labels.max()) + 1 if labels.size else 0
        if n_super >= cur.n:  # no progress at all
            break
        graphs.append(cur.contract(labels))
        weights.append(np.bincount(labels, weights=weights[-1], minlength=n_super))
        maps.append(labels)
    return graphs, weights, maps


def bisect(
    g: Graph,
    vertex_weights: Optional[np.ndarray] = None,
    target_fraction: float = 0.5,
    tol: float = 0.05,
    coarsen_to: int = 120,
    seed: SeedLike = None,
    kl_polish_max_n: Optional[int] = 600,
) -> np.ndarray:
    """Multilevel weighted bisection.

    Parameters
    ----------
    g:
        Graph to split.
    vertex_weights:
        Balance weights (defaults to unit).
    target_fraction:
        Desired weight fraction on the ``True`` side.
    tol:
        Allowed deviation from the target fraction.
    coarsen_to:
        Coarsening stops at this many supervertices.
    seed:
        RNG seed.
    kl_polish_max_n:
        Largest ``g.n`` that still gets the final O(n²) KL polish on an
        exactly-balanceable split (``None`` disables it).  Multilevel
        callers lower or disable this on large levels.

    Returns
    -------
    numpy.ndarray
        Boolean side mask.
    """
    if not (0 < target_fraction < 1):
        raise InvalidInputError(
            f"target_fraction must be in (0, 1), got {target_fraction}"
        )
    rng = ensure_rng(seed)
    w = (
        np.ones(g.n)
        if vertex_weights is None
        else np.asarray(vertex_weights, dtype=np.float64)
    )
    if g.n == 1:
        return np.zeros(1, dtype=bool)
    graphs, weights, maps = coarsen(g, w, coarsen_to, rng)

    # Initial partition on the coarsest graph: spectral sweep + random
    # greedy restart, keep the better.
    coarsest, cw = graphs[-1], weights[-1]
    side = _initial_bisection(coarsest, cw, target_fraction, tol, rng)

    # Uncoarsen with refinement at every level.
    for level in range(len(maps) - 1, -1, -1):
        fine_side = side[maps[level]]
        side = fm_refine(
            graphs[level],
            fine_side,
            vertex_weights=weights[level],
            target_fraction=target_fraction,
            tol=tol,
        )
    # A final KL polish when sides are exactly balanceable.
    if (
        kl_polish_max_n is not None
        and abs(target_fraction - 0.5) < 1e-12
        and g.n <= kl_polish_max_n
    ):
        side = kl_refine(g, side, max_passes=2)
        side = fm_refine(
            g, side, vertex_weights=w, target_fraction=target_fraction, tol=tol
        )
    return side


def _initial_bisection(
    g: Graph,
    w: np.ndarray,
    target_fraction: float,
    tol: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Spectral + random-greedy initial split on the coarsest graph."""
    candidates: List[np.ndarray] = []
    if g.m > 0 and g.n >= 2:
        try:
            fv = fiedler_vector(g, seed=rng)
            mask, _ = sweep_cut(g, fv, balance_fraction=0.0, weights=w)
            mask = _rebalance(mask, w, target_fraction, fv)
            candidates.append(mask)
        except Exception:  # pragma: no cover - spectral failure fallback
            pass
    # Random greedy: fill side A with a random prefix by weight.
    order = rng.permutation(g.n)
    target_w = target_fraction * float(w.sum())
    mask = np.zeros(g.n, dtype=bool)
    acc = 0.0
    for v in order:
        if acc >= target_w:
            break
        mask[v] = True
        acc += float(w[v])
    candidates.append(mask)
    refined = [
        fm_refine(g, c, vertex_weights=w, target_fraction=target_fraction, tol=tol)
        for c in candidates
    ]
    cuts = [g.cut_weight(c) for c in refined]
    return refined[int(np.argmin(cuts))]


def _rebalance(
    mask: np.ndarray, w: np.ndarray, target_fraction: float, embedding: np.ndarray
) -> np.ndarray:
    """Shift the sweep threshold until side A's weight matches the target."""
    order = np.argsort(embedding, kind="stable")
    cum = np.cumsum(w[order])
    total = float(w.sum())
    k = int(np.argmin(np.abs(cum - target_fraction * total)))
    out = np.zeros(mask.size, dtype=bool)
    out[order[: k + 1]] = True
    return out


def partition_kway(
    g: Graph,
    k: int,
    vertex_weights: Optional[np.ndarray] = None,
    tol: float = 0.05,
    seed: SeedLike = None,
    kl_polish_max_n: Optional[int] = 600,
) -> np.ndarray:
    """Balanced k-way partition by recursive multilevel bisection.

    Returns an integer label vector in ``[0, k)``; part weights are
    proportional (each ≈ ``1/k`` of the total within ``tol``-per-split
    drift).  ``kl_polish_max_n`` is forwarded to every :func:`bisect`.
    """
    if k < 1:
        raise InvalidInputError(f"k must be >= 1, got {k}")
    rng = ensure_rng(seed)
    w = (
        np.ones(g.n)
        if vertex_weights is None
        else np.asarray(vertex_weights, dtype=np.float64)
    )
    labels = np.zeros(g.n, dtype=np.int64)

    def rec(vertices: np.ndarray, parts: int, first_label: int) -> None:
        if parts == 1 or vertices.size <= 1:
            labels[vertices] = first_label
            return
        k1 = parts // 2
        k2 = parts - k1
        sub, back = g.subgraph(vertices)
        frac = k1 / parts
        mask = bisect(
            sub,
            vertex_weights=w[vertices],
            target_fraction=frac,
            tol=min(tol, 0.5 / parts),
            seed=rng,
            kl_polish_max_n=kl_polish_max_n,
        )
        rec(back[np.nonzero(mask)[0]], k1, first_label)
        rec(back[np.nonzero(~mask)[0]], k2, first_label + k1)

    rec(np.arange(g.n, dtype=np.int64), k, 0)
    return labels
