"""Trivial baselines: random and round-robin placements.

These anchor the bottom of every comparison table: random placement pays
the *expected* multiplier over all leaf pairs on every edge, so the gap
between it and any structured method measures how much locality the
workload offers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["random_placement", "round_robin_placement"]


def random_placement(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    seed: SeedLike = None,
) -> Placement:
    """Capacity-aware random placement.

    Vertices are shuffled and each is sent to a uniformly random leaf
    among those that still fit; if none fits, the least-loaded leaf takes
    it (a violation the diagnostics will show).
    """
    rng = ensure_rng(seed)
    d = np.asarray(demands, dtype=np.float64)
    k = hierarchy.k
    cap = hierarchy.leaf_capacity
    loads = np.zeros(k)
    leaf_of = np.zeros(g.n, dtype=np.int64)
    for v in rng.permutation(g.n):
        fits = np.nonzero(loads + d[v] <= cap + 1e-12)[0]
        leaf = int(rng.choice(fits)) if fits.size else int(np.argmin(loads))
        leaf_of[v] = leaf
        loads[leaf] += d[v]
    return Placement(g, hierarchy, d, leaf_of, meta={"solver": "random"})


def round_robin_placement(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    seed: SeedLike = None,
) -> Placement:
    """Least-loaded (LPT) placement: perfect balance, zero locality.

    This is roughly what a locality-oblivious OS scheduler achieves
    (Section 1's starting point): sort by demand descending, always take
    the least-loaded leaf.
    """
    d = np.asarray(demands, dtype=np.float64)
    loads = np.zeros(hierarchy.k)
    leaf_of = np.zeros(g.n, dtype=np.int64)
    for v in np.argsort(d)[::-1]:
        leaf = int(np.argmin(loads))
        leaf_of[v] = leaf
        loads[leaf] += d[v]
    return Placement(g, hierarchy, d, leaf_of, meta={"solver": "round_robin"})
