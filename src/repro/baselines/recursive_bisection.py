"""Architecture-aware recursive bisection (SCOTCH-style direct descent).

Instead of partitioning flat and mapping afterwards, this baseline walks
the hierarchy top-down: at a level-``j`` node it splits the current
vertex set into ``DEG(j)`` demand-balanced groups by recursive multilevel
bisection, sends each group to one child, and recurses.  Every split at
level ``j`` directly minimises the traffic that will pay ``cm(j)``, so
the method is hierarchy-aware by construction — the strongest
"heuristic practice" comparator together with the quotient-mapped flat
baseline (they differ in when balance is enforced).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.baselines.multilevel import bisect
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["recursive_bisection_placement"]


def recursive_bisection_placement(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    tol: float = 0.05,
    seed: SeedLike = None,
) -> Placement:
    """Top-down hierarchy-following recursive bisection.

    Parameters
    ----------
    g, hierarchy, demands:
        The HGP instance.
    tol:
        Demand-balance tolerance per split (smaller = tighter balance,
        higher cut).
    seed:
        RNG seed.
    """
    d = np.asarray(demands, dtype=np.float64)
    rng = ensure_rng(seed)
    leaf_of = np.zeros(g.n, dtype=np.int64)

    def split_ways(vertices: np.ndarray, ways: int) -> list[np.ndarray]:
        """Split by demand into `ways` groups via recursive bisection."""
        if ways == 1 or vertices.size <= 1:
            return [vertices] + [np.empty(0, dtype=np.int64)] * (ways - 1)
        w1 = ways // 2
        w2 = ways - w1
        sub, back = g.subgraph(vertices)
        mask = bisect(
            sub,
            vertex_weights=d[vertices],
            target_fraction=w1 / ways,
            tol=min(tol, 0.5 / ways),
            seed=rng,
        )
        left = back[np.nonzero(mask)[0]]
        right = back[np.nonzero(~mask)[0]]
        return split_ways(left, w1) + split_ways(right, w2)

    def descend(vertices: np.ndarray, level: int, node: int) -> None:
        if vertices.size == 0:
            return
        if level == hierarchy.h:
            leaf_of[vertices] = node
            return
        groups = split_ways(vertices, hierarchy.degrees[level])
        for child, group in zip(hierarchy.children(level, node), groups):
            descend(group, level + 1, int(child))

    descend(np.arange(g.n, dtype=np.int64), 0, 0)
    return Placement(
        g, hierarchy, d, leaf_of, meta={"solver": "recursive_bisection"}
    )
