"""Benchmark harness: shared instances, table rendering, result persistence."""

from repro.bench.instances import (
    FAMILIES,
    METHODS,
    Instance,
    make_instance,
    run_method,
    standard_hierarchy,
)
from repro.bench.metrics import (
    adjusted_rand_index,
    block_recovery,
    cut_fraction,
    load_imbalance,
)
from repro.bench.oracles import brute_force_optimum, path_binary_tree
from repro.bench.tables import Table, format_series, save_result, save_result_json

__all__ = [
    "FAMILIES",
    "METHODS",
    "Instance",
    "make_instance",
    "run_method",
    "standard_hierarchy",
    "Table",
    "format_series",
    "save_result",
    "save_result_json",
    "brute_force_optimum",
    "path_binary_tree",
    "adjusted_rand_index",
    "block_recovery",
    "cut_fraction",
    "load_imbalance",
]
