"""Shared experiment instances and method runners.

Centralising the workload grid here keeps every experiment comparable:
the same four graph families, the same hierarchy shapes, the same demand
profiles, the same seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph.generators import (
    barabasi_albert,
    grid_2d,
    grid_3d,
    hypercube,
    layered_dag,
    planted_partition,
    power_law,
    random_demands,
    random_regular,
    rmat,
)
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.core.config import SolverConfig
from repro.core.solver import solve_hgp
from repro.baselines import placement_baselines
from repro.baselines.local_search import enforce_capacity, refine_placement

__all__ = [
    "Instance",
    "standard_hierarchy",
    "make_instance",
    "FAMILIES",
    "run_method",
    "METHODS",
]


@dataclass
class Instance:
    """One benchmark instance: graph + hierarchy + demands + provenance."""

    name: str
    graph: Graph
    hierarchy: Hierarchy
    demands: np.ndarray
    seed: int


def standard_hierarchy(shape: str = "2x4") -> Hierarchy:
    """Named hierarchy shapes used across experiments.

    * ``2x4`` — 2 sockets × 4 cores, cm = (10, 3, 0); the paper's server.
    * ``2x8`` — 2 sockets × 8 cores, cm = (10, 3, 0).
    * ``4x4`` — 4 racks × 4 servers, cm = (20, 5, 0); a cluster shape.
    * ``2x2x2`` — 3-level NUMA, cm = (8, 4, 1, 0).
    * ``flat8`` / ``flat16`` — k-BGP hierarchies.
    """
    shapes = {
        "2x4": ([2, 4], [10.0, 3.0, 0.0]),
        "2x8": ([2, 8], [10.0, 3.0, 0.0]),
        "4x4": ([4, 4], [20.0, 5.0, 0.0]),
        "2x2x2": ([2, 2, 2], [8.0, 4.0, 1.0, 0.0]),
        "flat8": ([8], [1.0, 0.0]),
        "flat16": ([16], [1.0, 0.0]),
    }
    degrees, cm = shapes[shape]
    return Hierarchy(degrees, cm)


def _grid(n_target: int, seed: int) -> Graph:
    side = max(2, int(round(n_target ** 0.5)))
    return grid_2d(side, side, weight_range=(0.5, 2.0), seed=seed)


def _expander(n_target: int, seed: int) -> Graph:
    n = n_target + (n_target * 3) % 2  # make n*d even
    return random_regular(n, 3, weight_range=(0.5, 2.0), seed=seed)


def _powerlaw(n_target: int, seed: int) -> Graph:
    return power_law(n_target, m_per_node=2, weight_range=(0.5, 2.0), seed=seed)


def _blocks(n_target: int, seed: int) -> Graph:
    bs = max(3, n_target // 4)
    return planted_partition(4, bs, 0.7, 0.03, weight_in=2.0, weight_out=1.0, seed=seed)


def _dag(n_target: int, seed: int) -> Graph:
    width = max(2, n_target // 6)
    return layered_dag(6, width, fan_out=2, weight_range=(1.0, 10.0), seed=seed)


def _hypercube(n_target: int, seed: int) -> Graph:
    dim = max(2, int(round(np.log2(max(4, n_target)))))
    return hypercube(dim, weight_range=(0.5, 2.0), seed=seed)


def _rmat(n_target: int, seed: int) -> Graph:
    scale = max(3, int(round(np.log2(max(8, n_target)))))
    g = rmat(scale, edge_factor=4, seed=seed)
    from repro.graph.ops import largest_component

    sub, _ = largest_component(g)
    return sub


def _mesh3d(n_target: int, seed: int) -> Graph:
    side = max(2, int(round(n_target ** (1.0 / 3.0))))
    return grid_3d(side, side, side, weight_range=(0.5, 2.0), seed=seed)


def _ba(n_target: int, seed: int) -> Graph:
    return barabasi_albert(n_target, m_per_node=2, weight_range=(0.5, 2.0), seed=seed)


#: Graph family name -> builder(n_target, seed).
FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "grid": _grid,
    "expander": _expander,
    "powerlaw": _powerlaw,
    "blocks": _blocks,
    "dag": _dag,
    "hypercube": _hypercube,
    "rmat": _rmat,
    "mesh3d": _mesh3d,
    "ba": _ba,
}


def make_instance(
    family: str,
    n_target: int,
    hierarchy: Hierarchy,
    fill: float = 0.6,
    skew: float = 0.3,
    seed: int = 0,
) -> Instance:
    """Build one instance of the named family sized near ``n_target``."""
    g = FAMILIES[family](n_target, seed)
    d = random_demands(
        g.n, hierarchy.total_capacity, fill=fill, skew=skew, seed=seed + 1
    )
    return Instance(f"{family}-n{g.n}", g, hierarchy, d, seed)


def run_method(
    method: str, inst: Instance, seed: int = 0, config: SolverConfig | None = None
) -> Placement:
    """Run one named method on an instance.

    Methods: every key of :func:`repro.baselines.placement_baselines`,
    plus ``hgp`` (the paper's pipeline) and ``hgp_feasible`` (pipeline +
    capacity enforcement to violation 1, the strict-balance variant).
    """
    if method == "hgp":
        cfg = config or SolverConfig(seed=seed)
        return solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg).placement
    if method == "hgp_feasible":
        cfg = config or SolverConfig(seed=seed)
        p = solve_hgp(inst.graph, inst.hierarchy, inst.demands, cfg).placement
        p = enforce_capacity(p, target_violation=1.0, seed=seed)
        return refine_placement(
            p, max_passes=4, max_violation=1.0, seed=seed, allow_swaps=True
        )
    registry = placement_baselines()
    return registry[method](inst.graph, inst.hierarchy, inst.demands, seed=seed)


#: Canonical method order for comparison tables.
METHODS: Sequence[str] = (
    "random",
    "round_robin",
    "greedy",
    "flat_shuffled",
    "flat_identity",
    "flat_quotient",
    "recursive_bisection",
    "hgp",
    "hgp_feasible",
)
