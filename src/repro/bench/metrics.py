"""Partition-quality metrics used by the experiment analysis.

Implemented from scratch (no sklearn in the environment):

* :func:`adjusted_rand_index` — chance-corrected agreement between a
  computed partition and a reference (e.g. the planted blocks of an SBM
  instance); 1 = identical, ≈0 = random.
* :func:`load_imbalance` — max/mean load ratio of a placement's leaves
  (1 = perfectly balanced).
* :func:`cut_fraction` — fraction of total edge weight whose endpoints
  meet strictly above leaf level (the "remote traffic" share).
* :func:`block_recovery` — convenience bundle for SBM-style instances.
"""

from __future__ import annotations

from math import comb
from typing import Dict

import numpy as np

from repro.errors import InvalidInputError
from repro.hierarchy.placement import Placement

__all__ = [
    "adjusted_rand_index",
    "load_imbalance",
    "cut_fraction",
    "block_recovery",
]


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand Index between two labelings of the same items.

    Uses the standard pair-counting formulation with the hypergeometric
    chance correction; returns 1.0 for identical partitions (up to label
    permutation) and values near 0 for independent ones.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1:
        raise InvalidInputError("labelings must be 1-D and equally sized")
    n = a.size
    if n < 2:
        return 1.0
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    contingency = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(contingency, (ai, bi), 1)
    sum_comb_cells = sum(comb(int(x), 2) for x in contingency.ravel() if x >= 2)
    sum_comb_rows = sum(comb(int(x), 2) for x in contingency.sum(axis=1) if x >= 2)
    sum_comb_cols = sum(comb(int(x), 2) for x in contingency.sum(axis=0) if x >= 2)
    total_pairs = comb(n, 2)
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    max_index = (sum_comb_rows + sum_comb_cols) / 2.0
    if max_index == expected:
        return 1.0
    return (sum_comb_cells - expected) / (max_index - expected)


def load_imbalance(placement: Placement) -> float:
    """Max/mean leaf-load ratio over the leaves actually needed.

    The mean uses ``total demand / k`` (the ideal spread), so the metric
    is comparable across placements that use different leaf counts.
    """
    loads = placement.leaf_loads()
    ideal = placement.demands.sum() / placement.hierarchy.k
    if ideal <= 0:
        return 1.0
    return float(loads.max()) / ideal


def cut_fraction(placement: Placement) -> float:
    """Share of edge weight whose endpoints are not co-located."""
    g = placement.graph
    if g.m == 0:
        return 0.0
    hier = placement.hierarchy
    levels = np.asarray(
        hier.lca_level(placement.leaf_of[g.edges_u], placement.leaf_of[g.edges_v])
    )
    remote = float(g.edges_w[levels < hier.h].sum())
    return remote / g.total_weight


def block_recovery(placement: Placement, true_blocks: np.ndarray) -> Dict[str, float]:
    """Bundle of quality metrics against a known ground-truth clustering.

    Uses the *socket-level* assignment (level-1 ancestors) for recovery:
    a good hierarchical placement keeps each true block under one
    high-level node even when it spans several leaves.
    """
    hier = placement.hierarchy
    level = 1 if hier.h >= 1 else 0
    groups = np.asarray(hier.ancestor(placement.leaf_of, level))
    return {
        "ari_leaf": adjusted_rand_index(placement.leaf_of, true_blocks),
        "ari_group": adjusted_rand_index(groups, true_blocks),
        "imbalance": load_imbalance(placement),
        "cut_fraction": cut_fraction(placement),
    }
