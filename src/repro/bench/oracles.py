"""Exhaustive oracles used to certify the DP (tests + experiment E1).

``brute_force_optimum`` enumerates every *edge cut-level assignment* of a
binary tree — each edge gets a deepest-kept level ``j_e`` and is cut at
all levels ``k > j_e``, exactly the shape of nice solutions (Corollary 1)
— derives the leaf components per level, checks quantized capacities, and
charges ``w(e) · (cm(k−1) − cm(k))`` for every cut level whose child-side
component is non-empty.  Its minimum is the ground-truth RHGPT optimum
for small trees (exponential in the edge count — keep below ~10 edges).
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.decomposition.tree import TreeAssembler
from repro.hgpt.binarize import BinaryTree, binarize

__all__ = ["brute_force_optimum", "path_binary_tree"]


def path_binary_tree(weights: Sequence[float], demands: Sequence[int]) -> BinaryTree:
    """Balanced binary decomposition tree over a path graph's vertices.

    A convenient small-instance factory: ``weights[i]`` is the path edge
    ``(i, i+1)``; leaves get ``demands``.
    """
    n = len(demands)
    g = Graph(n, [(i, i + 1, float(weights[i])) for i in range(n - 1)])
    asm = TreeAssembler(g)
    nodes: List[int] = [asm.add_leaf(v) for v in range(n)]
    while len(nodes) > 1:
        nxt: List[int] = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(asm.add_internal([nodes[i], nodes[i + 1]]))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    tree = asm.finish(nodes[0])
    return binarize(tree, np.asarray(demands, dtype=np.int64))


def brute_force_optimum(
    bt: BinaryTree, caps: Sequence[int], deltas: Sequence[float]
) -> float:
    """Minimum edge-cut cost over all cut-level assignments (see module doc)."""
    h = len(caps)
    edges = [v for v in range(bt.n_nodes) if v != bt.root]
    choice_sets = [
        [h] if math.isinf(bt.up_weight[v]) else list(range(h + 1)) for v in edges
    ]
    parent = _parents(bt)
    best = math.inf
    for combo in itertools.product(*choice_sets):
        j_of = dict(zip(edges, combo))
        cost = 0.0
        ok = True
        for k in range(1, h + 1):
            parent_k = {
                v: (parent[v] if v != bt.root and j_of[v] >= k else -1)
                for v in range(bt.n_nodes)
            }

            def root_of(v: int) -> int:
                while parent_k[v] >= 0:
                    v = parent_k[v]
                return v

            demand: dict[int, int] = {}
            for v in range(bt.n_nodes):
                if bt.is_leaf(v):
                    r = root_of(v)
                    demand[r] = demand.get(r, 0) + int(bt.demand[v])
            if any(dm > caps[k - 1] for dm in demand.values()):
                ok = False
                break
            for v in edges:
                if j_of[v] < k and demand.get(root_of(v), 0) > 0:
                    cost += float(bt.up_weight[v]) * deltas[k]
        if ok and cost < best:
            best = cost
    return best


def _parents(bt: BinaryTree) -> List[int]:
    parent = [-1] * bt.n_nodes
    for p in range(bt.n_nodes):
        if bt.left[p] >= 0:
            parent[int(bt.left[p])] = p
            parent[int(bt.right[p])] = p
    return parent
