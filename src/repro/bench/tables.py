"""Plain-text table/series rendering for the experiment harness.

Every experiment prints rows through :class:`Table` (aligned columns,
deterministic formatting) and optionally persists them with
:func:`save_result`, so EXPERIMENTS.md can quote the literal harness
output.  Machine-readable companions (``BENCH_*.json`` payloads built
from the engine's run reports) go through :func:`save_result_json`, so
the perf trajectory stays trackable across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

__all__ = ["Table", "save_result", "save_result_json", "format_series"]

Cell = Union[str, int, float]


class Table:
    """Fixed-column text table with numeric formatting.

    Examples
    --------
    >>> t = Table(["method", "cost"], title="demo")
    >>> t.add_row(["flat", 12.3456])
    >>> print(t.render())  # doctest: +ELLIPSIS
    # demo
    method  cost...
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; floats are rendered with 4 significant digits."""
        rendered = []
        for c in cells:
            if isinstance(c, float):
                rendered.append(f"{c:.4g}")
            else:
                rendered.append(str(c))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row has {len(rendered)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """Render the aligned table (with ``# title`` header if set)."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(f"# {self.title}")
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> str:
        """Print and return the rendering (bench targets call this)."""
        text = self.render()
        print("\n" + text)
        return text


def format_series(xs: Sequence[float], ys: Sequence[float], name: str) -> str:
    """One-line-per-point rendering of a figure series."""
    lines = [f"# series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:.6g}\t{y:.6g}")
    return "\n".join(lines)


def save_result(name: str, text: str, directory: Union[str, Path, None] = None) -> Path:
    """Persist experiment output under ``benchmarks/results/<name>.txt``.

    Returns the written path.  The default directory resolves relative to
    the repository root when run from within it, else the CWD.
    """
    if directory is None:
        directory = Path("benchmarks") / "results"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def save_result_json(
    name: str, payload: dict, directory: Union[str, Path, None] = None
) -> Path:
    """Persist machine-readable experiment output as ``<name>.json``.

    ``payload`` must be JSON-serialisable (raw row values, run-report
    dicts from :meth:`repro.core.telemetry.RunReport.to_dict`, …).
    Written next to the ``.txt`` tables under ``benchmarks/results/``
    with stable key order so diffs across PRs stay readable.
    """
    if directory is None:
        directory = Path("benchmarks") / "results"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
