"""Content-addressed solver cache (:mod:`repro.cache.cache`).

Public surface: :class:`CacheConfig` (the ``cache`` block on
``SolverConfig``), :class:`SolverCache` (two-tier LRU + disk cache),
:func:`get_cache` / :func:`configure_cache` / :func:`resolve_cache` for
the process-wide instance, and the key helpers :func:`cache_key` /
:func:`seed_token`.  :class:`InflightRegistry`
(:mod:`repro.cache.inflight`) dedupes *concurrent* identical requests —
the coalescing core of ``repro.serve``.
"""

from repro.cache.inflight import InflightEntry, InflightRegistry
from repro.cache.cache import (
    CacheConfig,
    CacheStats,
    SolverCache,
    cache_key,
    configure_cache,
    estimate_nbytes,
    get_cache,
    reset_cache,
    resolve_cache,
    seed_token,
)

__all__ = [
    "CacheConfig",
    "InflightEntry",
    "InflightRegistry",
    "CacheStats",
    "SolverCache",
    "cache_key",
    "configure_cache",
    "estimate_nbytes",
    "get_cache",
    "reset_cache",
    "resolve_cache",
    "seed_token",
]
