"""Content-addressed, size-bounded solver cache with an optional disk tier.

The Theorem-1 pipeline's dominant cost is the *embedding* stage: building
the Räcke-style decomposition-tree ensemble re-runs spectral eigensolves
and (for the flow-based builders) ``n − 1`` Dinic max-flows on every
solve, even when the input graph has not changed.  This module gives the
whole solver one shared memoisation substrate so warm runs skip straight
to quantize/DP:

* **Content addressing** — keys are derived from the *content* of the
  inputs, never from object identity: :meth:`repro.graph.graph.Graph.digest`
  hashes the canonical CSR arrays, and :func:`cache_key` canonicalises an
  arbitrary tuple of plain values / ndarrays into one stable blake2b hex
  key.  Two structurally identical graphs built independently (e.g. the
  online placer's live-graph snapshots between churn events) hit the
  same entries.
* **Seed discipline** — randomized builders are only cacheable when
  their seed material is *reproducible*: :func:`seed_token` maps ints
  and ``SeedSequence``\\ s to stable tokens and returns ``None`` for
  ``None`` (fresh OS entropy) and live ``Generator`` objects (consuming
  stream state), in which case callers bypass the cache.
* **Memory tier** — a thread-safe LRU bounded by a byte budget
  (``max_bytes``); entry sizes are measured by pickling once, and the
  same pickled blob feeds the disk tier so nothing is serialised twice.
* **Disk tier** — optional persistence under ``REPRO_CACHE_DIR`` (or an
  explicit ``disk_dir``): entries are written atomically as
  ``<dir>/<kind>/<key>.pkl`` and promoted back into memory on hit, so
  cache warmth survives process restarts and is shared across CLI
  invocations.
* **Observability** — hit / miss / eviction / byte counters and a
  lookup-latency histogram are published to the default
  :mod:`repro.obs.metrics` registry (``repro_cache_*`` families), and
  the engine mirrors hit/miss counts into the run report's ``trees``
  span, so ``repro report show`` and ``repro cache stats`` both expose
  cache effectiveness.

Determinism contract: the cache stores *finished, immutable results* of
deterministic builds (decomposition-tree ensembles, Gomory–Hu trees,
Fiedler vectors keyed by their start vector).  A warm run therefore
returns bit-for-bit the same values a cold run would recompute — the
cache can change *when* work happens, never *what* is produced.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np


def _registry():
    # Imported lazily: repro.obs's package __init__ reaches (via
    # repro.core.config) back into repro.cache, so a top-level import
    # here would be circular.
    from repro.obs.metrics import get_registry

    return get_registry()


__all__ = [
    "CacheConfig",
    "CacheStats",
    "SolverCache",
    "cache_key",
    "seed_token",
    "estimate_nbytes",
    "get_cache",
    "configure_cache",
    "resolve_cache",
    "reset_cache",
]

#: Bump when the value layout of any cached kind changes; part of every
#: key, so stale disk entries from older layouts can never be returned.
CACHE_SCHEMA_VERSION = 1

#: Default in-memory byte budget (overridable via ``REPRO_CACHE_MAX_BYTES``).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

ENV_DIR = "REPRO_CACHE_DIR"
ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_DISABLE = "REPRO_CACHE_DISABLE"


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheConfig:
    """Per-run cache knobs (the ``cache`` block of ``SolverConfig``).

    Attributes
    ----------
    enabled:
        Whether engine runs under this config consult the cache at all
        (``repro solve --no-cache`` sets this to ``False``).  Disabling
        is per-run: it neither clears nor reconfigures the shared cache.
    max_bytes:
        In-memory LRU byte budget to apply to the process cache
        (``None`` = leave the current budget untouched; the global
        default is :data:`DEFAULT_MAX_BYTES` or ``REPRO_CACHE_MAX_BYTES``).
    disk_dir:
        Disk-tier directory to apply (``None`` = leave untouched; the
        global default comes from ``REPRO_CACHE_DIR``, unset = memory
        only).
    """

    enabled: bool = True
    max_bytes: Optional[int] = None
    disk_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {self.max_bytes}")


@dataclass
class CacheStats:
    """Process-local effectiveness counters of one :class:`SolverCache`.

    These mirror the ``repro_cache_*`` metrics but live on the cache
    object itself, so tests and the ``repro cache stats`` CLI can read
    them without touching the metrics registry.
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, kind: str, event: str) -> None:
        """Bump the aggregate and per-kind counter for ``event``."""
        setattr(self, event, getattr(self, event) + 1)
        per = self.by_kind.setdefault(
            kind, {"hits": 0, "disk_hits": 0, "misses": 0, "stores": 0}
        )
        if event in per:
            per[event] += 1

    @property
    def lookups(self) -> int:
        """Total lookups (memory hits + disk hits + misses)."""
        return self.hits + self.disk_hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0 when idle)."""
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.disk_hits) / total

    def as_dict(self) -> dict:
        """Plain-dict view (CLI / run-report meta)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
            "by_kind": {k: dict(v) for k, v in sorted(self.by_kind.items())},
        }


# ----------------------------------------------------------------------
# key derivation
# ----------------------------------------------------------------------


def _canonical(obj: Any) -> str:
    """Stable textual form of one key part (raises on unhashable types).

    Only value-like inputs are accepted on purpose: passing an arbitrary
    object would silently key on ``repr`` noise and corrupt content
    addressing.  Graphs must be passed as ``g.digest()``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return f"{type(obj).__name__}:{obj!r}"
    if isinstance(obj, float):
        return f"float:{obj!r}"
    if isinstance(obj, (np.integer,)):
        return f"int:{int(obj)!r}"
    if isinstance(obj, (np.floating,)):
        return f"float:{float(obj)!r}"
    if isinstance(obj, bytes):
        return "bytes:" + hashlib.blake2b(obj, digest_size=16).hexdigest()
    if isinstance(obj, np.ndarray):
        h = hashlib.blake2b(digest_size=16)
        h.update(str(obj.dtype.str).encode())
        h.update(repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
        return "ndarray:" + h.hexdigest()
    if isinstance(obj, (tuple, list)):
        inner = ",".join(_canonical(x) for x in obj)
        return f"{type(obj).__name__}:[{inner}]"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_canonical(k)}={_canonical(v)}" for k, v in sorted(obj.items())
        )
        return "dict:{" + inner + "}"
    raise TypeError(
        f"cache key parts must be plain values or ndarrays, got {type(obj).__name__}"
    )


def cache_key(kind: str, parts: Tuple[Any, ...]) -> str:
    """Content hash of ``(schema, kind, parts)`` as a 32-char hex string."""
    text = f"v{CACHE_SCHEMA_VERSION}|{kind}|{_canonical(tuple(parts))}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def seed_token(seed: Any) -> Optional[Tuple[Any, ...]]:
    """Stable key material for a ``SeedLike``, or ``None`` when uncacheable.

    Ints and ``SeedSequence`` objects reproduce the same random stream
    every time, so they make valid cache-key material.  ``None`` (fresh
    OS entropy) and live ``Generator`` objects (whose position in the
    stream advances with use) do not — callers must bypass the cache.
    """
    if isinstance(seed, (bool,)):
        return ("int", int(seed))
    if isinstance(seed, (int, np.integer)):
        return ("int", int(seed))
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:
            return None
        if isinstance(entropy, (int, np.integer)):
            ent: Tuple[int, ...] = (int(entropy),)
        else:
            ent = tuple(int(e) for e in entropy)
        return ("seedseq", ent, tuple(int(k) for k in seed.spawn_key))
    return None


def estimate_nbytes(value: Any) -> int:
    """Size of ``value`` for budget accounting (its pickled length)."""
    return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------


class SolverCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    max_bytes:
        In-memory byte budget (``None`` = ``REPRO_CACHE_MAX_BYTES`` env
        or :data:`DEFAULT_MAX_BYTES`).  Entries are evicted LRU-first
        whenever the accounted total exceeds the budget; an entry larger
        than the whole budget is never memory-resident (it still reaches
        the disk tier).
    disk_dir:
        Disk-tier directory (``None`` = ``REPRO_CACHE_DIR`` env; unset =
        memory only).
    enabled:
        Master switch (``REPRO_CACHE_DISABLE=1`` turns the default cache
        off); a disabled cache reports every lookup as a miss and drops
        every store.
    """

    def __init__(
        self,
        max_bytes: Optional[int] = None,
        disk_dir: Optional[str] = None,
        enabled: Optional[bool] = None,
    ):
        if max_bytes is None:
            max_bytes = int(os.environ.get(ENV_MAX_BYTES, DEFAULT_MAX_BYTES))
        if disk_dir is None:
            disk_dir = os.environ.get(ENV_DIR) or None
        if enabled is None:
            enabled = os.environ.get(ENV_DISABLE, "") not in ("1", "true", "yes")
        self.max_bytes = int(max_bytes)
        self.disk_dir: Optional[Path] = Path(disk_dir) if disk_dir else None
        self.enabled = bool(enabled)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        #: key -> (value, nbytes), in LRU order (oldest first).
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        #: key -> kind, for per-kind disk paths and stats attribution.
        self._kinds: Dict[str, str] = {}
        self._bytes = 0

    # -- metrics helpers ------------------------------------------------

    def _metric_hit(self, kind: str, tier: str) -> None:
        _registry().counter(
            "repro_cache_hits_total",
            "Cache lookups served from a tier",
            labelnames=("kind", "tier"),
        ).inc(kind=kind, tier=tier)

    def _metric_miss(self, kind: str) -> None:
        _registry().counter(
            "repro_cache_misses_total",
            "Cache lookups that found nothing in any tier",
            labelnames=("kind",),
        ).inc(kind=kind)

    def _metric_gauges(self) -> None:
        reg = _registry()
        reg.gauge(
            "repro_cache_bytes", "Bytes resident in the in-memory cache tier"
        ).set(self._bytes)
        reg.gauge(
            "repro_cache_entries", "Entries resident in the in-memory cache tier"
        ).set(len(self._entries))

    # -- core API -------------------------------------------------------

    def lookup(self, kind: str, parts: Tuple[Any, ...]) -> Tuple[bool, Any]:
        """Probe both tiers for ``(kind, parts)``.

        Returns ``(True, value)`` on a hit (disk hits are promoted into
        the memory tier) and ``(False, None)`` on a miss.  Latency is
        observed in the ``repro_cache_lookup_seconds`` histogram.
        """
        if not self.enabled:
            return False, None
        t0 = time.perf_counter()
        key = cache_key(kind, parts)
        try:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.record(kind, "hits")
                    self._metric_hit(kind, "memory")
                    return True, entry[0]
            value = self._disk_load(kind, key)
            if value is not _MISSING:
                self._put(kind, key, value, write_disk=False)
                self.stats.record(kind, "disk_hits")
                self._metric_hit(kind, "disk")
                return True, value
            self.stats.record(kind, "misses")
            self._metric_miss(kind)
            return False, None
        finally:
            _registry().histogram(
                "repro_cache_lookup_seconds",
                "Wall-clock seconds of one cache lookup (any tier)",
            ).observe(time.perf_counter() - t0)

    def store(self, kind: str, parts: Tuple[Any, ...], value: Any) -> str:
        """Insert ``value`` under ``(kind, parts)`` in both tiers.

        Returns the derived key (useful for tests).  A no-op when the
        cache is disabled.
        """
        key = cache_key(kind, parts)
        if not self.enabled:
            return key
        self._put(kind, key, value, write_disk=True)
        self.stats.record(kind, "stores")
        return key

    def get_or_build(
        self, kind: str, parts: Optional[Tuple[Any, ...]], build: Callable[[], Any]
    ) -> Any:
        """``lookup`` then ``build``-and-``store`` on miss.

        ``parts=None`` (uncacheable seed material) builds directly
        without touching the cache.
        """
        if parts is None or not self.enabled:
            return build()
        hit, value = self.lookup(kind, parts)
        if hit:
            return value
        value = build()
        self.store(kind, parts, value)
        return value

    def clear(self, memory: bool = True, disk: bool = True) -> Dict[str, int]:
        """Wipe the selected tiers; returns how much was dropped."""
        dropped = {"memory_entries": 0, "memory_bytes": 0, "disk_files": 0}
        if memory:
            with self._lock:
                dropped["memory_entries"] = len(self._entries)
                dropped["memory_bytes"] = self._bytes
                self._entries.clear()
                self._kinds.clear()
                self._bytes = 0
                self._metric_gauges()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in sorted(self.disk_dir.glob("*/*.pkl")):
                try:
                    path.unlink()
                    dropped["disk_files"] += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        return dropped

    # -- introspection --------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes currently accounted in the memory tier."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def disk_stats(self) -> Dict[str, object]:
        """Disk-tier inventory: per-kind file counts and byte totals."""
        out: Dict[str, object] = {
            "dir": str(self.disk_dir) if self.disk_dir else None,
            "files": 0,
            "bytes": 0,
            "by_kind": {},
        }
        if self.disk_dir is None or not self.disk_dir.exists():
            return out
        by_kind: Dict[str, Dict[str, int]] = {}
        for path in self.disk_dir.glob("*/*.pkl"):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing cleanup
                continue
            k = by_kind.setdefault(path.parent.name, {"files": 0, "bytes": 0})
            k["files"] += 1
            k["bytes"] += size
            out["files"] = int(out["files"]) + 1
            out["bytes"] = int(out["bytes"]) + size
        out["by_kind"] = {k: by_kind[k] for k in sorted(by_kind)}
        return out

    def describe(self) -> Dict[str, object]:
        """One dict with both tiers' state + effectiveness counters."""
        with self._lock:
            by_kind: Dict[str, Dict[str, int]] = {}
            for key, (_value, nbytes) in self._entries.items():
                k = by_kind.setdefault(
                    self._kinds.get(key, "?"), {"entries": 0, "bytes": 0}
                )
                k["entries"] += 1
                k["bytes"] += nbytes
            memory = {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
            }
        return {
            "enabled": self.enabled,
            "memory": memory,
            "disk": self.disk_stats(),
            "stats": self.stats.as_dict(),
        }

    # -- reconfiguration ------------------------------------------------

    def apply_config(self, config: CacheConfig) -> None:
        """Apply a run's :class:`CacheConfig` overrides to this cache.

        Only explicitly-set fields are applied; ``enabled`` is a per-run
        decision made by the caller, not a property of the shared cache.
        """
        if config.max_bytes is not None and config.max_bytes != self.max_bytes:
            with self._lock:
                self.max_bytes = int(config.max_bytes)
                self._evict_locked()
        if config.disk_dir is not None:
            self.disk_dir = Path(config.disk_dir)

    # -- internals ------------------------------------------------------

    def _put(self, kind: str, key: str, value: Any, write_disk: bool) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(blob)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            if nbytes <= self.max_bytes:
                self._entries[key] = (value, nbytes)
                self._kinds[key] = kind
                self._bytes += nbytes
                self._evict_locked()
            self._metric_gauges()
        if write_disk:
            self._disk_write(kind, key, blob)

    def _evict_locked(self) -> None:
        """Drop LRU entries until the byte budget holds (lock held)."""
        evicted = 0
        while self._bytes > self.max_bytes and self._entries:
            _key, (_value, nbytes) = self._entries.popitem(last=False)
            self._kinds.pop(_key, None)
            self._bytes -= nbytes
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            _registry().counter(
                "repro_cache_evictions_total",
                "Entries evicted from the in-memory tier by the byte budget",
            ).inc(evicted)

    def _disk_path(self, kind: str, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / kind / f"{key}.pkl"

    def _disk_write(self, kind: str, key: str, blob: bytes) -> None:
        path = self._disk_path(kind, key)
        if path is None:
            return
        # Temp name unique per writer (pid + uuid, O_EXCL) so concurrent
        # processes storing the same key never share a partially written
        # temp file; whoever renames last wins, and both entries hold the
        # same content-addressed bytes anyway.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:  # pragma: no cover - disk tier is best-effort
            pass

    def _disk_load(self, kind: str, key: str) -> Any:
        path = self._disk_path(kind, key)
        if path is None or not path.exists():
            return _MISSING
        if os.environ.get("REPRO_FAULT_SPEC"):
            # Chaos hook: cache_corrupt overwrites the entry on disk so
            # the *real* recovery path below handles the garbage.
            from repro.testing.faults import maybe_inject

            maybe_inject("cache", kind=kind, path=str(path))
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Corrupt or stale entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
            return _MISSING


class _Missing:
    """Sentinel distinguishing 'no entry' from a cached ``None``."""

    __slots__ = ()


_MISSING = _Missing()


# ----------------------------------------------------------------------
# the process-wide default cache
# ----------------------------------------------------------------------

_DEFAULT: Optional[SolverCache] = None
_DEFAULT_LOCK = threading.Lock()


def get_cache() -> SolverCache:
    """The process-wide cache every instrumented build path consults."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = SolverCache()
        return _DEFAULT


def configure_cache(
    max_bytes: Optional[int] = None,
    disk_dir: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> SolverCache:
    """Replace the process-wide cache with a freshly configured one."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = SolverCache(max_bytes=max_bytes, disk_dir=disk_dir, enabled=enabled)
        return _DEFAULT


def resolve_cache(config: Optional[CacheConfig]) -> SolverCache:
    """The default cache with a run's :class:`CacheConfig` overrides applied."""
    cache = get_cache()
    if config is not None:
        cache.apply_config(config)
    return cache


def reset_cache() -> None:
    """Drop the process-wide cache instance (tests only)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
