"""In-flight request deduplication (the serve layer's coalescing core).

The content-addressed cache (:mod:`repro.cache.cache`) dedupes work
*across* solves: a finished result is stored under its input digest and
the next identical request is a hit.  It cannot dedupe work that is
still running — under a duplicate-heavy request burst, N tenants asking
for the same placement at once would each miss the cache and launch N
identical solves.  :class:`InflightRegistry` closes that window: the
first claimant of a key becomes the *leader* (and actually solves),
every concurrent claimant of the same key becomes a *follower* and
waits for the leader's result, which is fanned out to all of them.

The registry stores opaque values (the serve layer passes fully
serialized response payloads, so every follower receives bytes
identical to the leader's response — the coalescing bit-identity
contract).  Keys are whatever the caller uses — ``repro.serve`` keys by
:func:`repro.cache.cache.cache_key` over the request's solve inputs.

Thread-safety: all methods take an internal lock; waiting happens on
per-subscriber :class:`concurrent.futures.Future` objects so one
follower timing out (and cancelling *its* future) can never poison the
result for the others.
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
import time
from typing import Any, Dict, Optional, Tuple

__all__ = ["InflightEntry", "InflightRegistry"]


class InflightEntry:
    """One in-flight computation: a key, a leader, and its subscribers."""

    def __init__(self, key: str):
        self.key = key
        self.created_at = time.monotonic()
        self._lock = threading.Lock()
        self._resolved = False
        self._value: Any = None
        self._waiters: list[cf.Future] = []
        self.followers = 0

    def subscribe(self) -> cf.Future:
        """A future completed with the entry's value (maybe already).

        Each subscriber gets its *own* future: cancelling one (e.g. an
        ``asyncio.wait_for`` timeout on a wrapped future) never affects
        the other subscribers or the shared value.
        """
        fut: cf.Future = cf.Future()
        with self._lock:
            if self._resolved:
                fut.set_result(self._value)
            else:
                self._waiters.append(fut)
        return fut

    def resolve(self, value: Any) -> int:
        """Complete the entry, waking every subscriber; returns their count."""
        with self._lock:
            if self._resolved:
                return 0
            self._resolved = True
            self._value = value
            waiters, self._waiters = self._waiters, []
        delivered = 0
        for fut in waiters:
            if fut.set_running_or_notify_cancel():
                fut.set_result(value)
                delivered += 1
        return delivered

    @property
    def resolved(self) -> bool:
        with self._lock:
            return self._resolved


class InflightRegistry:
    """Key -> live :class:`InflightEntry`, with leader election.

    Usage (serve dispatcher protocol)::

        leader, entry = registry.claim(key)
        if leader:
            payload = ...actually solve...
            registry.resolve(key, payload)   # fans out + unregisters
        else:
            payload = entry.subscribe().result(timeout=...)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, InflightEntry] = {}
        self.coalesced_total = 0

    def claim(self, key: str) -> Tuple[bool, InflightEntry]:
        """Claim ``key``; ``(True, entry)`` makes the caller the leader.

        A ``False`` first element means another claimant is already
        solving this key — the caller should ``entry.subscribe()`` and
        wait instead of solving.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.followers += 1
                self.coalesced_total += 1
                return False, entry
            entry = InflightEntry(key)
            self._entries[key] = entry
            return True, entry

    def resolve(self, key: str, value: Any) -> int:
        """Leader handoff: complete ``key`` and unregister it.

        Returns the number of followers the value was fanned out to.
        Claims arriving after this start a fresh entry (a new leader) —
        exactly the cache-miss semantics they would see anyway.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is None:
            return 0
        return entry.resolve(value)

    def get(self, key: str) -> Optional[InflightEntry]:
        """The live entry for ``key``, if any (introspection)."""
        with self._lock:
            return self._entries.get(key)

    def inflight(self) -> int:
        """How many keys are currently being solved."""
        with self._lock:
            return len(self._entries)
