"""Command-line interface: ``python -m repro``.

Two subcommands cover the operator workflow end-to-end:

``generate``
    Write a synthetic workload graph (any family from
    :data:`repro.bench.FAMILIES`) to an edge-list file.

``solve``
    Read a graph (edge-list or METIS), build the hierarchy from
    ``--degrees/--cm``, solve with the paper's pipeline or any baseline,
    print the ASCII placement report, and optionally save the placement
    as JSON (``--out``) and the engine's structured run report —
    per-stage spans plus per-tree member records — as JSON
    (``--report``).

Examples
--------
::

    python -m repro generate --family blocks --n 32 --seed 7 --out tasks.edges
    python -m repro solve --graph tasks.edges --degrees 2,4 \
        --cm 10,3,0 --fill 0.6 --method hgp --seed 0 --out pin.json \
        --report run.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidInputError, ReproError
from repro.graph.graph import Graph
from repro.graph.generators import random_demands
from repro.graph.io import read_edgelist, read_metis, write_edgelist
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.report import placement_to_json, render_placement
from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline

__all__ = ["main", "build_parser"]


def _float_list(text: str) -> List[float]:
    return [float(tok) for tok in text.split(",") if tok.strip()]


def _int_list(text: str) -> List[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical Graph Partitioning (SPAA 2014) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic workload graph")
    gen.add_argument("--family", required=True, help="grid | expander | powerlaw | blocks | dag")
    gen.add_argument("--n", type=int, required=True, help="approximate vertex count")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output edge-list path")

    solve = sub.add_parser("solve", help="place a task graph onto a hierarchy")
    solve.add_argument("--graph", required=True, help="edge-list or METIS file")
    solve.add_argument(
        "--format",
        choices=("edgelist", "metis", "auto"),
        default="auto",
        help="input format (auto: by extension, .graph = METIS)",
    )
    solve.add_argument(
        "--degrees", required=True, type=_int_list, help="e.g. 2,4 for 2 sockets x 4 cores"
    )
    solve.add_argument(
        "--cm", required=True, type=_float_list, help="h+1 cost multipliers, e.g. 10,3,0"
    )
    solve.add_argument("--leaf-capacity", type=float, default=1.0)
    solve.add_argument(
        "--demands",
        default=None,
        help="path to a demands file (one float per line); default: synthetic via --fill/--skew",
    )
    solve.add_argument("--fill", type=float, default=0.6, help="synthetic demand utilisation")
    solve.add_argument("--skew", type=float, default=0.3, help="synthetic demand skew")
    solve.add_argument(
        "--method",
        default="hgp",
        help="hgp | hgp_feasible | random | round_robin | greedy | flat_identity | "
        "flat_shuffled | flat_quotient | recursive_bisection",
    )
    solve.add_argument("--n-trees", type=int, default=8)
    solve.add_argument("--slack", type=float, default=0.25)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--out", default=None, help="write the placement as JSON here")
    solve.add_argument(
        "--report",
        default=None,
        help="write the engine's JSON run report here (hgp methods only)",
    )
    solve.add_argument(
        "--dot", default=None, help="write a Graphviz rendering of the loaded hierarchy here"
    )
    solve.add_argument(
        "--taskset",
        default=None,
        help="write a taskset pinning script here (see repro.hierarchy.pin_script)",
    )
    solve.add_argument(
        "--cpus-per-leaf", type=int, default=1, help="CPUs backing one leaf (for --taskset)"
    )
    solve.add_argument(
        "--quiet", action="store_true", help="print only the one-line summary"
    )
    return parser


def _load_graph(path: str, fmt: str) -> Graph:
    p = Path(path)
    if not p.exists():
        raise InvalidInputError(f"graph file not found: {path}")
    if fmt == "auto":
        fmt = "metis" if p.suffix == ".graph" else "edgelist"
    if fmt == "metis":
        g, _ = read_metis(p)
        return g
    return read_edgelist(p)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.instances import FAMILIES

    if args.family not in FAMILIES:
        raise InvalidInputError(
            f"unknown family {args.family!r}; choose from {sorted(FAMILIES)}"
        )
    g = FAMILIES[args.family](args.n, args.seed)
    write_edgelist(args.out, g)
    print(f"wrote {args.family} graph: n={g.n} m={g.m} -> {args.out}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    g = _load_graph(args.graph, args.format)
    hier = Hierarchy(args.degrees, args.cm, leaf_capacity=args.leaf_capacity)
    if args.demands is not None:
        d = np.asarray(
            [float(line) for line in Path(args.demands).read_text().split()],
            dtype=np.float64,
        )
        if d.size != g.n:
            raise InvalidInputError(
                f"demands file has {d.size} entries, graph has {g.n} vertices"
            )
    else:
        d = random_demands(
            g.n, hier.total_capacity, fill=args.fill, skew=args.skew, seed=args.seed
        )

    if args.method in ("hgp", "hgp_feasible"):
        cfg = SolverConfig(seed=args.seed, n_trees=args.n_trees, slack=args.slack)
        result = run_pipeline(g, hier, d, cfg, path="batch")
        placement = result.placement
        if args.report:
            report = result.report(graph=str(args.graph), method=args.method)
            Path(args.report).write_text(report.to_json() + "\n")
            print(f"run report written to {args.report}")
        if args.method == "hgp_feasible":
            from repro.baselines.local_search import enforce_capacity, refine_placement

            placement = enforce_capacity(placement, 1.0, seed=args.seed)
            placement = refine_placement(
                placement, max_violation=1.0, seed=args.seed, allow_swaps=True
            )
    else:
        if args.report:
            raise InvalidInputError(
                "--report requires an engine method (hgp or hgp_feasible)"
            )
        from repro.baselines import placement_baselines

        registry = placement_baselines()
        if args.method not in registry:
            raise InvalidInputError(
                f"unknown method {args.method!r}; choose hgp, hgp_feasible or one of "
                f"{sorted(registry)}"
            )
        placement = registry[args.method](g, hier, d, seed=args.seed)

    if args.quiet:
        print(placement.summary())
    else:
        print(render_placement(placement))
    if args.out:
        Path(args.out).write_text(placement_to_json(placement))
        print(f"placement written to {args.out}")
    if args.dot:
        from repro.viz import hierarchy_to_dot

        Path(args.dot).write_text(hierarchy_to_dot(placement))
        print(f"hierarchy DOT written to {args.dot}")
    if args.taskset:
        from repro.hierarchy.pin_script import to_taskset_script

        Path(args.taskset).write_text(
            to_taskset_script(placement, cpus_per_leaf=args.cpus_per_leaf)
        )
        print(f"pinning script written to {args.taskset}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        return _cmd_solve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
