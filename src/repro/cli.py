"""Command-line interface: ``python -m repro``.

Three subcommands cover the operator workflow end-to-end:

``generate``
    Write a synthetic workload graph (any family from
    :data:`repro.bench.FAMILIES`) to an edge-list file.

``solve``
    Read a graph (edge-list or METIS), build the hierarchy from
    ``--degrees/--cm``, solve with the paper's pipeline or any baseline,
    print the ASCII placement report, and optionally save the placement
    as JSON (``--out``) and the engine's structured run report —
    per-stage spans plus per-tree member records — as JSON
    (``--report``).  ``--verbose`` streams structured engine events to
    stderr and ``--log-json PATH`` appends them as JSON lines with the
    run's correlation id.

``report``
    Analyse saved run reports: ``show`` pretty-prints the span tree and
    member table, ``diff`` compares two reports with an optional
    ``--fail-above PCT`` regression gate (non-zero exit on breach),
    ``trace`` exports Chrome trace-event JSON for Perfetto, and
    ``flame`` emits the collapsed-stack profile of a ``--profile`` run
    for flamegraph.pl / speedscope.

Examples
--------
::

    python -m repro generate --family blocks --n 32 --seed 7 --out tasks.edges
    python -m repro solve --graph tasks.edges --degrees 2,4 \
        --cm 10,3,0 --fill 0.6 --method hgp --seed 0 --out pin.json \
        --report run.json
    python -m repro report show run.json
    python -m repro report diff baseline.json run.json --fail-above 10
    python -m repro report trace run.json --out run.trace.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import DegradedRunError, InvalidInputError, ReproError
from repro.graph.graph import Graph
from repro.graph.generators import random_demands
from repro.graph.io import read_edgelist, read_metis, write_edgelist
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.report import placement_to_json, render_placement
from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline

__all__ = ["main", "build_parser"]


def _float_list(text: str) -> List[float]:
    return [float(tok) for tok in text.split(",") if tok.strip()]


def _int_list(text: str) -> List[int]:
    return [int(tok) for tok in text.split(",") if tok.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical Graph Partitioning (SPAA 2014) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic workload graph")
    gen.add_argument(
        "--family",
        required=True,
        help="grid | mesh3d | expander | powerlaw | ba | blocks | dag | "
        "hypercube | rmat",
    )
    gen.add_argument("--n", type=int, required=True, help="approximate vertex count")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output edge-list path")

    solve = sub.add_parser("solve", help="place a task graph onto a hierarchy")
    solve.add_argument("--graph", required=True, help="edge-list or METIS file")
    solve.add_argument(
        "--format",
        choices=("edgelist", "metis", "auto"),
        default="auto",
        help="input format (auto: by extension, .graph = METIS)",
    )
    solve.add_argument(
        "--degrees", required=True, type=_int_list, help="e.g. 2,4 for 2 sockets x 4 cores"
    )
    solve.add_argument(
        "--cm", required=True, type=_float_list, help="h+1 cost multipliers, e.g. 10,3,0"
    )
    solve.add_argument("--leaf-capacity", type=float, default=1.0)
    solve.add_argument(
        "--demands",
        default=None,
        help="path to a demands file (one float per line); default: synthetic via --fill/--skew",
    )
    solve.add_argument("--fill", type=float, default=0.6, help="synthetic demand utilisation")
    solve.add_argument("--skew", type=float, default=0.3, help="synthetic demand skew")
    solve.add_argument(
        "--method",
        default="hgp",
        help="hgp | hgp_feasible | random | round_robin | greedy | flat_identity | "
        "flat_shuffled | flat_quotient | recursive_bisection",
    )
    solve.add_argument("--n-trees", type=int, default=8)
    solve.add_argument("--slack", type=float, default=0.25)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the per-tree solves (1 = in-process)",
    )
    solve.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run failed ensemble members up to N times "
        "(the last retry runs in-process)",
    )
    solve.add_argument(
        "--retry-delay",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base backoff before the first retry; doubles per retry",
    )
    solve.add_argument(
        "--member-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline per member solve wave; hung workers are "
        "terminated and the members retried",
    )
    solve.add_argument(
        "--allow-partial",
        action="store_true",
        help="complete on the surviving ensemble when members fail "
        "terminally (the run report is marked degraded)",
    )
    solve.add_argument(
        "--min-members",
        type=int,
        default=1,
        metavar="K",
        help="minimum surviving members a partial run needs (with "
        "--allow-partial)",
    )
    solve.add_argument("--out", default=None, help="write the placement as JSON here")
    solve.add_argument(
        "--report",
        default=None,
        help="write the engine's JSON run report here (hgp methods only)",
    )
    solve.add_argument(
        "--dot", default=None, help="write a Graphviz rendering of the loaded hierarchy here"
    )
    solve.add_argument(
        "--taskset",
        default=None,
        help="write a taskset pinning script here (see repro.hierarchy.pin_script)",
    )
    solve.add_argument(
        "--cpus-per-leaf", type=int, default=1, help="CPUs backing one leaf (for --taskset)"
    )
    solve.add_argument(
        "--quiet", action="store_true", help="print only the one-line summary"
    )
    solve.add_argument(
        "--verbose",
        action="store_true",
        help="stream structured engine events to stderr",
    )
    solve.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="append structured engine events as JSON lines here",
    )
    solve.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the content-addressed solver cache for this run "
        "(always rebuild decomposition trees)",
    )
    solve.add_argument(
        "--no-incremental",
        action="store_true",
        help="skip the subtree-DP memo (the subtree_tables cache tier) "
        "for this run; results are bit-identical either way "
        "(REPRO_INCREMENTAL=0 is the env equivalent)",
    )
    solve.add_argument(
        "--multilevel",
        action="store_true",
        help="coarsen–solve–refine front-end: coarsen to --coarsen-to "
        "supervertices, run the engine there, refine on the way up "
        "(hgp method only; for large graphs)",
    )
    solve.add_argument(
        "--coarsen-to",
        type=int,
        default=160,
        metavar="N",
        help="multilevel coarsening target (supervertices)",
    )
    solve.add_argument(
        "--refine-passes",
        type=int,
        default=2,
        metavar="N",
        help="hierarchy-aware FM passes per uncoarsening level",
    )
    solve.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run the continuous sampling profiler and write the "
        "collapsed-stack (flamegraph-compatible) profile here; the run "
        "report gains a 'profile' section (hgp methods only)",
    )
    solve.add_argument(
        "--profile-hz",
        type=float,
        default=97.0,
        metavar="HZ",
        help="profiler sampling rate (with --profile; default 97)",
    )
    solve.add_argument(
        "--profile-mem",
        action="store_true",
        help="also record per-stage tracemalloc allocation deltas "
        "(with --profile; adds overhead)",
    )
    solve.add_argument(
        "--kernel-backend",
        choices=("auto", "python", "numba"),
        default="auto",
        help="hot-path kernel backend: 'auto' (default) uses the numba "
        "JIT backend when importable and falls back to the bit-identical "
        "pure-python reference (hgp methods only)",
    )
    solve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /debug/profile on this port "
        "for the duration of the solve (0 = OS-assigned)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the placement service (HTTP/JSON, overload-safe)",
        description=(
            "Serve placement requests over HTTP/JSON with admission "
            "control, priority lanes, request coalescing, SLO deadlines "
            "and graceful drain on SIGTERM. /metrics and /healthz are "
            "served from the same port. Examples:\n"
            "  repro serve --port 8787\n"
            "  repro serve --port 8787 --jobs 4 --queue-capacity 32 "
            "--default-deadline 10\n"
            "  curl -s localhost:8787/healthz\n"
            "  python examples/placement_service.py http://127.0.0.1:8787"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help="interactive-lane admission bound; requests past it shed "
        "with 503 + Retry-After",
    )
    serve.add_argument(
        "--batch-queue-capacity",
        type=int,
        default=None,
        metavar="N",
        help="batch-lane bound (default: same as --queue-capacity)",
    )
    serve.add_argument(
        "--age-promote",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="serve a batch request ahead of interactive traffic once "
        "it has waited this long (anti-starvation)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="SLO budget for requests that carry no deadline_s "
        "(0 = unbounded)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes per solve (keep > 1: SLO deadlines "
        "cannot preempt a serial in-process solve)",
    )
    serve.add_argument("--n-trees", type=int, default=8)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="re-run failed ensemble members up to N times",
    )
    serve.add_argument(
        "--allow-partial",
        action="store_true",
        help="let degraded runs complete on the surviving ensemble "
        "(timed-out requests then return 504 with a partial result)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for queued + in-flight work",
    )
    serve.add_argument(
        "--no-response-cache",
        action="store_true",
        help="do not cache completed responses (every request solves)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner"
    )

    cache = sub.add_parser("cache", help="inspect or wipe the solver cache")
    csub = cache.add_subparsers(dest="cache_command", required=True)

    cstats = csub.add_parser("stats", help="print cache tiers and hit counters")
    cstats.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="disk-tier directory to inspect (default: REPRO_CACHE_DIR)",
    )

    cclear = csub.add_parser("clear", help="wipe the cache tiers")
    cclear.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="disk-tier directory to clear (default: REPRO_CACHE_DIR)",
    )
    ctier = cclear.add_mutually_exclusive_group()
    ctier.add_argument(
        "--memory-only", action="store_true", help="clear only the in-memory tier"
    )
    ctier.add_argument(
        "--disk-only", action="store_true", help="clear only the disk tier"
    )

    report = sub.add_parser("report", help="inspect and compare saved run reports")
    rsub = report.add_subparsers(dest="report_command", required=True)

    show = rsub.add_parser("show", help="pretty-print one run report")
    show.add_argument("report", help="run-report JSON file (from solve --report)")

    diff = rsub.add_parser("diff", help="compare two run reports")
    diff.add_argument("baseline", help="baseline run-report JSON file")
    diff.add_argument("fresh", help="fresh run-report JSON file")
    diff.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero when cost or a stage time regresses by more "
        "than PCT percent over the baseline",
    )

    trace = rsub.add_parser("trace", help="export a Chrome trace (Perfetto)")
    trace.add_argument("report", help="run-report JSON file (from solve --report)")
    trace.add_argument("--out", required=True, help="output trace JSON path")
    trace.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-lane count (default: n_jobs from the report's config)",
    )

    flame = rsub.add_parser(
        "flame",
        help="emit the collapsed-stack profile of a profiled run "
        "(pipe into flamegraph.pl / paste into speedscope)",
    )
    flame.add_argument(
        "report", help="run-report JSON file (from solve --profile --report)"
    )
    flame.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the collapsed stacks here instead of stdout",
    )
    return parser


def _load_graph(path: str, fmt: str) -> Graph:
    p = Path(path)
    if not p.exists():
        raise InvalidInputError(f"graph file not found: {path}")
    if fmt == "auto":
        fmt = "metis" if p.suffix == ".graph" else "edgelist"
    if fmt == "metis":
        g, _ = read_metis(p)
        return g
    return read_edgelist(p)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.bench.instances import FAMILIES

    if args.family not in FAMILIES:
        raise InvalidInputError(
            f"unknown family {args.family!r}; choose from {sorted(FAMILIES)}"
        )
    g = FAMILIES[args.family](args.n, args.seed)
    write_edgelist(args.out, g)
    print(f"wrote {args.family} graph: n={g.n} m={g.m} -> {args.out}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    exporter = None
    if args.metrics_port is not None:
        from repro.obs.exporter import start_exporter

        exporter = start_exporter(port=args.metrics_port)
        print(
            f"metrics exporter listening on {exporter.url}/metrics",
            file=sys.stderr,
        )
    try:
        return _run_solve(args)
    finally:
        if exporter is not None:
            exporter.stop()


def _run_solve(args: argparse.Namespace) -> int:
    g = _load_graph(args.graph, args.format)
    hier = Hierarchy(args.degrees, args.cm, leaf_capacity=args.leaf_capacity)
    if args.demands is not None:
        d = np.asarray(
            [float(line) for line in Path(args.demands).read_text().split()],
            dtype=np.float64,
        )
        if d.size != g.n:
            raise InvalidInputError(
                f"demands file has {d.size} entries, graph has {g.n} vertices"
            )
    else:
        d = random_demands(
            g.n, hier.total_capacity, fill=args.fill, skew=args.skew, seed=args.seed
        )

    logger = None
    if args.verbose or args.log_json:
        from repro.obs import StructuredLogger, human_sink, jsonl_sink

        sinks = []
        if args.log_json:
            sinks.append(jsonl_sink(args.log_json))
        if args.verbose:
            sinks.append(human_sink(sys.stderr))
        logger = StructuredLogger(sinks)

    if args.method in ("hgp", "hgp_feasible"):
        from repro.cache import CacheConfig, get_cache

        if args.no_cache:
            # Disable the whole process cache, not just the engine's
            # ensemble lookup — the inner builders (fiedler, gomory-hu)
            # must not populate or consult it either.
            get_cache().enabled = False
        from repro.core.resilience import ResilienceConfig, RetryPolicy
        from repro.core.config import IncrementalConfig, MultilevelConfig
        from repro.kernels import KernelConfig
        from repro.obs.profile import ProfileConfig

        cfg = SolverConfig(
            seed=args.seed,
            n_trees=args.n_trees,
            slack=args.slack,
            n_jobs=args.jobs,
            cache=CacheConfig(enabled=not args.no_cache),
            resilience=ResilienceConfig(
                retry=RetryPolicy(
                    max_attempts=1 + args.retries, base_delay=args.retry_delay
                ),
                member_timeout_s=args.member_timeout,
                allow_partial=args.allow_partial,
                min_members=args.min_members,
            ),
            multilevel=MultilevelConfig(
                enabled=args.multilevel,
                coarsen_to=args.coarsen_to,
                refine_passes=args.refine_passes,
            ),
            profile=ProfileConfig(
                enabled=args.profile is not None,
                hz=args.profile_hz,
                memory=args.profile_mem,
                path=args.profile,
            ),
            kernel=KernelConfig(backend=args.kernel_backend),
            incremental=IncrementalConfig(enabled=not args.no_incremental),
        )
        if args.multilevel:
            from repro.multilevel import solve_multilevel

            result = solve_multilevel(g, hier, d, cfg, logger=logger)
        else:
            result = run_pipeline(g, hier, d, cfg, path="batch", logger=logger)
        placement = result.placement
        if result.degraded:
            print(
                f"warning: degraded run — {len(result.failures)} ensemble "
                "member(s) lost (see the run report's failures section)",
                file=sys.stderr,
            )
        if args.profile:
            print(f"collapsed-stack profile written to {args.profile}")
        if args.report:
            report = result.report(graph=str(args.graph), method=args.method)
            Path(args.report).write_text(report.to_json() + "\n")
            print(f"run report written to {args.report}")
        if args.method == "hgp_feasible":
            from repro.baselines.local_search import enforce_capacity, refine_placement

            placement = enforce_capacity(placement, 1.0, seed=args.seed)
            placement = refine_placement(
                placement, max_violation=1.0, seed=args.seed, allow_swaps=True
            )
    else:
        if args.report:
            raise InvalidInputError(
                "--report requires an engine method (hgp or hgp_feasible)"
            )
        if args.profile:
            raise InvalidInputError(
                "--profile requires an engine method (hgp or hgp_feasible)"
            )
        from repro.baselines import placement_baselines

        registry = placement_baselines()
        if args.method not in registry:
            raise InvalidInputError(
                f"unknown method {args.method!r}; choose hgp, hgp_feasible or one of "
                f"{sorted(registry)}"
            )
        placement = registry[args.method](g, hier, d, seed=args.seed)

    if args.quiet:
        print(placement.summary())
    else:
        print(render_placement(placement))
    if args.out:
        Path(args.out).write_text(placement_to_json(placement))
        print(f"placement written to {args.out}")
    if args.dot:
        from repro.viz import hierarchy_to_dot

        Path(args.dot).write_text(hierarchy_to_dot(placement))
        print(f"hierarchy DOT written to {args.dot}")
    if args.taskset:
        from repro.hierarchy.pin_script import to_taskset_script

        Path(args.taskset).write_text(
            to_taskset_script(placement, cpus_per_leaf=args.cpus_per_leaf)
        )
        print(f"pinning script written to {args.taskset}")
    return 0


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import get_cache
    from repro.obs.metrics import get_registry

    cache = get_cache()
    if args.dir is not None:
        cache.disk_dir = Path(args.dir)

    if args.cache_command == "clear":
        memory = not args.disk_only
        disk = not args.memory_only
        dropped = cache.clear(memory=memory, disk=disk)
        print(
            f"cleared: {dropped['memory_entries']} memory entries "
            f"({_human_bytes(dropped['memory_bytes'])}), "
            f"{dropped['disk_files']} disk files"
        )
        return 0

    # stats
    info = cache.describe()
    mem = info["memory"]
    print("solver cache")
    print(f"  enabled      : {info['enabled']}")
    print(
        f"  memory tier  : {mem['entries']} entries, "
        f"{_human_bytes(mem['bytes'])} of {_human_bytes(mem['max_bytes'])} budget"
    )
    for kind, sub in mem.get("by_kind", {}).items():
        print(
            f"    {kind:<12s} {sub['entries']} entries, "
            f"{_human_bytes(sub['bytes'])}"
        )
    disk = info["disk"]
    if disk["dir"] is None:
        print("  disk tier    : disabled (set REPRO_CACHE_DIR or --dir)")
    else:
        print(
            f"  disk tier    : {disk['dir']} — {disk['files']} files, "
            f"{_human_bytes(disk['bytes'])}"
        )
        for kind, sub in disk["by_kind"].items():
            print(
                f"    {kind:<12s} {sub['files']} files, "
                f"{_human_bytes(sub['bytes'])}"
            )
    stats = info["stats"]
    print(
        f"  this process : {stats['hits']} hits, {stats['disk_hits']} disk hits, "
        f"{stats['misses']} misses, {stats['evictions']} evictions "
        f"(hit rate {stats['hit_rate']:.0%})"
    )
    for kind, sub in stats["by_kind"].items():
        print(
            f"    {kind:<12s} {sub['hits']} hits, {sub['disk_hits']} disk hits, "
            f"{sub['misses']} misses"
        )
    lines = [
        line
        for family in get_registry().families()
        if family.name.startswith("repro_cache_")
        for line in family.render()
    ]
    if lines:
        print("  registry metrics:")
        for line in lines:
            print(f"    {line}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import diff_reports, load_report, render_report, write_trace

    def _load(path: str):
        if not Path(path).exists():
            raise InvalidInputError(f"run report not found: {path}")
        return load_report(path)

    if args.report_command == "show":
        print(render_report(_load(args.report)))
        return 0
    if args.report_command == "trace":
        if args.workers is not None and args.workers < 1:
            raise InvalidInputError(f"--workers must be >= 1, got {args.workers}")
        trace_path = write_trace(
            _load(args.report), args.out, workers=args.workers
        )
        print(f"chrome trace written to {trace_path} (load in ui.perfetto.dev)")
        return 0
    if args.report_command == "flame":
        report = _load(args.report)
        profile = report.profile
        if not profile or not profile.get("collapsed"):
            raise InvalidInputError(
                f"{args.report} has no profile section — re-run the solve "
                "with --profile (needs report schema v3)"
            )
        collapsed = "\n".join(profile["collapsed"]) + "\n"
        if args.out:
            Path(args.out).write_text(collapsed)
            n = len(profile["collapsed"])
            suffix = " (truncated)" if profile.get("collapsed_truncated") else ""
            print(f"{n} collapsed stacks{suffix} written to {args.out}")
        else:
            print(collapsed, end="")
        return 0
    # diff
    diff = diff_reports(_load(args.baseline), _load(args.fresh))
    print(diff.render(args.fail_above))
    if args.fail_above is not None:
        failed = diff.regressions(args.fail_above)
        if failed:
            print(
                f"FAIL: regression above {args.fail_above:g}% in: "
                + ", ".join(failed),
                file=sys.stderr,
            )
            return 1
        print(f"OK: no regression above {args.fail_above:g}%")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the placement service until SIGTERM/SIGINT, then drain."""
    import signal

    from repro.core.resilience import ResilienceConfig, RetryPolicy
    from repro.serve import PlacementServer, ServeConfig

    solver = SolverConfig(
        seed=args.seed,
        n_trees=args.n_trees,
        n_jobs=args.jobs,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=1 + args.retries),
            allow_partial=args.allow_partial,
        ),
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        batch_queue_capacity=args.batch_queue_capacity,
        age_promote_s=args.age_promote,
        default_deadline_s=(
            None if args.default_deadline == 0 else args.default_deadline
        ),
        drain_timeout_s=args.drain_timeout,
        cache_responses=not args.no_response_cache,
        solver=solver,
    )
    server = PlacementServer(config).start()

    def _on_term(signum, frame):
        # Signal-handler safe: just flips the drain flag; serve_forever
        # notices, finishes queued + in-flight work, and returns.
        server.initiate_drain()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    if not args.quiet:
        print(f"placement service listening on {server.url}", file=sys.stderr)
        print(
            f"  POST {server.url}/v1/solve   GET {server.url}/metrics "
            f"/healthz /v1/stats",
            file=sys.stderr,
        )
        print("  SIGTERM drains gracefully (stop admitting, finish, exit)",
              file=sys.stderr)
    server.serve_forever()
    if not args.quiet:
        print("placement service drained, exiting", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Exit codes: 0 success, 1 report-diff regression, 2 invalid input or
    solver failure (:class:`repro.errors.ReproError`), 3 degraded run —
    ensemble members were lost past their retry budget and the
    resilience policy forbade completing on the survivors.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_solve(args)
    except DegradedRunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
