"""Core solvers: the Theorem-1 pipeline, k-BGP reduction, exact search."""

from repro.core.config import SolverConfig
from repro.core.solver import HGPResult, solve_hgp, solve_hgpt
from repro.core.exact import exact_hgp
from repro.core.kbgp import kbgp_hierarchy, minimum_bisection, solve_kbgp
from repro.core.portfolio import seed_portfolio, solve_hgp_portfolio

__all__ = [
    "SolverConfig",
    "HGPResult",
    "solve_hgp",
    "solve_hgpt",
    "exact_hgp",
    "kbgp_hierarchy",
    "minimum_bisection",
    "solve_kbgp",
    "seed_portfolio",
    "solve_hgp_portfolio",
]
