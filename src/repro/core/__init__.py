"""Core solvers: the staged engine, Theorem-1 pipeline, k-BGP, exact search."""

from repro.core.config import SolverConfig
from repro.core.engine import (
    Engine,
    EngineResult,
    RunContext,
    run_pipeline,
    solve_member,
)
from repro.core.solver import HGPResult, solve_hgp, solve_hgpt
from repro.core.exact import exact_hgp
from repro.core.kbgp import kbgp_hierarchy, minimum_bisection, solve_kbgp
from repro.core.portfolio import seed_portfolio, solve_hgp_portfolio
from repro.core.telemetry import MemberRecord, RunReport, Span, Telemetry

__all__ = [
    "SolverConfig",
    "Engine",
    "EngineResult",
    "RunContext",
    "run_pipeline",
    "solve_member",
    "HGPResult",
    "solve_hgp",
    "solve_hgpt",
    "exact_hgp",
    "kbgp_hierarchy",
    "minimum_bisection",
    "solve_kbgp",
    "seed_portfolio",
    "solve_hgp_portfolio",
    "MemberRecord",
    "RunReport",
    "Span",
    "Telemetry",
]
