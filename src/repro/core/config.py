"""Solver configuration for the Theorem-1 pipeline.

All knobs in one frozen dataclass so experiments can sweep them and
record exactly what ran (the config is attached to every returned
placement's ``meta``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from repro.cache import CacheConfig
from repro.core.resilience import ResilienceConfig
from repro.errors import InvalidInputError
from repro.hgpt.dp import DPConfig
from repro.kernels import KernelConfig
from repro.obs.profile import ProfileConfig

__all__ = ["IncrementalConfig", "MultilevelConfig", "SolverConfig"]


@dataclass(frozen=True)
class IncrementalConfig:
    """Knobs of the incremental warm path (subtree DP memoization).

    Attributes
    ----------
    enabled:
        Let DP solves consult the ``subtree_tables`` cache tier: every
        internal binary-tree node's state table is content-addressed by
        its subtree digest, so a re-solve after a local graph delta
        rebuilds only the dirty spine.  Warm results are bit-identical
        to cold ones by construction (a hit returns exactly what the
        rebuild would produce).  Overridable per run with
        ``repro solve --no-incremental`` or ``REPRO_INCREMENTAL=0``.
    max_dirty_frac:
        :class:`repro.streaming.online.OnlinePlacer` gate: when the
        fraction of live tasks touched by churn since the last
        reoptimize exceeds this, the reopt runs as a plain full solve
        (no memo probes) — with most subtrees dirty, per-node lookups
        are pure overhead.  The gate is a performance heuristic only;
        placements are identical either way.
    """

    enabled: bool = True
    max_dirty_frac: float = 0.25

    def __post_init__(self) -> None:
        if not (0 <= self.max_dirty_frac <= 1):
            raise InvalidInputError(
                f"max_dirty_frac must be in [0, 1], got {self.max_dirty_frac}"
            )


@dataclass(frozen=True)
class MultilevelConfig:
    """Knobs of the coarsen–solve–refine front-end (:mod:`repro.multilevel`).

    Attributes
    ----------
    enabled:
        Route :func:`repro.core.solver.solve_hgp` through
        :func:`repro.multilevel.solve_multilevel` instead of handing the
        full graph to the engine.  Off by default — small instances
        solve exactly without coarsening.
    coarsen_to:
        Stop coarsening once the graph has at most this many
        supervertices.  The default keeps the coarsest instance inside
        the DP's comfortable regime (E4 sizes).
    refine_passes:
        Hierarchy-aware FM passes per uncoarsening level
        (:func:`repro.baselines.fm.fm_refine_hierarchy`); ``0`` projects
        the coarse placement without refinement.
    max_levels:
        Hard cap on coarsening levels (a stall backstop; heavy-edge
        matching roughly halves the graph per level, so 64 covers any
        practical instance).
    stall_ratio:
        Declare a stall (and stop coarsening) when one matching round
        shrinks the graph by less than this factor.
    match_rounds:
        Proposal rounds per heavy-edge-matching call.
    """

    enabled: bool = False
    coarsen_to: int = 160
    refine_passes: int = 2
    max_levels: int = 64
    stall_ratio: float = 0.98
    match_rounds: int = 8

    def __post_init__(self) -> None:
        if self.coarsen_to < 2:
            raise InvalidInputError(
                f"coarsen_to must be >= 2, got {self.coarsen_to}"
            )
        if self.refine_passes < 0:
            raise InvalidInputError(
                f"refine_passes must be >= 0, got {self.refine_passes}"
            )
        if self.max_levels < 1:
            raise InvalidInputError(
                f"max_levels must be >= 1, got {self.max_levels}"
            )
        if not (0 < self.stall_ratio <= 1):
            raise InvalidInputError(
                f"stall_ratio must be in (0, 1], got {self.stall_ratio}"
            )
        if self.match_rounds < 1:
            raise InvalidInputError(
                f"match_rounds must be >= 1, got {self.match_rounds}"
            )


@dataclass(frozen=True)
class SolverConfig:
    """Parameters of :func:`repro.core.solver.solve_hgp`.

    Attributes
    ----------
    n_trees:
        Size of the decomposition-tree ensemble (Theorem 7's distribution;
        E6 ablates this).
    tree_methods:
        Builder names cycled round-robin (``None`` = library default mix).
    grid_mode:
        ``"auto"`` — engineering grid with budget ``max(64, 4n)`` and
        ``slack`` capacity headroom (the recommended default);
        ``"epsilon"`` — the paper-faithful grid ``unit = ε · CP(h) / n``
        (exact lower bound, pseudo-polynomial blow-up; small ``n`` only);
        ``"budget"`` — explicit ``grid_budget`` with ``slack``.
    epsilon:
        Rounding parameter of the ``"epsilon"`` grid.
    grid_budget:
        Total-quantized-demand target of the ``"budget"`` grid.
    slack:
        Capacity headroom factor of the engineering grids (E7 ablates).
    beam_width:
        Per-node state cap of the DP (``None`` = exact DP; the default
        256 keeps n ≈ 500 instances interactive while rarely moving the
        optimum — E4/E7 quantify).
    refine:
        Run hierarchy-aware greedy local search on the final placement
        (paper's practical cousin, cf. Moulitsas–Karypis refinement).
    refine_passes:
        Maximum local-search sweeps.
    n_jobs:
        Worker processes for the per-tree DP solves (the ensemble members
        are embarrassingly parallel).  1 = in-process; results are
        bit-identical either way.
    seed:
        Master RNG seed.
    cache:
        Solver-cache knobs (:class:`repro.cache.CacheConfig`): whether
        this run consults the content-addressed cache, and optional
        byte-budget / disk-dir overrides applied to the shared cache.
    dp:
        Merge-kernel knobs (:class:`repro.hgpt.dp.DPConfig`): merge tile
        size, incumbent-bound pruning, subtree parallelism.  All
        combinations return identical solution costs — these trade
        memory and wall-clock only.
    resilience:
        Fault-tolerance knobs (:class:`repro.core.resilience.ResilienceConfig`):
        per-member retries and deadlines plus graceful degradation.  The
        defaults are "off" — one attempt, no deadline, no partial runs —
        so healthy runs behave exactly as before.
    multilevel:
        Coarsen–solve–refine front-end knobs (:class:`MultilevelConfig`).
        When ``multilevel.enabled`` is set, :func:`repro.core.solver.solve_hgp`
        coarsens the graph to ``coarsen_to`` supervertices, runs this
        very engine configuration on the coarsest instance, and projects
        the placement back up with hierarchy-aware FM refinement.
    profile:
        Continuous-profiler knobs (:class:`repro.obs.profile.ProfileConfig`):
        when ``profile.enabled`` is set, the run is bracketed by the
        sampling flight-recorder + per-stage resource monitor and the
        run report (schema v3) carries the ``profile`` payload.  Off by
        default — zero overhead for unprofiled solves.
    kernel:
        Hot-path kernel backend selection
        (:class:`repro.kernels.KernelConfig`): ``"auto"`` (default)
        prefers the numba JIT backend when importable and falls back to
        the pure-python reference, which returns bit-identical results.
        The resolved backend is stamped into the run report as
        ``kernel_backend``.
    incremental:
        Incremental warm-path knobs (:class:`IncrementalConfig`):
        whether DP solves memoise per-subtree state tables in the
        ``subtree_tables`` cache tier, and the dirty-fraction threshold
        above which streaming reoptimizes fall back to plain full
        solves.  The effective mode (after the ``REPRO_INCREMENTAL``
        env override) is stamped into the run report as
        ``incremental``.
    """

    n_trees: int = 8
    tree_methods: Optional[Sequence[str]] = None
    grid_mode: str = "auto"
    epsilon: float = 0.3
    grid_budget: Optional[int] = None
    slack: float = 0.25
    beam_width: Optional[int] = 256
    refine: bool = True
    refine_passes: int = 4
    n_jobs: int = 1
    seed: Optional[int] = 0
    cache: CacheConfig = field(default_factory=CacheConfig)
    dp: DPConfig = field(default_factory=DPConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    multilevel: MultilevelConfig = field(default_factory=MultilevelConfig)
    profile: ProfileConfig = field(default_factory=ProfileConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise InvalidInputError(f"n_trees must be >= 1, got {self.n_trees}")
        if self.grid_mode not in ("auto", "epsilon", "budget"):
            raise InvalidInputError(
                f"grid_mode must be 'auto', 'epsilon' or 'budget', got {self.grid_mode!r}"
            )
        if self.epsilon <= 0:
            raise InvalidInputError(f"epsilon must be > 0, got {self.epsilon}")
        if self.slack <= 0:
            raise InvalidInputError(f"slack must be > 0, got {self.slack}")
        if self.grid_mode == "budget" and (
            self.grid_budget is None or self.grid_budget < 1
        ):
            raise InvalidInputError(
                "grid_mode='budget' requires a positive grid_budget"
            )
        if self.beam_width is not None and self.beam_width < 1:
            raise InvalidInputError(
                f"beam_width must be >= 1, got {self.beam_width}"
            )
        if self.refine_passes < 0:
            raise InvalidInputError(
                f"refine_passes must be >= 0, got {self.refine_passes}"
            )
        if self.n_jobs < 1:
            raise InvalidInputError(f"n_jobs must be >= 1, got {self.n_jobs}")

    def describe(self) -> dict:
        """Plain-dict view for placement metadata / experiment logs."""
        out = asdict(self)
        if out["tree_methods"] is not None:
            out["tree_methods"] = list(out["tree_methods"])
        return out
