"""The staged solver engine behind every solve path.

The Theorem-1 pipeline (embed → quantize → DP → repair → refine) used to
live as one monolithic function in :mod:`repro.core.solver`; this module
factors it into composable *stages* threaded through a :class:`RunContext`
that carries the instance, the configuration, a seeded RNG and a
:class:`repro.core.telemetry.Telemetry` collector.  Everything that
solves an HGP instance — batch :func:`repro.core.solver.solve_hgp`,
streaming re-optimisation, the portfolio racer, the k-BGP reduction and
guided iteration — goes through :func:`run_pipeline`, so all paths emit
the same structured run report (spans named ``trees``, ``quantize``,
``dp``, ``repair``, ``refine`` plus one :class:`MemberRecord` per
ensemble member).

Stages
------
:class:`EmbedStage`
    Build the Räcke-style decomposition-tree ensemble (span ``trees``).
:class:`QuantizeStage`
    Build the Hochbaum–Shmoys demand grid (span ``quantize``).
:class:`DPStage`
    Per member: binarize the tree and run the RHGPT signature DP with
    beam escalation (span ``dp``).
:class:`RepairStage`
    Per member: repack the relaxed solution into a valid placement and
    measure its true Eq. (1) cost (span ``repair``).
:class:`RefineStage`
    Hierarchy-aware local search on the winning placement (span
    ``refine``; entered even when refinement is disabled so every run
    report carries the full stage skeleton).

The per-member work (DP + repair) is fused into :func:`solve_member`,
which times its own phases with a :class:`repro.utils.timing.Stopwatch`
and returns a picklable :class:`MemberOutcome`.  The process-pool path
ships those outcomes back from the workers and the parent folds the
timings into its telemetry via :meth:`Stopwatch.merge` — parallel runs
report the same non-empty ``dp``/``repair`` breakdown as serial ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

import repro.kernels as kernels
from repro.cache import resolve_cache
from repro.errors import InfeasibleError, InvalidInputError, SolverError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.decomposition.racke import ensemble_cache_parts, racke_ensemble
from repro.decomposition.tree import DecompositionTree, vertex_content_digests
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, SubtreeMemo, solve_rhgpt
from repro.hgpt.quantize import DemandGrid
from repro.hgpt.repair import repair_to_placement
from repro.core.config import SolverConfig
from repro.core.telemetry import (
    MemberFailure,
    MemberRecord,
    RunReport,
    Telemetry,
    mark_active,
)
from repro.obs.logging import NULL_LOGGER, StructuredLogger, new_run_id
from repro.obs.metrics import get_registry
from repro.utils.rng import ensure_rng
from repro.utils.timing import Stopwatch

__all__ = [
    "STAGE_NAMES",
    "RunContext",
    "MemberOutcome",
    "EngineResult",
    "Stage",
    "EmbedStage",
    "QuantizeStage",
    "DPStage",
    "RepairStage",
    "RefineStage",
    "Engine",
    "solve_member",
    "run_pipeline",
    "validate_instance",
    "check_instance",
    "incremental_enabled",
]

#: Canonical stage-span names, in pipeline order.  Every engine run emits
#: all five (asserted by the telemetry tests).
STAGE_NAMES = ("trees", "quantize", "dp", "repair", "refine")


def incremental_enabled(config: SolverConfig) -> bool:
    """Whether this run's DP solves use the subtree-table memo.

    ``REPRO_INCREMENTAL`` overrides ``config.incremental.enabled`` in
    either direction (``0``/``false``/``off`` disable, anything else
    enables), mirroring ``REPRO_KERNEL_BACKEND``'s precedence.  The memo
    additionally requires the solver cache itself to be on — the
    ``subtree_tables`` tier lives inside it.
    """
    inc = getattr(config, "incremental", None)
    enabled = bool(inc.enabled) if inc is not None else False
    env = os.environ.get("REPRO_INCREMENTAL")
    if env is not None:
        enabled = env.strip().lower() not in ("0", "false", "no", "off", "")
    return enabled and config.cache.enabled


# ----------------------------------------------------------------------
# instance validation + grid construction (shared with repro.core.solver)
# ----------------------------------------------------------------------


def validate_instance(
    g: Graph, hierarchy: Hierarchy, demands: np.ndarray
) -> None:
    """Validate an HGP instance; raise on shape/feasibility violations."""
    if demands.shape != (g.n,):
        raise InvalidInputError(
            f"demands must have shape ({g.n},), got {demands.shape}"
        )
    if g.n == 0:
        raise InvalidInputError("empty graph")
    if demands.min() <= 0 or not np.all(np.isfinite(demands)):
        raise InvalidInputError("demands must be finite and > 0")
    if demands.max() > hierarchy.leaf_capacity * (1 + 1e-9):
        v = int(np.argmax(demands))
        raise InfeasibleError(
            f"vertex {v} demand {demands[v]:.4g} exceeds leaf capacity "
            f"{hierarchy.leaf_capacity:.4g}"
        )
    if demands.sum() > hierarchy.total_capacity * (1 + 1e-9):
        raise InfeasibleError(
            f"total demand {demands.sum():.4g} exceeds total capacity "
            f"{hierarchy.total_capacity:.4g}"
        )


#: Pre-resilience name of :func:`validate_instance`, kept as an alias for
#: callers written against the old engine API.
check_instance = validate_instance


def make_grid(
    hierarchy: Hierarchy, demands: np.ndarray, config: SolverConfig
) -> DemandGrid:
    """Build the demand grid selected by ``config.grid_mode``."""
    n = demands.size
    if config.grid_mode == "epsilon":
        return DemandGrid.from_epsilon(hierarchy, n, config.epsilon)
    if config.grid_mode == "budget":
        budget = max(int(config.grid_budget), n)  # type: ignore[arg-type]
        return DemandGrid.from_budget(hierarchy, demands, budget, slack=config.slack)
    # "auto": ~4 grid cells per vertex, floor of 64 total.
    budget = max(64, 4 * n)
    return DemandGrid.from_budget(hierarchy, demands, budget, slack=config.slack)


# ----------------------------------------------------------------------
# run context + member outcome
# ----------------------------------------------------------------------


@dataclass
class RunContext:
    """Everything one engine run threads through its stages.

    Attributes
    ----------
    graph, hierarchy, demands:
        The HGP instance (demands already validated, float64).
    config:
        Pipeline knobs.
    telemetry:
        Structured collector; stages open their spans on it.
    rng:
        RNG seeded from ``config.seed`` for stages that need extra
        randomness (the ensemble builder derives its own child streams
        from ``config.seed`` directly so results stay reproducible).
    grid:
        Demand grid (filled by :class:`QuantizeStage`; pre-set to reuse
        a caller's grid).
    trees:
        Decomposition-tree ensemble (filled by :class:`EmbedStage`;
        pre-set to solve on caller-supplied trees).
    outcomes:
        One :class:`MemberOutcome` per ensemble member.
    placement:
        The winning placement (set by :class:`RepairStage` selection,
        polished by :class:`RefineStage`).
    run_id:
        Correlation id stamped on every log record this run emits
        (including records produced inside pool workers) and on the run
        report's ``meta``; auto-generated when not supplied.
    logger:
        Structured logger the stages emit through (``NULL_LOGGER`` =
        silent; the CLI attaches sinks via ``--verbose``/``--log-json``).
    """

    graph: Graph
    hierarchy: Hierarchy
    demands: np.ndarray
    config: SolverConfig
    telemetry: Telemetry
    rng: np.random.Generator = None  # type: ignore[assignment]
    grid: Optional[DemandGrid] = None
    trees: Optional[List[DecompositionTree]] = None
    outcomes: List["MemberOutcome"] = field(default_factory=list)
    placement: Optional[Placement] = None
    run_id: Optional[str] = None
    logger: StructuredLogger = NULL_LOGGER
    _gen_ref: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = ensure_rng(self.config.seed)
        if self.run_id is None:
            self.run_id = new_run_id()
        if self.logger.run_id != self.run_id:
            self.logger = self.logger.bind(run_id=self.run_id)

    def generation(self, worker_pool):
        """This run's spooled generation payload, published lazily once.

        Retry waves reuse the same spool file — the inputs are immutable
        for the duration of the run, and a pool rebuilt after a crash can
        still read it.  Balanced by :meth:`release_generation`.
        """
        if self._gen_ref is None:
            self._gen_ref = worker_pool.publish_generation(
                {
                    "trees": self.trees,
                    "hierarchy": self.hierarchy,
                    "demands": self.demands,
                    "config": self.config,
                    "grid": self.grid,
                    "run_id": self.run_id,
                }
            )
        return self._gen_ref

    def release_generation(self) -> None:
        """Release the published generation payload, if any (idempotent)."""
        if self._gen_ref is not None:
            from repro.core import pool as worker_pool

            worker_pool.release_generation(self._gen_ref)
            self._gen_ref = None

    @property
    def tree_costs(self) -> List[float]:
        """Mapped Eq. (1) cost of each member, in ensemble order."""
        return [o.mapped_cost for o in self.outcomes]

    @property
    def dp_costs(self) -> List[float]:
        """DP (tree-side) cost of each member, in ensemble order."""
        return [o.dp_cost for o in self.outcomes]


@dataclass
class MemberOutcome:
    """One ensemble member's full result (picklable; workers return it).

    Attributes
    ----------
    index:
        Member index within the run's telemetry (continues across
        portfolio members / guided rounds sharing one collector).
    placement:
        The repaired placement for this member's tree.
    dp_cost:
        Tree-side DP cost (upper-bounds ``mapped_cost``, Proposition 1).
    mapped_cost:
        True Eq. (1) cost of ``placement``.
    record:
        Telemetry member record (timings + DP counters).
    timings:
        Per-phase stopwatch (``dp`` / ``repair`` sections) measured where
        the member actually ran — in-process or in a pool worker.
    log_records:
        Structured log records emitted where the member ran; pool
        workers ship them back here and the parent replays them through
        its logger, so correlation ids survive the process hop.
    """

    index: int
    placement: Placement
    dp_cost: float
    mapped_cost: float
    record: MemberRecord
    timings: Stopwatch
    log_records: List[dict] = field(default_factory=list)


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------


class Stage:
    """Base class: a named pipeline step operating on a :class:`RunContext`."""

    name = "stage"

    def run(self, ctx: RunContext) -> None:
        """Execute the stage, mutating ``ctx`` under a telemetry span."""
        raise NotImplementedError


class EmbedStage(Stage):
    """Build the decomposition-tree ensemble (the Räcke step, span ``trees``).

    Consults the content-addressed solver cache first (kind ``"trees"``,
    keyed by graph digest + ensemble params + seed): a warm run on an
    unchanged instance skips tree construction entirely.  The span's
    ``cache_hits`` / ``cache_misses`` counters record which path ran, so
    run reports (and ``repro report show``) expose cache effectiveness.
    """

    name = "trees"

    def run(self, ctx: RunContext) -> None:
        """Fill ``ctx.trees`` (skipped when the caller pre-supplied them)."""
        with ctx.telemetry.span(self.name):
            if ctx.trees is None:
                cfg = ctx.config
                cache = None
                parts = None
                if cfg.cache.enabled:
                    cache = resolve_cache(cfg.cache)
                    parts = ensemble_cache_parts(
                        ctx.graph, cfg.n_trees, cfg.tree_methods, cfg.seed
                    )
                hit = False
                trees: Optional[List[DecompositionTree]] = None
                if cache is not None and parts is not None:
                    hit, trees = cache.lookup("trees", parts)
                if hit:
                    assert trees is not None
                    ctx.trees = list(trees)
                    ctx.telemetry.counter("cache_hits", 1)
                    ctx.logger.info(
                        "trees_cache_hit", n_trees=len(ctx.trees)
                    )
                else:
                    ctx.trees = racke_ensemble(
                        ctx.graph,
                        n_trees=cfg.n_trees,
                        methods=cfg.tree_methods,
                        seed=cfg.seed,
                        use_cache=False,
                    )
                    if cache is not None and parts is not None:
                        cache.store("trees", parts, list(ctx.trees))
                        ctx.telemetry.counter("cache_misses", 1)
            ctx.telemetry.counter("n_trees", len(ctx.trees))


class QuantizeStage(Stage):
    """Build the Hochbaum–Shmoys demand grid (span ``quantize``)."""

    name = "quantize"

    def run(self, ctx: RunContext) -> None:
        """Fill ``ctx.grid`` (skipped when the caller pre-supplied one)."""
        with ctx.telemetry.span(self.name):
            if ctx.grid is None:
                ctx.grid = make_grid(ctx.hierarchy, ctx.demands, ctx.config)
            ctx.telemetry.counter(
                "grid_cells", float(ctx.grid.quantize(ctx.demands).sum())
            )


class DPStage(Stage):
    """Per-member signature DP with beam escalation (span ``dp``)."""

    name = "dp"

    def run_member(
        self,
        tree: DecompositionTree,
        hierarchy: Hierarchy,
        demands: np.ndarray,
        config: SolverConfig,
        grid: DemandGrid,
        stats: Optional[DPStats] = None,
    ):
        """Binarize one tree and solve the RHGPT DP on it.

        Beam pruning is a heuristic: on tight instances it can discard
        every state an ancestor's capacity check needs.  Escalate (4x,
        then exact) before giving up — the exact DP is always complete
        once the grid admitted the instance.

        Returns ``(solution, escalations)`` where ``escalations`` counts
        how many beam widenings were needed before success.

        When the run is incremental (:func:`incremental_enabled`), each
        attempt carries a :class:`repro.hgpt.dp.SubtreeMemo` so clean
        subtrees load their DP tables from the ``subtree_tables`` cache
        tier and only the dirty spine is recomputed.  The memo changes
        *when* tables are built, never their contents, so solutions stay
        bit-identical to the cold path.
        """
        q = grid.quantize(demands)
        bt = binarize(tree, q)
        caps = [grid.caps[j] for j in range(1, hierarchy.h + 1)]
        norm_h, _offset = hierarchy.normalized()
        deltas = [0.0] + [
            norm_h.cm[k - 1] - norm_h.cm[k] for k in range(1, hierarchy.h + 1)
        ]
        digests: Optional[List[bytes]] = None
        if incremental_enabled(config):
            digests = bt.subtree_digests(vertex_content_digests(tree.graph))
        beams: List[Optional[int]] = [config.beam_width]
        if config.beam_width is not None:
            beams.extend([config.beam_width * 4, None])
        last_error: Optional[SolverError] = None
        for escalations, beam in enumerate(beams):
            memo = None
            if digests is not None:
                # One memo per attempt: the beam width is part of the
                # instance token (escalated attempts see different
                # tables).  The hierarchy digest pins degrees/cm/leaf
                # capacity beyond what caps/deltas already encode.
                memo = SubtreeMemo(
                    digests,
                    caps,
                    deltas,
                    beam,
                    dp_config=config.dp,
                    extra_parts=(hierarchy.digest(),),
                )
            try:
                solution = solve_rhgpt(
                    bt,
                    caps,
                    deltas,
                    beam_width=beam,
                    stats=stats,
                    dp_config=config.dp,
                    memo=memo,
                )
                return solution, escalations
            except SolverError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error


class RepairStage(Stage):
    """Per-member Theorem-5 repair into a valid placement (span ``repair``)."""

    name = "repair"

    def run_member(
        self,
        tree: DecompositionTree,
        hierarchy: Hierarchy,
        demands: np.ndarray,
        solution,
        grid: DemandGrid,
    ) -> Placement:
        """Repack one relaxed tree solution into a hierarchy placement."""
        placement, _report = repair_to_placement(
            tree.graph, hierarchy, demands, solution, grid
        )
        return placement


class RefineStage(Stage):
    """Local-search polish of the winning placement (span ``refine``).

    The span is entered even when refinement is disabled (with a
    ``passes`` counter of 0) so every run report carries the complete
    five-stage skeleton.
    """

    name = "refine"

    def run(self, ctx: RunContext) -> None:
        """Refine ``ctx.placement`` in place when the config asks for it."""
        with ctx.telemetry.span(self.name):
            if not (ctx.config.refine and ctx.config.refine_passes > 0):
                ctx.telemetry.counter("passes", 0)
                return
            from repro.baselines.local_search import refine_placement

            assert ctx.placement is not None
            # Refinement may shuffle load but never worsen the balance the
            # repair achieved (and always stays within the Theorem-1 bound).
            budget = max(1.0, ctx.placement.max_violation())
            ctx.placement = refine_placement(
                ctx.placement,
                max_passes=ctx.config.refine_passes,
                max_violation=budget,
                allow_swaps=True,
            )
            ctx.telemetry.counter("passes", ctx.config.refine_passes)


# ----------------------------------------------------------------------
# per-member solve (shared by the serial path and the pool workers)
# ----------------------------------------------------------------------

_DP_STAGE = DPStage()
_REPAIR_STAGE = RepairStage()


def solve_member(
    tree: DecompositionTree,
    hierarchy: Hierarchy,
    demands: np.ndarray,
    config: SolverConfig,
    grid: DemandGrid,
    index: int = 0,
    stats: Optional[DPStats] = None,
    run_id: Optional[str] = None,
    attempt: int = 1,
) -> MemberOutcome:
    """Solve HGP on one decomposition tree: DP + repair, self-timed.

    This is the unit of work the engine fans out — in-process for
    ``n_jobs == 1``, in pool workers otherwise.  The returned
    :class:`MemberOutcome` is picklable and carries its own stopwatch
    and log records (stamped with ``run_id`` and the worker's pid), so
    the parent can merge worker timings into its telemetry and replay
    worker logs under the run's correlation id.  ``attempt`` is which
    resilience-layer attempt this solve is (stamped into the member
    record as ``attempts``); the solve itself is attempt-independent, so
    retried members produce bit-identical placements and costs.
    """
    own_stats = DPStats()
    sw = Stopwatch()
    kcfg = getattr(config, "kernel", None)
    # mark_active gives the sampling profiler span attribution for these
    # phases; the Stopwatch (picklable, worker-side) stays the timing
    # source of truth.  The kernel scope makes pool workers (which see
    # only this function) dispatch on the run's configured backend.
    with kernels.use_backend(kcfg.backend if kcfg is not None else "auto"):
        with sw.section("dp"), mark_active("dp"):
            solution, escalations = _DP_STAGE.run_member(
                tree, hierarchy, demands, config, grid, stats=own_stats
            )
        with sw.section("repair"), mark_active("repair"):
            placement = _REPAIR_STAGE.run_member(
                tree, hierarchy, demands, solution, grid
            )
            mapped = placement.cost()
    if stats is not None:
        stats.update(own_stats)
    record = MemberRecord(
        index=index,
        method=getattr(tree, "method", None),
        dp_cost=float(solution.cost),
        mapped_cost=float(mapped),
        dp_seconds=sw.total("dp"),
        repair_seconds=sw.total("repair"),
        beam_escalations=escalations,
        attempts=attempt,
        dp_nodes=own_stats.nodes,
        dp_states_total=own_stats.states_total,
        dp_states_max=own_stats.states_max,
        dp_merges=own_stats.merges,
        dp_tiles=own_stats.tiles,
        dp_bound_pruned=own_stats.bound_pruned,
        dp_table_peak_bytes=own_stats.table_peak_bytes,
        dp_memo_hits=own_stats.memo_hits,
        dp_memo_misses=own_stats.memo_misses,
    )
    log_records: List[dict] = []
    if run_id is not None:
        log_records.append(
            {
                "ts": time.time(),
                "level": "debug",
                "event": "member_solved",
                "run_id": run_id,
                "pid": os.getpid(),
                "member": index,
                "method": record.method,
                "dp_cost": record.dp_cost,
                "mapped_cost": record.mapped_cost,
                "dp_seconds": record.dp_seconds,
                "repair_seconds": record.repair_seconds,
                "beam_escalations": escalations,
            }
        )
    return MemberOutcome(
        index=index,
        placement=placement,
        dp_cost=float(solution.cost),
        mapped_cost=float(mapped),
        record=record,
        timings=sw,
        log_records=log_records,
    )


# ----------------------------------------------------------------------
# engine + result
# ----------------------------------------------------------------------


@dataclass
class EngineResult:
    """What one engine run produced: placement, diagnostics, telemetry.

    ``failures`` is non-empty (and ``degraded`` True) only when the
    resilience policy allowed the run to complete on a partial ensemble;
    see :mod:`repro.core.resilience`.
    """

    placement: Placement
    tree_costs: List[float]
    dp_costs: List[float]
    grid: DemandGrid
    telemetry: Telemetry
    config: SolverConfig
    run_id: Optional[str] = None
    failures: List[MemberFailure] = field(default_factory=list)
    kernel_backend: Optional[str] = None
    incremental: Optional[bool] = None

    @property
    def degraded(self) -> bool:
        """Whether this run lost ensemble members past their retry budget."""
        return bool(self.failures)

    @property
    def cost(self) -> float:
        """True Eq. (1) cost of the winning placement."""
        return self.placement.cost()

    def stopwatch(self) -> Stopwatch:
        """Legacy flat phase-timing view (the telemetry root's children)."""
        return self.telemetry.to_stopwatch()

    def report(self, **meta: object) -> RunReport:
        """Freeze the run into a JSON-serialisable :class:`RunReport`.

        The run's correlation id is stamped into ``meta["run_id"]`` so
        reports, traces and JSON-lines logs cross-reference, and the
        resolved kernel backend into ``meta["kernel_backend"]``
        (schema-compatible additive field).
        """
        if self.run_id is not None:
            meta.setdefault("run_id", self.run_id)
        if self.kernel_backend is not None:
            meta.setdefault("kernel_backend", self.kernel_backend)
        if self.incremental is not None:
            meta.setdefault("incremental", self.incremental)
        return self.telemetry.report(
            config=self.config.describe(), cost=self.cost, **meta
        )


class Engine:
    """The composable staged pipeline.

    The default stage set reproduces the Theorem-1 pipeline exactly;
    callers may substitute stages (e.g. a custom embedder) as long as
    they fill the same :class:`RunContext` fields.
    """

    def __init__(
        self,
        embed: Optional[EmbedStage] = None,
        quantize: Optional[QuantizeStage] = None,
        dp: Optional[DPStage] = None,
        repair: Optional[RepairStage] = None,
        refine: Optional[RefineStage] = None,
    ):
        self.embed = embed or EmbedStage()
        self.quantize = quantize or QuantizeStage()
        self.dp = dp or DPStage()
        self.repair = repair or RepairStage()
        self.refine = refine or RefineStage()

    def run(self, ctx: RunContext) -> EngineResult:
        """Execute embed → quantize → (dp + repair per member) → refine.

        The ensemble members are independent; with ``config.n_jobs > 1``
        their DP+repair work fans out to a process pool.  Results are
        identical to the serial path (each member solve is deterministic
        given its tree and grid, and members are compared in ensemble
        order either way).
        """
        tel = ctx.telemetry
        started = time.perf_counter()
        ctx.logger.info(
            "run_start",
            path=tel.path,
            n=ctx.graph.n,
            m=ctx.graph.m,
            n_trees=ctx.config.n_trees,
            n_jobs=ctx.config.n_jobs,
            seed=ctx.config.seed,
        )
        self.embed.run(ctx)
        self.quantize.run(ctx)
        assert ctx.trees is not None and ctx.grid is not None

        base = len(tel.members)
        # All fan-out — pool submission, per-member deadlines, retries,
        # crash recovery and graceful degradation — lives in the
        # resilience runner.  With the default (off) policy it reduces to
        # the plain pool/serial fan-out: one attempt, failures propagate.
        from repro.core.resilience import run_members

        outcomes, failures, _restarts = run_members(ctx, base)

        # Fold the members' self-measured phase timings (worker-side for
        # the pool path) into this run's span tree — this is the fix for
        # the old parallel path reporting empty dp/repair sections.
        metrics = get_registry()
        process_label = bool(os.environ.get("REPRO_METRICS_PROCESS_LABEL"))
        merged = Stopwatch()
        escalations = 0
        worker_merges = 0
        for outcome in outcomes:
            merged.merge(outcome.timings)
            # Pool workers bracket their solve with registry snapshots
            # and ship the per-job delta home on the record; fold it in
            # (counters sum, gauges last-write, histograms bucket-wise)
            # so repro_dp_*/repro_flow_* totals are correct for parallel
            # runs.  Serial members incremented this registry directly
            # and carry no delta.  The delta is nulled afterwards so run
            # reports stay lean.
            delta = outcome.record.metrics_delta
            if delta:
                proc = delta.get("pid") if process_label else None
                metrics.merge_snapshot(
                    delta, process=None if proc is None else str(proc)
                )
                worker_merges += 1
                outcome.record.metrics_delta = None
            tel.record_member(outcome.record)
            escalations += outcome.record.beam_escalations
            if ctx.logger.enabled:
                for record in outcome.log_records:
                    ctx.logger.emit(record)
        if worker_merges:
            metrics.counter(
                "repro_metrics_worker_merges_total",
                "Worker metric deltas merged into the parent registry",
            ).inc(worker_merges)
        for name in (self.dp.name, self.repair.name):
            tel.add_seconds(name, merged.total(name), merged.counts.get(name, 0))
        for failure in failures:
            tel.record_failure(failure)
        ctx.outcomes.extend(outcomes)
        # Parent-side metric fold: member counters travelled back with the
        # records, so these totals are accurate even for pool runs.
        if escalations:
            metrics.counter(
                "repro_dp_beam_escalations_total",
                "Beam widenings needed before the DP found a feasible state",
            ).inc(escalations)

        best: Optional[MemberOutcome] = None
        for outcome in outcomes:
            if best is None or outcome.mapped_cost < best.mapped_cost:
                best = outcome
        assert best is not None
        ctx.placement = best.placement

        self.refine.run(ctx)
        assert ctx.placement is not None
        ctx.placement = ctx.placement.with_meta(
            solver="hgp", config=ctx.config.describe()
        )
        metrics.counter(
            "repro_engine_runs_total",
            "Completed engine runs by solve path",
            labelnames=("path",),
        ).inc(path=tel.path)
        ctx.logger.info(
            "run_done",
            path=tel.path,
            cost=ctx.placement.cost(),
            seconds=time.perf_counter() - started,
            members=len(outcomes),
            failed_members=len(failures),
            beam_escalations=escalations,
        )
        return EngineResult(
            placement=ctx.placement,
            tree_costs=[o.mapped_cost for o in outcomes],
            dp_costs=[o.dp_cost for o in outcomes],
            grid=ctx.grid,
            telemetry=tel,
            config=ctx.config,
            run_id=ctx.run_id,
            failures=list(failures),
        )


def run_pipeline(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
    *,
    telemetry: Optional[Telemetry] = None,
    path: str = "batch",
    grid: Optional[DemandGrid] = None,
    trees: Optional[List[DecompositionTree]] = None,
    engine: Optional[Engine] = None,
    run_id: Optional[str] = None,
    logger: Optional[StructuredLogger] = None,
) -> EngineResult:
    """Run the staged engine on one instance and return its result.

    This is the single entry point every solve path uses.  Callers that
    want a shared collector (portfolio members, streaming epochs) pass
    their own ``telemetry``; otherwise a fresh one rooted at ``path`` is
    created and attached to the result.

    Parameters
    ----------
    g, hierarchy, demands:
        The instance (validated here).
    config:
        Pipeline knobs.
    telemetry:
        Collector to thread through the stages (``None`` = new
        ``Telemetry(path)``).
    path:
        Root-span label for a fresh collector (``batch``, ``streaming``,
        ``portfolio``, ``kbgp``, ``guided``, …).
    grid, trees:
        Pre-built grid / ensemble to reuse (both are rebuilt from the
        config when ``None``).
    engine:
        Stage set to run (``None`` = the default five stages).
    run_id:
        Correlation id for this run's logs/report (``None`` = fresh id).
    logger:
        Structured logger for run events (``None`` = silent).

    Notes
    -----
    When the ``REPRO_RUN_REPORT_DIR`` environment variable is set, the
    run's JSON report is also written there as
    ``<path>_<run_id>.json`` — the benchmark harness uses this to
    persist a report for every engine run it triggers.
    """
    d = np.asarray(demands, dtype=np.float64)
    validate_instance(g, hierarchy, d)
    ctx = RunContext(
        graph=g,
        hierarchy=hierarchy,
        demands=d,
        config=config,
        telemetry=telemetry if telemetry is not None else Telemetry(path),
        grid=grid,
        trees=trees,
        run_id=run_id,
        logger=logger if logger is not None else NULL_LOGGER,
    )
    prof_cfg = getattr(config, "profile", None)
    session = None
    if prof_cfg is not None and prof_cfg.enabled:
        from repro.obs.profile import ProfileSession

        session = ProfileSession(prof_cfg, ctx.telemetry).start()
    kcfg = getattr(config, "kernel", None)
    try:
        with kernels.use_backend(
            kcfg.backend if kcfg is not None else "auto"
        ) as kernel_backend:
            # Span attr: which backend served this run (report meta gets
            # the same name via EngineResult.kernel_backend).
            ctx.telemetry.counter(f"kernel_backend_{kernel_backend.name}", 1)
            result = (engine or Engine()).run(ctx)
        result.kernel_backend = kernel_backend.name
        result.incremental = incremental_enabled(config)
    finally:
        if session is not None:
            # Stamp the profile before the report below is written, so
            # persisted reports carry it (RunReport schema v3).
            ctx.telemetry.profile = session.finish()
    report_dir = os.environ.get("REPRO_RUN_REPORT_DIR")
    if report_dir:
        out = Path(report_dir)
        out.mkdir(parents=True, exist_ok=True)
        target = out / f"{ctx.telemetry.path}_{ctx.run_id}.json"
        target.write_text(result.report().to_json() + "\n")
    return result
