"""Exact HGP by branch-and-bound (ground truth for small instances).

The bicriteria guarantees of Theorem 1 are stated against the *optimal
solution with no capacity violation*; this module computes that optimum
exactly for small instances so experiments E1/E3 can report true
approximation ratios.

Search design
-------------
* Vertices are assigned in descending weighted-degree order (high-impact
  decisions first, so pruning bites early).
* **Sibling-symmetry canonicalisation**: the hierarchy is regular, so
  permuting the children of any H-node preserves cost and feasibility.
  We only explore assignments where, at every internal node, child
  subtrees are first-touched in index order — each fresh subtree must
  have all its earlier siblings already non-empty.  This cuts the
  branching factor from ``k`` to the number of used leaves plus one
  fresh leaf per level, shrinking the tree by up to ``Π_j DEG(j)!``.
* **Cost bound**: partial cost is monotone (all multipliers are
  non-negative), plus an admissible lookahead — every unassigned edge
  with one placed endpoint must pay at least ``cm(h)·w``.
* **Capacity pruning** at every hierarchy level.

Complexity is exponential; the public API refuses instances beyond a
safety limit rather than hanging.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InfeasibleError, InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement

__all__ = ["exact_hgp"]


def exact_hgp(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    violation: float = 1.0,
    max_nodes: int = 20_000_000,
    size_limit: int = 14,
) -> Placement:
    """Optimal placement with load at most ``violation × capacity``
    at every hierarchy level.

    Parameters
    ----------
    g, hierarchy, demands:
        The HGP instance.
    violation:
        Allowed load/capacity ratio (1.0 = strictly feasible optimum —
        the baseline OPT of the paper's bicriteria definition).
    max_nodes:
        Search-node budget; exceeding it raises rather than silently
        returning a suboptimal answer.
    size_limit:
        Refuse instances with more vertices than this.

    Returns
    -------
    Placement
        A provably optimal placement.

    Raises
    ------
    InfeasibleError
        If no assignment satisfies the capacity constraints.
    InvalidInputError
        If the instance exceeds the safety limits.
    """
    d = np.asarray(demands, dtype=np.float64)
    n = g.n
    if n > size_limit:
        raise InvalidInputError(
            f"exact solver limited to {size_limit} vertices, got {n}"
        )
    if d.shape != (n,):
        raise InvalidInputError(f"demands must have shape ({n},)")
    h = hierarchy.h
    k = hierarchy.k
    cm = np.asarray(hierarchy.cm)
    budgets = [violation * hierarchy.capacity(j) + 1e-12 for j in range(h + 1)]

    order = np.argsort(g.weighted_degrees)[::-1]
    # adjacency (to earlier-ordered vertices only, for incremental cost)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    adj_prev: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    future_w = np.zeros(n)  # weight to later-ordered neighbours
    for u, v, w in g.iter_edges():
        if pos[u] < pos[v]:
            adj_prev[v].append((u, w))
            future_w[u] += w
        else:
            adj_prev[u].append((v, w))
            future_w[v] += w
    cm_floor = float(cm[-1])

    # per-level loads, indexed [level][node]
    loads = [np.zeros(hierarchy.count(j)) for j in range(h + 1)]
    assignment = np.full(n, -1, dtype=np.int64)
    best_cost = float("inf")
    best_assignment: Optional[np.ndarray] = None
    nodes_visited = 0

    # For symmetry: per (level, node), whether the subtree is non-empty.
    used = [np.zeros(hierarchy.count(j), dtype=bool) for j in range(h + 1)]

    def canonical_leaves() -> list[int]:
        """Leaves admissible under the first-touch sibling order."""
        result = []
        for leaf in range(k):
            ok = True
            for j in range(1, h + 1):
                node = int(hierarchy.ancestor(leaf, j))
                if used[j][node]:
                    continue
                # Fresh subtree: every earlier sibling must be used.
                parent = node // hierarchy.degrees[j - 1]
                first_child = parent * hierarchy.degrees[j - 1]
                for sib in range(first_child, node):
                    if not used[j][sib]:
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                result.append(leaf)
        return result

    def search(idx: int, cost: float) -> None:
        nonlocal best_cost, best_assignment, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            raise InvalidInputError(
                f"exact search exceeded {max_nodes} nodes — instance too hard"
            )
        if idx == n:
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment.copy()
            return
        v = int(order[idx])
        dv = float(d[v])
        for leaf in canonical_leaves():
            # Capacity at all levels.
            feasible = True
            for j in range(1, h + 1):
                node = int(hierarchy.ancestor(leaf, j))
                if loads[j][node] + dv > budgets[j]:
                    feasible = False
                    break
            if not feasible:
                continue
            inc = 0.0
            for u, w in adj_prev[v]:
                inc += w * float(cm[hierarchy.lca_level(leaf, int(assignment[u]))])
            # Admissible lookahead: edges to future vertices pay >= cm(h).
            new_cost = cost + inc
            if new_cost + cm_floor * float(future_w[v]) >= best_cost:
                continue
            # Apply.
            touched = []
            for j in range(1, h + 1):
                node = int(hierarchy.ancestor(leaf, j))
                loads[j][node] += dv
                if not used[j][node]:
                    used[j][node] = True
                    touched.append((j, node))
            assignment[v] = leaf
            search(idx + 1, new_cost)
            assignment[v] = -1
            for j in range(1, h + 1):
                loads[j][int(hierarchy.ancestor(leaf, j))] -= dv
            for j, node in touched:
                used[j][node] = False

    search(0, 0.0)
    if best_assignment is None:
        raise InfeasibleError(
            "no feasible assignment exists within the capacity budget"
        )
    return Placement(
        g,
        hierarchy,
        d,
        best_assignment,
        meta={"solver": "exact", "nodes_visited": nodes_visited},
    )
