"""k-Balanced Graph Partitioning as the ``h = 1`` special case of HGP.

The paper's Section 1: k-BGP *is* HGP with a height-1 hierarchy,
``cm(0) = 1``, ``cm(1) = 0`` and uniform demands.  This module provides
that reduction both ways — it is used by experiment E8 to check that the
general machinery degrades gracefully to the classical problem, and as a
convenience API for users who just want balanced partitioning.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.core.config import SolverConfig
from repro.core.telemetry import Telemetry
from repro.utils.rng import SeedLike

__all__ = ["kbgp_hierarchy", "solve_kbgp", "minimum_bisection"]


def kbgp_hierarchy(k: int, capacity: float = 1.0) -> Hierarchy:
    """The height-1 hierarchy encoding k-BGP: ``cm = (1, 0)``, ``k`` leaves."""
    if k < 1:
        raise InvalidInputError(f"k must be >= 1, got {k}")
    return Hierarchy([k], [1.0, 0.0], leaf_capacity=capacity)


def solve_kbgp(
    g: Graph,
    k: int,
    demands: Optional[Sequence[float]] = None,
    config: SolverConfig = SolverConfig(),
    telemetry: Optional[Telemetry] = None,
) -> Placement:
    """Solve k-BGP through the full HGP pipeline (the staged engine).

    With default demands (``n/k`` per vertex scaled to unit leaves, the
    paper's reduction), the returned placement's :meth:`cost` is exactly
    the weight of the edges cut by the partition, and its
    :meth:`max_violation` the balance violation.  Pass a ``telemetry``
    collector to capture the run's structured report; a fresh
    ``Telemetry("kbgp")`` is used otherwise.
    """
    if demands is None:
        d = np.full(g.n, k / max(g.n, 1))
        d = np.minimum(d, 1.0)
    else:
        d = np.asarray(demands, dtype=np.float64)
    hier = kbgp_hierarchy(k)
    from repro.core.engine import run_pipeline

    tel = telemetry if telemetry is not None else Telemetry("kbgp")
    tel.counter("k", float(k))
    return run_pipeline(g, hier, d, config, telemetry=tel).placement


def minimum_bisection(
    g: Graph, tol: float = 0.0, seed: SeedLike = None
) -> tuple[float, np.ndarray]:
    """Heuristic minimum bisection via the multilevel engine.

    ``tol = 0`` asks for an exactly balanced split (matched via KL);
    positive values relax the balance as in the (α, β) bicriteria
    results the paper surveys.  Returns (cut weight, side mask).
    """
    from repro.baselines.multilevel import bisect

    mask = bisect(g, target_fraction=0.5, tol=max(tol, 1.0 / max(g.n, 1)), seed=seed)
    return g.cut_weight(mask), mask
