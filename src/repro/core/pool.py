"""Persistent worker pool with per-generation shared payloads.

The old parallel path created a fresh ``ProcessPoolExecutor`` inside
every ``Engine.run`` and shipped the *same* hierarchy/demands/config/grid
in every member-job tuple — so an 8-member run pickled the shared
instance 8 times and paid full worker start-up on every solve.  This
module keeps one process pool alive for the lifetime of the process and
moves the shared state out of the job tuples:

* :func:`get_pool` returns the long-lived executor, growing it when a
  run asks for more workers than it currently has (a larger pool is
  reused as-is — ``Executor.map`` preserves submission order, so results
  are identical regardless of how many workers actually serve the jobs).
* :func:`publish_generation` pickles one *generation* — the dict of
  everything a run's member jobs share (trees, hierarchy, demands,
  config, grid, run id) — to a spool file **once**.  Pickle's internal
  memoisation dedups the graph referenced by every tree, so the file is
  roughly the size of one instance, not ``n_trees`` of them.
* Job tuples shrink to ``(ref, member, index)``; :func:`member_job`
  loads the generation on the worker (memoised per ``gen_id``, so each
  worker unpickles a generation at most once) and runs
  :func:`repro.core.engine.solve_member` exactly as before.

The spool file lives only for the duration of one ``Executor.map`` call;
the parent unlinks it as soon as all outcomes are back.  Workers keep a
small LRU of recent generations so the streaming placer's back-to-back
re-optimisations don't re-read identical payloads.

Determinism: none of this changes *what* runs — only how the inputs
travel.  ``solve_member`` receives bit-identical arguments either way.
"""

from __future__ import annotations

import atexit
import concurrent.futures as cf
import multiprocessing as mp
import os
import pickle
import tempfile
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import get_registry, snapshot_delta

__all__ = [
    "GenerationRef",
    "get_pool",
    "pool_info",
    "shutdown_pool",
    "restart_pool",
    "register_shutdown_hook",
    "unregister_shutdown_hook",
    "publish_generation",
    "release_generation",
    "live_generations",
    "member_job",
    "dp_subtree_job",
    "in_worker",
]


def _maybe_inject(site: str, **context) -> None:
    """Env-gated chaos hook (no-op unless ``REPRO_FAULT_SPEC`` is set)."""
    if not os.environ.get("REPRO_FAULT_SPEC"):
        return
    from repro.testing.faults import maybe_inject

    maybe_inject(site, **context)

_LOCK = threading.RLock()
_POOL: Optional[cf.ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_CREATES = 0  # how many executors this process has ever built


def _update_live_workers() -> int:
    """Refresh the ``repro_pool_live_workers`` gauge (best effort).

    The executor spawns workers lazily, so this samples the *actual*
    process table (``_processes``) rather than the configured size —
    0 right after creation, the real count once jobs have run, and 0
    again after shutdown.  Callers hold ``_LOCK``.
    """
    procs = getattr(_POOL, "_processes", None) if _POOL is not None else None
    live = sum(1 for p in (procs or {}).values() if p.is_alive())
    get_registry().gauge(
        "repro_pool_live_workers",
        "Worker processes currently alive in the persistent pool",
    ).set(live)
    return live


@dataclass(frozen=True)
class GenerationRef:
    """Cheap, picklable handle to one published generation payload."""

    gen_id: str
    path: str
    nbytes: int


def _mp_context():
    """Fork where available (cheap workers, shared baked-in state)."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()  # pragma: no cover - non-fork platforms


def get_pool(workers: int) -> cf.ProcessPoolExecutor:
    """The persistent executor, with at least ``workers`` workers.

    A pool at least as large as requested is reused; a larger request
    replaces it (the old one is drained first).  The pool survives
    across ``Engine.run`` calls and is torn down at interpreter exit.
    """
    global _POOL, _POOL_WORKERS, _POOL_CREATES
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with _LOCK:
        if _POOL is not None and _POOL_WORKERS >= workers:
            return _POOL
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = cf.ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        )
        _POOL_WORKERS = workers
        _POOL_CREATES += 1
        reg = get_registry()
        reg.counter(
            "repro_pool_creates_total", "Process-pool executors created"
        ).inc()
        reg.gauge("repro_pool_workers", "Workers in the persistent pool").set(
            _POOL_WORKERS
        )
        _update_live_workers()
        return _POOL


def pool_info() -> Dict[str, int]:
    """Introspection for tests / ``repro cache stats``: size + create count."""
    with _LOCK:
        return {
            "workers": _POOL_WORKERS,
            "creates": _POOL_CREATES,
            "alive": int(_POOL is not None),
            "live_workers": _update_live_workers(),
        }


def shutdown_pool() -> None:
    """Drain and drop the persistent pool (no-op when none exists)."""
    global _POOL, _POOL_WORKERS
    with _LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None
            _POOL_WORKERS = 0
            _update_live_workers()


def restart_pool() -> None:
    """Forcibly tear the pool down — killing its workers — and rebuild it.

    The resilience layer calls this when the pool is unusable: a worker
    crashed (``BrokenProcessPool`` poisons every in-flight future) or a
    member deadline expired with the worker still running (a hung worker
    cannot be cancelled, only terminated).  Unlike :func:`shutdown_pool`
    this never waits on the workers; it terminates them, drops the
    executor, and eagerly builds a replacement of the same size so the
    retry attempt that follows finds a healthy pool.  Counted by the
    ``repro_pool_restarts_total`` metric.
    """
    global _POOL, _POOL_WORKERS
    with _LOCK:
        if _POOL is None:
            return
        workers = _POOL_WORKERS
        for proc in list((getattr(_POOL, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - racing process death
                pass
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executors may throw
            pass
        _POOL = None
        _POOL_WORKERS = 0
        get_registry().counter(
            "repro_pool_restarts_total",
            "Forced pool teardown/rebuilds after a worker crash or deadline",
        ).inc()
        _update_live_workers()
    get_pool(workers)


#: Named callbacks run *before* the pool/spool teardown, newest first.
#: Long-lived front-ends that dispatch onto the pool — the metrics
#: exporter's HTTP threads, the ``repro.serve`` loop — register here so
#: interpreter exit tears the stack down in dependency order: stop
#: accepting/scraping, drain in-flight solves, *then* shut the pool and
#: sweep the spool files.  Without this ordering a serve dispatcher can
#: submit to an executor whose atexit shutdown already ran, or a worker
#: can be mid-read on a generation payload the sweep just unlinked.
_SHUTDOWN_HOOKS: "OrderedDict[str, Any]" = OrderedDict()


def register_shutdown_hook(name: str, hook) -> None:
    """Run ``hook()`` before the atexit pool shutdown and spool sweep.

    Re-registering a name replaces the previous hook.  Hooks run in
    LIFO order (newest first) and must be idempotent — a server that is
    drained explicitly and then again at exit must tolerate both.
    """
    with _LOCK:
        _SHUTDOWN_HOOKS.pop(name, None)
        _SHUTDOWN_HOOKS[name] = hook


def unregister_shutdown_hook(name: str) -> None:
    """Remove a registered hook (no-op when absent)."""
    with _LOCK:
        _SHUTDOWN_HOOKS.pop(name, None)


def _cleanup_at_exit() -> None:
    """Interpreter-exit sweep, in dependency order.

    Registered shutdown hooks (exporter threads, the serve loop) run
    first — they are the layers that still *submit* to the pool.  Then
    the pool goes down *before* the spool files: a worker mid-read on
    a generation payload while the parent unlinks it would either crash
    the worker or leave the unlink racing the worker's LRU cleanup.
    Interrupted runs (KeyboardInterrupt mid-fan-out) can leave published
    generations behind; whatever is still registered is released here,
    tolerating files that were already removed.
    """
    with _LOCK:
        hooks = list(_SHUTDOWN_HOOKS.items())
        _SHUTDOWN_HOOKS.clear()
    for _name, hook in reversed(hooks):
        try:
            hook()
        except Exception:  # pragma: no cover - exit path must never raise
            pass
    try:
        shutdown_pool()
    finally:
        for ref in list(_LIVE_GENS.values()):
            release_generation(ref)


atexit.register(_cleanup_at_exit)


# ----------------------------------------------------------------------
# generation payloads
# ----------------------------------------------------------------------

#: Published-but-unreleased generations (gen_id -> ref).  The atexit
#: sweep releases whatever an interrupted run left here, *after* the
#: pool is down — see :func:`_cleanup_at_exit`.
_LIVE_GENS: Dict[str, GenerationRef] = {}


def publish_generation(payload: Dict[str, Any]) -> GenerationRef:
    """Spool one generation's shared payload to disk, once.

    The payload dict is pickled to a private temp file; the returned
    :class:`GenerationRef` is what travels inside each (tiny) job tuple.
    Callers must :func:`release_generation` when the generation's jobs
    have completed; generations still live at interpreter exit are
    swept by the atexit cleanup (pool first, then spool files).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    fd, path = tempfile.mkstemp(prefix="repro-gen-", suffix=".pkl")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
    except BaseException:
        try:
            os.unlink(path)
        except OSError:
            pass
        raise
    get_registry().counter(
        "repro_pool_generations_total",
        "Generation payloads published to the worker pool",
    ).inc()
    ref = GenerationRef(gen_id=uuid.uuid4().hex, path=path, nbytes=len(blob))
    with _LOCK:
        _LIVE_GENS[ref.gen_id] = ref
    return ref


def release_generation(ref: GenerationRef) -> None:
    """Delete a published generation's spool file (idempotent).

    Tolerates files that are already gone — a run interrupted between
    the atexit sweep and an outer ``finally`` may release twice.
    """
    with _LOCK:
        _LIVE_GENS.pop(ref.gen_id, None)
    try:
        os.unlink(ref.path)
    except OSError:
        pass


def live_generations() -> int:
    """How many published generations have not been released (tests)."""
    with _LOCK:
        return len(_LIVE_GENS)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-worker memo of recently loaded generations (gen_id -> payload).
_GEN_CACHE: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
_GEN_CACHE_MAX = 4

#: Set to True inside pool workers so nested code (the DP kernel's
#: subtree farming) never tries to build a pool inside a pool.
_IN_WORKER = False


def in_worker() -> bool:
    """True when the calling process is a pool worker."""
    return _IN_WORKER


def _load_generation(ref: GenerationRef) -> Dict[str, Any]:
    payload = _GEN_CACHE.get(ref.gen_id)
    if payload is not None:
        _GEN_CACHE.move_to_end(ref.gen_id)
        return payload
    with open(ref.path, "rb") as fh:
        payload = pickle.load(fh)
    _GEN_CACHE[ref.gen_id] = payload
    while len(_GEN_CACHE) > _GEN_CACHE_MAX:
        _GEN_CACHE.popitem(last=False)
    return payload


def member_job(args: Tuple[GenerationRef, int, int, int]):
    """Pool worker entry point: solve one ensemble member.

    ``args`` is ``(generation ref, member position, telemetry index,
    attempt)``; a legacy 3-tuple without the attempt is accepted too.
    The shared inputs come from the generation payload, loaded at most
    once per worker per generation.  Both chaos sites (``spool`` before
    the payload load, ``member`` before the solve) are no-ops unless
    ``REPRO_FAULT_SPEC`` is set.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if len(args) == 3:
        (ref, member, index), attempt = args, 1
    else:
        ref, member, index, attempt = args
    _maybe_inject("spool", member=member, attempt=attempt, in_worker=True)
    payload = _load_generation(ref)
    _maybe_inject("member", member=member, attempt=attempt, in_worker=True)
    from repro.core.engine import solve_member

    # Bracket the solve with registry snapshots: fork workers inherit
    # the parent's registry state, so the shippable quantity is the
    # *per-job* delta, not the worker's absolute totals.  The delta
    # rides home on the outcome's MemberRecord and the parent engine
    # merges it — without this, everything the hot paths increment in
    # a worker dies with the fork.
    registry = get_registry()
    base = registry.snapshot()
    outcome = solve_member(
        payload["trees"][member],
        payload["hierarchy"],
        payload["demands"],
        payload["config"],
        payload["grid"],
        index=index,
        run_id=payload["run_id"],
        attempt=attempt,
    )
    try:
        outcome.record.metrics_delta = snapshot_delta(registry.snapshot(), base)
    except Exception:
        pass  # a malformed delta must never fail the member solve
    return outcome


def dp_subtree_job(args: Tuple[GenerationRef, int]):
    """Pool worker entry point: solve one farmed DP subtree.

    ``args`` is ``(generation ref, subtree root)``; the tree, capacities
    and kernel configuration come from the generation payload (see
    :func:`repro.hgpt.dp.solve_subtree_tables`).
    """
    global _IN_WORKER
    _IN_WORKER = True
    ref, root = args
    payload = _load_generation(ref)
    from repro.hgpt.dp import solve_subtree_tables

    return solve_subtree_tables(payload, root)
