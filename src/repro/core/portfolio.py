"""Portfolio solving: best-of over several configurations.

The pipeline's quality varies with its random seed (tree ensemble) and
its grid/beam knobs; a *portfolio* run simply executes several
configurations and keeps the cheapest valid placement — the standard way
to spend extra compute for quality without touching the algorithm.
Combine with ``n_jobs`` inside each member for two-level parallelism.

Every member runs through the shared staged engine with one
``Telemetry("portfolio")`` collector, so a portfolio run emits a single
run report whose spans accumulate across members and whose member
records cover every tree solved by every configuration.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.core.config import SolverConfig
from repro.core.engine import EngineResult, run_pipeline
from repro.core.solver import HGPResult
from repro.core.telemetry import Telemetry

__all__ = ["solve_hgp_portfolio", "seed_portfolio"]


def seed_portfolio(base: SolverConfig, n_seeds: int) -> list[SolverConfig]:
    """Derive ``n_seeds`` configurations differing only in their seed."""
    if n_seeds < 1:
        raise InvalidInputError(f"n_seeds must be >= 1, got {n_seeds}")
    base_seed = base.seed if base.seed is not None else 0
    return [replace(base, seed=base_seed + 1009 * i) for i in range(n_seeds)]


def solve_hgp_portfolio(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    configs: Optional[Sequence[SolverConfig]] = None,
    n_seeds: int = 3,
    telemetry: Optional[Telemetry] = None,
) -> HGPResult:
    """Run several pipeline configurations; return the cheapest result.

    Parameters
    ----------
    g, hierarchy, demands:
        The instance.
    configs:
        Explicit configurations to race (``None`` = a seed portfolio of
        ``n_seeds`` members derived from the default config).
    n_seeds:
        Size of the default seed portfolio.
    telemetry:
        Shared collector for all members (``None`` = a fresh
        ``Telemetry("portfolio")``, attached to the returned result).

    Returns
    -------
    HGPResult
        The member result with the lowest true Eq. (1) cost; its
        placement's ``meta['portfolio_member']`` records which member
        won, and ``.telemetry`` covers the whole portfolio.
    """
    if configs is None:
        configs = seed_portfolio(SolverConfig(), n_seeds)
    if not configs:
        raise InvalidInputError("portfolio needs at least one configuration")
    tel = telemetry if telemetry is not None else Telemetry("portfolio")
    best: Optional[EngineResult] = None
    best_member = -1
    for i, cfg in enumerate(configs):
        tel.counter("portfolio_members")
        result = run_pipeline(g, hierarchy, demands, cfg, telemetry=tel)
        if best is None or result.cost < best.cost:
            best = result
            best_member = i
    assert best is not None
    return HGPResult(
        best.placement.with_meta(portfolio_member=best_member),
        best.tree_costs,
        best.dp_costs,
        tel.to_stopwatch(),
        best.grid,
        telemetry=tel,
    )
