"""Fault tolerance for the engine's ensemble fan-out.

Theorem 1's guarantee is an *expectation over a distribution* of
decomposition trees, so an ensemble run stays statistically meaningful
even when individual members are lost — but before this module existed,
one crashed pool worker aborted the whole ``Engine.run`` with a raw
``BrokenProcessPool`` and a stuck member solve had no deadline.  This
module gives the fan-out a production failure model:

* **Retries** — :class:`RetryPolicy` re-runs failed members up to
  ``max_attempts`` times on a deterministic (jitterless) exponential
  backoff schedule.  A ``BrokenProcessPool`` triggers a forced pool
  teardown/rebuild (:func:`repro.core.pool.restart_pool`, counted by
  ``repro_pool_restarts_total``); failed members then re-run in the
  fresh pool, and the final attempt runs *serially in-process* so a
  systematically broken pool cannot exhaust the budget on its own.
* **Deadlines** — ``member_timeout_s`` bounds each submission wave.
  Members are submitted as individual futures (no bare
  ``executor.map``); futures still running when the deadline expires
  are cancelled, the hung workers are terminated via a pool restart,
  and the members are retried or recorded as ``timeout`` failures.
* **Graceful degradation** — with ``allow_partial=True`` a run whose
  surviving ensemble still has at least ``min_members`` outcomes
  completes on the survivors; the run report carries ``degraded=True``
  plus one :class:`repro.core.telemetry.MemberFailure` per lost member.
  Otherwise :class:`repro.errors.DegradedRunError` is raised, carrying
  the partial outcomes.

Determinism: retries re-run :func:`repro.core.engine.solve_member` on
bit-identical inputs, so a recovered run produces exactly the costs and
placements of an undisturbed one — asserted by the chaos tests in
``tests/resilience/``.
"""

from __future__ import annotations

import concurrent.futures as cf
import hashlib
import os
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import DegradedRunError, InvalidInputError
from repro.core.telemetry import MemberFailure
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import MemberOutcome, RunContext

__all__ = ["RetryPolicy", "ResilienceConfig", "run_members"]


def _maybe_inject(site: str, **context) -> None:
    """Env-gated chaos hook (no-op unless ``REPRO_FAULT_SPEC`` is set)."""
    if not os.environ.get("REPRO_FAULT_SPEC"):
        return
    from repro.testing.faults import maybe_inject

    maybe_inject(site, **context)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed ensemble members.

    Attributes
    ----------
    max_attempts:
        Total attempts per member, the first included (1 = no retries,
        the pre-resilience behaviour).
    base_delay:
        Seconds slept before the second attempt; each further attempt
        doubles it (``base_delay * 2**(attempt - 2)``).  Jitterless on
        purpose — recovery timing stays reproducible, and the members
        of one run back off together rather than competing.
    """

    max_attempts: int = 1
    base_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidInputError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise InvalidInputError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before ``attempt`` (1-based; the first attempt waits 0)."""
        if attempt <= 1:
            return 0.0
        return self.base_delay * (2.0 ** (attempt - 2))


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs (the ``resilience`` block of ``SolverConfig``).

    The defaults are deliberately "off": one attempt, no deadline, no
    partial completion — bit-compatible with the pre-resilience engine
    on every successful run, and the failure path only changes in that
    exhausted runs raise :class:`repro.errors.DegradedRunError` (a
    ``SolverError``) carrying structured failure records.

    Attributes
    ----------
    retry:
        Per-member retry schedule (:class:`RetryPolicy`).
    member_timeout_s:
        Wall-clock budget for each pool submission wave; members still
        running when it expires are cancelled, their workers terminated,
        and the members retried (``None`` = no deadline).  Serial
        (in-process) attempts cannot be preempted and ignore it.
    allow_partial:
        Complete the run on the surviving ensemble when members fail
        terminally, instead of raising.
    min_members:
        Minimum surviving outcomes a partial run needs (< this raises
        :class:`repro.errors.DegradedRunError` even with
        ``allow_partial=True``).
    total_deadline_s:
        Wall-clock budget for the *whole* fan-out, retries and backoff
        included (``None`` = unbounded).  Without it every retry wave
        gets a fresh ``member_timeout_s``, so a systematically hung
        member consumes ``max_attempts x member_timeout_s`` — far past
        any SLO the caller promised.  With it, each wave's deadline is
        clamped to the remaining budget (the final attempt is
        *truncated*, never skipped, as long as any budget remains),
        backoff sleeps never overrun it, and members still pending when
        it expires are recorded as ``timeout`` failures.  This is the
        knob ``repro.serve`` uses to compose per-request SLO deadlines
        with the retry policy.  Serial (in-process) attempts cannot be
        preempted: an expired budget prevents them from *starting*, but
        one already running completes.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    member_timeout_s: Optional[float] = None
    allow_partial: bool = False
    min_members: int = 1
    total_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.member_timeout_s is not None and self.member_timeout_s <= 0:
            raise InvalidInputError(
                f"member_timeout_s must be > 0, got {self.member_timeout_s}"
            )
        if self.min_members < 1:
            raise InvalidInputError(
                f"min_members must be >= 1, got {self.min_members}"
            )
        if self.total_deadline_s is not None and self.total_deadline_s <= 0:
            raise InvalidInputError(
                f"total_deadline_s must be > 0, got {self.total_deadline_s}"
            )


# ----------------------------------------------------------------------
# the fan-out runner
# ----------------------------------------------------------------------


def _digest_traceback(exc: BaseException) -> str:
    """Short stable digest of an exception's traceback text."""
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return hashlib.blake2b(text.encode(), digest_size=8).hexdigest()


def _failure(index: int, kind: str, attempts: int, exc: BaseException) -> MemberFailure:
    return MemberFailure(
        index=index,
        kind=kind,
        attempts=attempts,
        message=f"{type(exc).__name__}: {exc}"[:300],
        traceback_digest=_digest_traceback(exc),
    )


def _pool_attempt(
    ctx: "RunContext",
    worker_pool,
    members: List[int],
    base: int,
    attempt: int,
    timeout_s: Optional[float],
) -> Tuple[Dict[int, "MemberOutcome"], Dict[int, Tuple[str, BaseException]], int]:
    """Run one submission wave on the persistent pool.

    Returns ``(solved, failed, restarts)`` where ``failed`` maps member
    position to ``(kind, exception)`` for this wave only.  The pool is
    force-restarted (workers terminated, executor rebuilt) when a crash
    broke it or the wave deadline expired with futures still running.

    Metric semantics: each solved outcome carries the worker's per-job
    registry delta (attached by ``member_job``).  Failed attempts return
    no outcome, so whatever a crashed/hung worker incremented before
    dying is deliberately dropped — the successful retry's delta is the
    single source of truth for that member.
    """
    assert ctx.trees is not None
    executor = worker_pool.get_pool(min(ctx.config.n_jobs, len(ctx.trees)))
    ref = ctx.generation(worker_pool)
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    solved: Dict[int, "MemberOutcome"] = {}
    failed: Dict[int, Tuple[str, BaseException]] = {}
    crashed = False
    hung = False
    futures: Dict[cf.Future, int] = {}
    for m in members:
        try:
            futures[
                executor.submit(worker_pool.member_job, (ref, m, base + m, attempt))
            ] = m
        except BrokenProcessPool as exc:
            # A worker grabbed an earlier submission from this very wave
            # and died before the loop finished (the fault can fire at
            # member_job entry, microseconds after submit), poisoning the
            # executor mid-loop.  Record the unsubmitted members as crash
            # failures so the wave restarts the pool and retries, instead
            # of the raw BrokenProcessPool escaping Engine.run.
            failed[m] = ("crash", exc)
            crashed = True
    waiting = set(futures)
    while waiting:
        budget = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        done, waiting = cf.wait(waiting, timeout=budget)
        for fut in done:
            m = futures[fut]
            try:
                solved[m] = fut.result()
            except BrokenProcessPool as exc:
                failed[m] = ("crash", exc)
                crashed = True
            except cf.CancelledError as exc:
                failed[m] = ("timeout", exc)
            except Exception as exc:
                failed[m] = ("error", exc)
        if waiting and deadline is not None and time.monotonic() >= deadline:
            for fut in waiting:
                fut.cancel()
                m = futures[fut]
                failed[m] = (
                    "timeout",
                    TimeoutError(
                        f"member {m} exceeded member_timeout_s={timeout_s:g}"
                    ),
                )
            hung = True
            break
    restarts = 0
    if crashed or hung:
        # The executor is either broken (crash poisons it) or hosts hung
        # workers that cancel() cannot reach; terminate and rebuild so
        # the next wave — and any later run — gets a healthy pool.
        worker_pool.restart_pool()
        restarts = 1
    return solved, failed, restarts


def _serial_attempt(
    ctx: "RunContext",
    members: List[int],
    base: int,
    attempt: int,
    catch: bool,
) -> Tuple[Dict[int, "MemberOutcome"], Dict[int, Tuple[str, BaseException]]]:
    """Run members in-process (the serial path and the last-resort attempt).

    With ``catch=False`` (single-attempt policy, no partial completion)
    exceptions propagate raw, preserving the pre-resilience serial
    behaviour exactly.

    Metric semantics: this path increments the parent registry
    *directly*, so the outcomes it returns carry no ``metrics_delta`` —
    the engine's delta-merge loop skips them and totals stay exact.
    Deltas only ever cross a process boundary (attached by
    :func:`repro.core.pool.member_job`); attaching one here too would
    double-count.  Pool waves retried after :func:`restart_pool` go
    through ``member_job`` in the fresh pool and keep their deltas, so
    every recovery route lands in the same merge path exactly once —
    asserted by the chaos-matrix metric-total tests.
    """
    from repro.core.engine import solve_member

    solved: Dict[int, "MemberOutcome"] = {}
    failed: Dict[int, Tuple[str, BaseException]] = {}
    for m in members:
        try:
            _maybe_inject("member", member=m, attempt=attempt, in_worker=False)
            solved[m] = solve_member(
                ctx.trees[m],
                ctx.hierarchy,
                ctx.demands,
                ctx.config,
                ctx.grid,
                index=base + m,
                run_id=ctx.run_id,
                attempt=attempt,
            )
        except Exception as exc:
            if not catch:
                raise
            failed[m] = ("error", exc)
    return solved, failed


def run_members(
    ctx: "RunContext", base: int
) -> Tuple[List["MemberOutcome"], List[MemberFailure], int]:
    """Solve every ensemble member under the run's resilience policy.

    Returns ``(outcomes, failures, pool_restarts)`` with outcomes in
    ensemble order (survivors only).  Raises
    :class:`repro.errors.DegradedRunError` when members failed terminally
    and the policy does not allow completing on the survivors.
    """
    assert ctx.trees is not None and ctx.grid is not None
    n = len(ctx.trees)
    res = ctx.config.resilience
    policy = res.retry
    parallel = ctx.config.n_jobs > 1 and n > 1
    reg = get_registry()

    outcomes: Dict[int, "MemberOutcome"] = {}
    last_error: Dict[int, Tuple[str, BaseException]] = {}
    attempts_used: Dict[int, int] = {}
    pending: List[int] = list(range(n))
    restarts = 0
    # The fan-out's overall wall-clock budget.  Every wave deadline and
    # backoff sleep below is clamped to what remains of it, so retries
    # can never stack fresh member_timeout_s grants past the total.
    overall = (
        None
        if res.total_deadline_s is None
        else time.monotonic() + res.total_deadline_s
    )
    try:
        for attempt in range(1, policy.max_attempts + 1):
            if not pending:
                break
            if overall is not None and time.monotonic() >= overall:
                # Budget exhausted before this attempt could start: the
                # members still pending become terminal timeout failures.
                for m in pending:
                    last_error[m] = (
                        "timeout",
                        TimeoutError(
                            f"total_deadline_s={res.total_deadline_s:g} "
                            f"exhausted before attempt {attempt}"
                        ),
                    )
                break
            if attempt > 1:
                reg.counter(
                    "repro_member_retries_total",
                    "Ensemble-member re-runs scheduled by the retry policy",
                ).inc(len(pending))
                delay = policy.delay(attempt)
                if overall is not None:
                    remaining = overall - time.monotonic()
                    if delay >= remaining:
                        # The backoff alone would exhaust the budget:
                        # sleeping it away just to skip the attempt at
                        # the expiry check wastes the caller's wall
                        # time.  Fail the pending members now instead.
                        for m in pending:
                            last_error[m] = (
                                "timeout",
                                TimeoutError(
                                    f"total_deadline_s="
                                    f"{res.total_deadline_s:g} exhausted "
                                    f"by backoff before attempt {attempt}"
                                ),
                            )
                        break
                if delay > 0:
                    time.sleep(delay)
                ctx.logger.info(
                    "member_retry",
                    attempt=attempt,
                    members=list(pending),
                    delay_s=delay,
                )
            for m in pending:
                attempts_used[m] = attempt
            # The last attempt of a multi-attempt policy runs serially
            # in-process: if the pool itself is the problem (systematic
            # crash/hang), retrying through it would burn the whole
            # budget on the same failure.
            serial_fallback = policy.max_attempts > 1 and attempt == policy.max_attempts
            if parallel and not serial_fallback:
                from repro.core import pool as worker_pool

                timeout_s = res.member_timeout_s
                if overall is not None:
                    remaining = max(0.001, overall - time.monotonic())
                    timeout_s = (
                        remaining
                        if timeout_s is None
                        else min(timeout_s, remaining)
                    )
                solved, failed, wave_restarts = _pool_attempt(
                    ctx, worker_pool, pending, base, attempt, timeout_s
                )
                restarts += wave_restarts
            else:
                # catch=False only on a bare policy (single attempt, no
                # degradation): serial errors then propagate raw, exactly
                # as the pre-resilience engine behaved.
                catch = policy.max_attempts > 1 or res.allow_partial
                solved, failed = _serial_attempt(
                    ctx, pending, base, attempt, catch
                )
            outcomes.update(solved)
            last_error.update(failed)
            pending = sorted(failed)
    finally:
        ctx.release_generation()

    failures: List[MemberFailure] = []
    for m in pending:
        kind, exc = last_error[m]
        # attempts_used is missing only when the total deadline expired
        # before the member's first attempt could start.
        failures.append(_failure(base + m, kind, attempts_used.get(m, 0), exc))
        reg.counter(
            "repro_member_failures_total",
            "Ensemble members lost past their retry budget, by failure kind",
            labelnames=("kind",),
        ).inc(kind=kind)
        ctx.logger.info(
            "member_failed",
            member=m,
            kind=kind,
            attempts=attempts_used.get(m, 0),
            error=str(exc)[:200],
        )
    ordered = [outcomes[m] for m in sorted(outcomes)]
    if failures and not (res.allow_partial and len(ordered) >= res.min_members):
        lost = ", ".join(
            f"member {f.index} ({f.kind} after {f.attempts} attempts)"
            for f in failures
        )
        raise DegradedRunError(
            f"{len(failures)}/{n} ensemble members failed terminally and the "
            f"resilience policy forbids a partial run "
            f"(allow_partial={res.allow_partial}, min_members={res.min_members}, "
            f"survivors={len(ordered)}): {lost}",
            outcomes=ordered,
            failures=failures,
        )
    return ordered, failures, restarts
