"""The end-to-end Theorem-1 pipeline (thin wrappers over the engine).

``solve_hgp`` runs the paper's two steps:

1. **Embed** ``G`` into an ensemble of decomposition trees (the Räcke
   step, Theorems 6–7; heuristic ensemble per DESIGN.md §2);
2. **Solve on trees**: for each tree, quantize demands (Hochbaum–Shmoys
   grid), binarize, run the RHGPT signature DP (Theorem 4), repair the
   relaxed solution into a valid hierarchy placement (Theorem 5), and
   map back to ``G``.

The cheapest placement *measured by the true Eq. (1) cost in G* wins —
exactly Theorem 7's ``arg min`` — so any weakness of the heuristic tree
ensemble can only cost optimality, never correctness.  An optional final
local-search pass (hierarchy-aware greedy moves) polishes the constant
factors the worst-case analysis ignores.

Since the staged-engine refactor the actual pipeline lives in
:mod:`repro.core.engine`; these wrappers keep the original public
signatures and results while every run now also carries structured
telemetry (``HGPResult.telemetry`` / ``HGPResult.report()``).

``solve_hgpt`` exposes the tree-only solver for callers who already have
a tree instance (the HGPT problem per se, Theorem 2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree
from repro.hgpt.dp import DPStats
from repro.hgpt.quantize import DemandGrid
from repro.core.config import SolverConfig
from repro.core.engine import make_grid, run_pipeline, solve_member, validate_instance
from repro.core.telemetry import RunReport, Telemetry
from repro.utils.timing import Stopwatch

__all__ = ["solve_hgp", "solve_hgpt", "HGPResult"]


class HGPResult:
    """Return value of :func:`solve_hgp`: the winning placement plus
    per-tree diagnostics.

    Attributes
    ----------
    placement:
        The best placement found (lowest true Eq. (1) cost).
    tree_costs:
        Mapped cost achieved by each ensemble member.
    dp_costs:
        DP (tree-side, edge-cut) cost per member — always an upper bound
        on the corresponding mapped cost (Proposition 1), asserted in
        tests.
    stopwatch:
        Phase timings (``trees``, ``quantize``, ``dp``, ``repair``,
        ``refine``) — a flat view of the telemetry span tree.
    grid:
        The demand grid used.
    telemetry:
        The structured collector for this run (``None`` only for results
        constructed by legacy code that never went through the engine).
    kernel_backend, incremental:
        The engine's resolved-mode stamps, carried through so
        :meth:`report` tags the run meta exactly as the engine's own
        reports do.
    """

    def __init__(
        self,
        placement: Placement,
        tree_costs: list[float],
        dp_costs: list[float],
        stopwatch: Stopwatch,
        grid: DemandGrid,
        telemetry: Optional[Telemetry] = None,
        kernel_backend: Optional[str] = None,
        incremental: Optional[bool] = None,
    ):
        self.placement = placement
        self.tree_costs = tree_costs
        self.dp_costs = dp_costs
        self.stopwatch = stopwatch
        self.grid = grid
        self.telemetry = telemetry
        self.kernel_backend = kernel_backend
        self.incremental = incremental

    @property
    def cost(self) -> float:
        """True Eq. (1) cost of the winning placement."""
        return self.placement.cost()

    def report(self, **meta: object) -> RunReport:
        """Structured run report (requires engine-produced telemetry)."""
        if self.telemetry is None:
            raise ValueError("this result carries no telemetry")
        if self.kernel_backend is not None:
            meta.setdefault("kernel_backend", self.kernel_backend)
        if self.incremental is not None:
            meta.setdefault("incremental", self.incremental)
        return self.telemetry.report(
            config=self.placement.meta.get("config"), cost=self.cost, **meta
        )


def solve_hgpt(
    tree: DecompositionTree,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
    grid: Optional[DemandGrid] = None,
    stats: Optional[DPStats] = None,
) -> tuple[Placement, float]:
    """Solve HGP on one tree instance (Theorem 2).

    Returns the repaired placement and the DP's tree-side cost.  The
    placement's true cost is available as ``placement.cost()`` and is
    never above the tree-side cost (Proposition 1).
    """
    g = tree.graph
    d = np.asarray(demands, dtype=np.float64)
    validate_instance(g, hierarchy, d)
    if grid is None:
        grid = make_grid(hierarchy, d, config)
    outcome = solve_member(tree, hierarchy, d, config, grid, stats=stats)
    return outcome.placement, outcome.dp_cost


def solve_hgp(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
) -> HGPResult:
    """Full bicriteria HGP solver (Theorem 1 pipeline).

    Parameters
    ----------
    g:
        Task graph.
    hierarchy:
        Hierarchy tree with cost multipliers.
    demands:
        Per-vertex demand in ``(0, leaf_capacity]``.
    config:
        Pipeline knobs (ensemble size, grid, beam, refinement).

    Returns
    -------
    HGPResult
        Winning placement (guaranteed capacity violation at most
        ``(1 + ε)(1 + h)``) plus diagnostics and telemetry.

    Raises
    ------
    InfeasibleError
        If a vertex exceeds leaf capacity or total demand exceeds total
        capacity.

    Notes
    -----
    When ``config.multilevel.enabled`` is set the instance is routed
    through the coarsen–solve–refine front-end
    (:func:`repro.multilevel.solve_multilevel`): the engine runs on the
    coarsest graph only, and the returned ``tree_costs`` / ``dp_costs`` /
    ``grid`` describe that coarse solve while ``placement`` (and
    ``cost``) are the fine-level result.
    """
    if config.multilevel.enabled:
        # Local import: repro.multilevel sits on top of the engine.
        from repro.multilevel import solve_multilevel

        res = solve_multilevel(g, hierarchy, demands, config)
        return HGPResult(
            res.placement,
            res.coarse.tree_costs,
            res.coarse.dp_costs,
            res.telemetry.to_stopwatch(),
            res.coarse.grid,
            telemetry=res.telemetry,
            kernel_backend=res.coarse.kernel_backend,
            incremental=res.coarse.incremental,
        )
    result = run_pipeline(g, hierarchy, demands, config, path="batch")
    return HGPResult(
        result.placement,
        result.tree_costs,
        result.dp_costs,
        result.stopwatch(),
        result.grid,
        telemetry=result.telemetry,
        kernel_backend=result.kernel_backend,
        incremental=result.incremental,
    )
