"""The end-to-end Theorem-1 pipeline.

``solve_hgp`` runs the paper's two steps:

1. **Embed** ``G`` into an ensemble of decomposition trees (the Räcke
   step, Theorems 6–7; heuristic ensemble per DESIGN.md §2);
2. **Solve on trees**: for each tree, quantize demands (Hochbaum–Shmoys
   grid), binarize, run the RHGPT signature DP (Theorem 4), repair the
   relaxed solution into a valid hierarchy placement (Theorem 5), and
   map back to ``G``.

The cheapest placement *measured by the true Eq. (1) cost in G* wins —
exactly Theorem 7's ``arg min`` — so any weakness of the heuristic tree
ensemble can only cost optimality, never correctness.  An optional final
local-search pass (hierarchy-aware greedy moves) polishes the constant
factors the worst-case analysis ignores.

``solve_hgpt`` exposes the tree-only solver for callers who already have
a tree instance (the HGPT problem per se, Theorem 2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InfeasibleError, InvalidInputError, SolverError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.decomposition.racke import racke_ensemble
from repro.decomposition.tree import DecompositionTree
from repro.hgpt.binarize import binarize
from repro.hgpt.dp import DPStats, solve_rhgpt
from repro.hgpt.quantize import DemandGrid
from repro.hgpt.repair import repair_to_placement
from repro.core.config import SolverConfig
from repro.utils.timing import Stopwatch

__all__ = ["solve_hgp", "solve_hgpt", "HGPResult"]


class HGPResult:
    """Return value of :func:`solve_hgp`: the winning placement plus
    per-tree diagnostics.

    Attributes
    ----------
    placement:
        The best placement found (lowest true Eq. (1) cost).
    tree_costs:
        Mapped cost achieved by each ensemble member.
    dp_costs:
        DP (tree-side, edge-cut) cost per member — always an upper bound
        on the corresponding mapped cost (Proposition 1), asserted in
        tests.
    stopwatch:
        Phase timings (``trees``, ``dp``, ``repair``, ``refine``).
    grid:
        The demand grid used.
    """

    def __init__(
        self,
        placement: Placement,
        tree_costs: list[float],
        dp_costs: list[float],
        stopwatch: Stopwatch,
        grid: DemandGrid,
    ):
        self.placement = placement
        self.tree_costs = tree_costs
        self.dp_costs = dp_costs
        self.stopwatch = stopwatch
        self.grid = grid

    @property
    def cost(self) -> float:
        """True Eq. (1) cost of the winning placement."""
        return self.placement.cost()


def _make_grid(
    hierarchy: Hierarchy, demands: np.ndarray, config: SolverConfig
) -> DemandGrid:
    n = demands.size
    if config.grid_mode == "epsilon":
        return DemandGrid.from_epsilon(hierarchy, n, config.epsilon)
    if config.grid_mode == "budget":
        budget = max(int(config.grid_budget), n)  # type: ignore[arg-type]
        return DemandGrid.from_budget(hierarchy, demands, budget, slack=config.slack)
    # "auto": ~4 grid cells per vertex, floor of 64 total.
    budget = max(64, 4 * n)
    return DemandGrid.from_budget(hierarchy, demands, budget, slack=config.slack)


def _check_instance(g: Graph, hierarchy: Hierarchy, demands: np.ndarray) -> None:
    if demands.shape != (g.n,):
        raise InvalidInputError(
            f"demands must have shape ({g.n},), got {demands.shape}"
        )
    if g.n == 0:
        raise InvalidInputError("empty graph")
    if demands.min() <= 0 or not np.all(np.isfinite(demands)):
        raise InvalidInputError("demands must be finite and > 0")
    if demands.max() > hierarchy.leaf_capacity * (1 + 1e-9):
        v = int(np.argmax(demands))
        raise InfeasibleError(
            f"vertex {v} demand {demands[v]:.4g} exceeds leaf capacity "
            f"{hierarchy.leaf_capacity:.4g}"
        )
    if demands.sum() > hierarchy.total_capacity * (1 + 1e-9):
        raise InfeasibleError(
            f"total demand {demands.sum():.4g} exceeds total capacity "
            f"{hierarchy.total_capacity:.4g}"
        )


def solve_hgpt(
    tree: DecompositionTree,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
    grid: Optional[DemandGrid] = None,
    stats: Optional[DPStats] = None,
) -> tuple[Placement, float]:
    """Solve HGP on one tree instance (Theorem 2).

    Returns the repaired placement and the DP's tree-side cost.  The
    placement's true cost is available as ``placement.cost()`` and is
    never above the tree-side cost (Proposition 1).
    """
    g = tree.graph
    d = np.asarray(demands, dtype=np.float64)
    _check_instance(g, hierarchy, d)
    norm_h, _offset = hierarchy.normalized()
    if grid is None:
        grid = _make_grid(hierarchy, d, config)
    q = grid.quantize(d)
    bt = binarize(tree, q)
    caps = [grid.caps[j] for j in range(1, hierarchy.h + 1)]
    deltas = [0.0] + [
        norm_h.cm[k - 1] - norm_h.cm[k] for k in range(1, hierarchy.h + 1)
    ]
    # Beam pruning is a heuristic: on tight instances it can discard every
    # state an ancestor's capacity check needs.  Escalate (4x, then exact)
    # before giving up — the exact DP is always complete once the grid
    # admitted the instance.
    beams: list[Optional[int]] = [config.beam_width]
    if config.beam_width is not None:
        beams.extend([config.beam_width * 4, None])
    solution = None
    last_error: Optional[SolverError] = None
    for beam in beams:
        try:
            solution = solve_rhgpt(bt, caps, deltas, beam_width=beam, stats=stats)
            break
        except SolverError as exc:
            last_error = exc
    if solution is None:
        assert last_error is not None
        raise last_error
    placement, _report = repair_to_placement(g, hierarchy, d, solution, grid)
    return placement, solution.cost


def solve_hgp(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
) -> HGPResult:
    """Full bicriteria HGP solver (Theorem 1 pipeline).

    Parameters
    ----------
    g:
        Task graph.
    hierarchy:
        Hierarchy tree with cost multipliers.
    demands:
        Per-vertex demand in ``(0, leaf_capacity]``.
    config:
        Pipeline knobs (ensemble size, grid, beam, refinement).

    Returns
    -------
    HGPResult
        Winning placement (guaranteed capacity violation at most
        ``(1 + ε)(1 + h)``) plus diagnostics.

    Raises
    ------
    InfeasibleError
        If a vertex exceeds leaf capacity or total demand exceeds total
        capacity.
    """
    d = np.asarray(demands, dtype=np.float64)
    _check_instance(g, hierarchy, d)
    sw = Stopwatch()
    grid = _make_grid(hierarchy, d, config)

    with sw.section("trees"):
        trees = racke_ensemble(
            g, n_trees=config.n_trees, methods=config.tree_methods, seed=config.seed
        )

    best: Optional[Placement] = None
    best_cost = float("inf")
    tree_costs: list[float] = []
    dp_costs: list[float] = []
    if config.n_jobs > 1 and len(trees) > 1:
        # The ensemble members are independent: fan the DP solves out to
        # worker processes.  Results are identical to the serial path
        # (each solve is deterministic given its tree and grid).
        import concurrent.futures as cf

        with sw.section("dp"):
            with cf.ProcessPoolExecutor(
                max_workers=min(config.n_jobs, len(trees))
            ) as pool:
                results = list(
                    pool.map(
                        _solve_tree_job,
                        [(tree, hierarchy, d, config, grid) for tree in trees],
                    )
                )
        solved = results
    else:
        solved = []
        for tree in trees:
            with sw.section("dp"):
                solved.append(
                    solve_hgpt(tree, hierarchy, d, config=config, grid=grid)
                )
    for placement, dp_cost in solved:
        mapped = placement.cost()
        tree_costs.append(mapped)
        dp_costs.append(dp_cost)
        if mapped < best_cost:
            best_cost = mapped
            best = placement

    assert best is not None
    if config.refine and config.refine_passes > 0:
        from repro.baselines.local_search import refine_placement

        # Refinement may shuffle load but never worsen the balance the
        # repair achieved (and always stays within the Theorem-1 bound).
        budget = max(1.0, best.max_violation())
        with sw.section("refine"):
            best = refine_placement(
                best,
                max_passes=config.refine_passes,
                max_violation=budget,
                allow_swaps=True,
            )
    best = best.with_meta(solver="hgp", config=config.describe())
    return HGPResult(best, tree_costs, dp_costs, sw, grid)


def _solve_tree_job(args):
    """Top-level worker for the process pool (must be picklable)."""
    tree, hierarchy, demands, config, grid = args
    return solve_hgpt(tree, hierarchy, demands, config=config, grid=grid)
