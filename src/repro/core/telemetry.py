"""Structured run telemetry for the staged solver engine.

Every engine run (batch, streaming re-optimisation, portfolio member,
k-BGP reduction, guided iteration) threads one :class:`Telemetry` object
through its stages.  It records three kinds of data:

* **Spans** — a tree of named wall-clock intervals.  A stage entered
  twice under the same parent *accumulates* into one span (duration sums,
  count increments), so ensembles and portfolios stay readable.
* **Counters** — named numeric facts attached to the span they were
  observed in (ensemble size, grid cells, beam escalations, …).
* **Member records** — one :class:`MemberRecord` per decomposition-tree
  ensemble member: DP cost, mapped cost, per-phase seconds and the DP
  state counters that :class:`repro.hgpt.dp.DPStats` used to hold.

Everything here is a plain picklable dataclass: process-pool workers
return their span/record data with their results and the parent merges
it, so parallel runs report the same phase breakdown as serial ones.
A whole run serialises to a JSON *run report* (:class:`RunReport`) that
the CLI (``repro solve --report out.json``) and the benchmark harness
persist; reports round-trip losslessly through JSON.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.utils.timing import Stopwatch

__all__ = [
    "Span",
    "MemberRecord",
    "MemberFailure",
    "Telemetry",
    "RunReport",
    "active_spans",
    "mark_active",
]

#: Thread ident -> stack of open span names, maintained by
#: :meth:`Telemetry.span`.  The sampling profiler
#: (:mod:`repro.obs.profile`) reads this from its sampler thread to
#: attribute stack samples to the telemetry span the sampled thread was
#: inside — which is why it lives at module level rather than on one
#: collector instance: ``sys._current_frames`` is process-wide too.
_ACTIVE_SPANS: Dict[int, List[str]] = {}


def active_spans() -> Dict[int, str]:
    """Innermost open span name per thread ident (profiler attribution).

    Safe to call from any thread: iterates over a point-in-time copy,
    skipping threads whose stack empties mid-iteration.
    """
    out: Dict[int, str] = {}
    for ident, stack in list(_ACTIVE_SPANS.items()):
        if stack:
            out[ident] = stack[-1]
    return out


@contextmanager
def mark_active(name: str) -> Iterator[None]:
    """Tag the calling thread as "inside ``name``" for the profiler only.

    A zero-cost sibling of :meth:`Telemetry.span` for code that times
    itself some other way (``solve_member`` uses a Stopwatch so its
    timings stay picklable): no Span node is created and nothing shows
    up in reports, but stack samples taken while the block runs are
    attributed to ``name``.  Works identically in pool workers, where
    no Telemetry instance exists at all.
    """
    ident = threading.get_ident()
    _ACTIVE_SPANS.setdefault(ident, []).append(name)
    try:
        yield
    finally:
        stack = _ACTIVE_SPANS.get(ident)
        if stack:
            stack.pop()
            if not stack:
                _ACTIVE_SPANS.pop(ident, None)


@dataclass
class Span:
    """One node of the span tree.

    Attributes
    ----------
    name:
        Span label (stage spans use the canonical names ``trees``,
        ``quantize``, ``dp``, ``repair``, ``refine``).
    seconds:
        Accumulated wall-clock time across all entries.
    count:
        Number of times the span was entered.
    counters:
        Named numeric facts recorded while this span was current.
    children:
        Nested spans, in first-entry order.
    """

    name: str
    seconds: float = 0.0
    count: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def child(self, name: str) -> "Span":
        """Find-or-create the child span called ``name``."""
        for c in self.children:
            if c.name == name:
                return c
        c = Span(name)
        self.children.append(c)
        return c

    def iter_named(self, name: str) -> Iterator["Span"]:
        """Yield every descendant called ``name``, depth-first."""
        for c in self.children:
            if c.name == name:
                yield c
            yield from c.iter_named(name)

    def lookup(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant called ``name``."""
        return next(self.iter_named(name), None)

    def find_all(self, name: str) -> List["Span"]:
        """All descendants called ``name`` (depth-first order)."""
        return list(self.iter_named(name))

    def total_child_seconds(self) -> float:
        """Sum of the direct children's accumulated seconds.

        ``report show`` derives self time as
        ``max(0, seconds - total_child_seconds())``; the clamp matters
        because pool runs fold summed worker time into child spans,
        which can exceed the parent's wall-clock measurement.
        """
        return sum(c.seconds for c in self.children)

    def add(self, name: str, seconds: float, count: int = 1) -> "Span":
        """Accumulate externally measured time under child ``name``.

        Used by the engine to fold per-worker phase timings (measured in
        the worker process) into the parent's span tree.
        """
        c = self.child(name)
        c.seconds += float(seconds)
        c.count += int(count)
        return c

    def to_dict(self) -> dict:
        """JSON-ready nested-dict view of this span subtree."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            seconds=float(data["seconds"]),
            count=int(data["count"]),
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


@dataclass
class MemberRecord:
    """Per-ensemble-member diagnostics (picklable; workers return these).

    ``dp_nodes`` / ``dp_states_total`` / ``dp_states_max`` / ``dp_merges``
    mirror :class:`repro.hgpt.dp.DPStats`; ``beam_escalations`` counts how
    often the beam had to widen before the DP found a feasible state;
    ``attempts`` is which solve attempt produced this record (1 = first
    try, >1 = the member was retried by the resilience layer).
    """

    index: int
    method: Optional[str] = None
    dp_cost: float = 0.0
    mapped_cost: float = 0.0
    dp_seconds: float = 0.0
    repair_seconds: float = 0.0
    beam_escalations: int = 0
    attempts: int = 1
    dp_nodes: int = 0
    dp_states_total: int = 0
    dp_states_max: int = 0
    dp_merges: int = 0
    dp_tiles: int = 0
    dp_bound_pruned: int = 0
    dp_table_peak_bytes: int = 0
    dp_memo_hits: int = 0
    dp_memo_misses: int = 0
    #: Per-job metrics-registry delta captured in the pool worker
    #: (:func:`repro.obs.metrics.snapshot_delta` format).  The engine
    #: merges it into the parent registry and nulls it out before the
    #: record lands in a run report, so persisted reports stay lean.
    metrics_delta: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-ready flat-dict view of this record (delta excluded)."""
        data = asdict(self)
        data.pop("metrics_delta", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MemberRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        data = dict(data)
        data.pop("metrics_delta", None)
        return cls(**data)


@dataclass
class MemberFailure:
    """One ensemble member's terminal failure (all retry attempts spent).

    Attributes
    ----------
    index:
        Member index within the run's telemetry (same numbering as
        :class:`MemberRecord.index`).
    kind:
        Failure class: ``crash`` (the pool worker died), ``timeout``
        (the member deadline expired), or ``error`` (the solve raised).
    attempts:
        How many attempts were made before giving up.
    message:
        The last attempt's exception message, truncated.
    traceback_digest:
        Short BLAKE2b digest of the last attempt's traceback text, so
        identical failure signatures can be grouped across runs without
        shipping whole tracebacks into reports.
    """

    index: int
    kind: str
    attempts: int
    message: str = ""
    traceback_digest: str = ""

    def to_dict(self) -> dict:
        """JSON-ready flat-dict view of this failure."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MemberFailure":
        """Rebuild a failure record from :meth:`to_dict` output."""
        return cls(**data)


class Telemetry:
    """Collector threaded through the engine stages.

    Parameters
    ----------
    path:
        Name of the solve path this telemetry belongs to (``batch``,
        ``streaming``, ``portfolio``, ``kbgp``, ``guided``); becomes the
        root span's name and the report's ``path`` field.
    """

    def __init__(self, path: str = "run"):
        self.root = Span(path)
        self._stack: List[Span] = [self.root]
        self.members: List[MemberRecord] = []
        self.failures: List[MemberFailure] = []
        #: Profiler payload (:meth:`repro.obs.profile.SamplingProfiler.
        #: summary` shape) stamped by the pipeline when profiling is on;
        #: flows into :attr:`RunReport.profile`.
        self.profile: Optional[dict] = None
        self._observers: List[Callable[[str, str, float], None]] = []

    def add_span_observer(self, observer: Callable[[str, str, float], None]) -> None:
        """Register ``observer(event, name, seconds)`` span callbacks.

        ``event`` is ``"enter"`` (``seconds == 0.0``) or ``"exit"``
        (``seconds`` = the block's duration).  Used by the profiler's
        stage resource monitor to bracket RSS/CPU/tracemalloc per stage.
        Observer exceptions are swallowed — observability must never
        fail a solve.
        """
        self._observers.append(observer)

    def remove_span_observer(
        self, observer: Callable[[str, str, float], None]
    ) -> None:
        """Unregister a span observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _notify(self, event: str, name: str, seconds: float) -> None:
        for obs in self._observers:
            try:
                obs(event, name, seconds)
            except Exception:
                pass

    @property
    def path(self) -> str:
        """Solve-path label (the root span's name)."""
        return self.root.name

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open (or re-enter) the child span ``name`` and time the block."""
        sp = self.current.child(name)
        self._stack.append(sp)
        ident = threading.get_ident()
        _ACTIVE_SPANS.setdefault(ident, []).append(name)
        self._notify("enter", name, 0.0)
        start = time.perf_counter()
        try:
            yield sp
        finally:
            elapsed = time.perf_counter() - start
            sp.seconds += elapsed
            sp.count += 1
            self._stack.pop()
            stack = _ACTIVE_SPANS.get(ident)
            if stack:
                stack.pop()
                if not stack:
                    _ACTIVE_SPANS.pop(ident, None)
            self._notify("exit", name, elapsed)

    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` on the current span."""
        counters = self.current.counters
        counters[name] = counters.get(name, 0.0) + float(value)

    def add_seconds(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold externally measured time in as a child of the current span."""
        self.current.add(name, seconds, count)

    def record_member(self, member: MemberRecord) -> None:
        """Append one ensemble-member record."""
        self.members.append(member)

    def record_failure(self, failure: MemberFailure) -> None:
        """Append one terminal member-failure record (degraded runs)."""
        self.failures.append(failure)

    @property
    def degraded(self) -> bool:
        """Whether any ensemble member was lost past its retry budget."""
        return bool(self.failures)

    def find_spans(self, name: str) -> List[Span]:
        """All spans called ``name`` anywhere in the tree (root included)."""
        hits = [self.root] if self.root.name == name else []
        hits.extend(self.root.find_all(name))
        return hits

    def to_stopwatch(self) -> Stopwatch:
        """Legacy :class:`Stopwatch` view: the root's direct children.

        Keeps :attr:`repro.core.solver.HGPResult.stopwatch` working for
        callers written against the pre-engine API.
        """
        sw = Stopwatch()
        for c in self.root.children:
            sw.totals[c.name] = sw.totals.get(c.name, 0.0) + c.seconds
            sw.counts[c.name] = sw.counts.get(c.name, 0) + max(c.count, 1)
        return sw

    def report(
        self,
        config: Optional[dict] = None,
        cost: Optional[float] = None,
        **meta: object,
    ) -> "RunReport":
        """Freeze the collected data into a serialisable :class:`RunReport`."""
        return RunReport(
            path=self.path,
            config=config,
            cost=cost,
            spans=self.root,
            members=list(self.members),
            meta=dict(meta),
            failures=list(self.failures),
            degraded=self.degraded,
            profile=self.profile,
        )


@dataclass
class RunReport:
    """One run's structured report: spans + counters + member records.

    Serialises with :meth:`to_json` and reconstructs losslessly with
    :meth:`from_json` (asserted by the telemetry tests); the schema is
    documented in ``docs/algorithms.md``.
    """

    path: str
    config: Optional[dict]
    cost: Optional[float]
    spans: Span
    members: List[MemberRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    failures: List[MemberFailure] = field(default_factory=list)
    degraded: bool = False
    #: Profiler payload when the run was profiled: sample counts per
    #: span, collapsed stacks, per-stage RSS/CPU/tracemalloc deltas
    #: (see :mod:`repro.obs.profile`).  ``None`` for unprofiled runs.
    profile: Optional[dict] = None

    #: v2 added ``degraded`` + ``failures``; v3 added ``profile``
    #: (absent in older reports, which still load — all default to
    #: "nothing failed / not profiled").
    SCHEMA_VERSION = 3

    def to_dict(self) -> dict:
        """JSON-ready dict view of the whole report (versioned schema)."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "path": self.path,
            "config": self.config,
            "cost": self.cost,
            "spans": self.spans.to_dict(),
            "members": [m.to_dict() for m in self.members],
            "meta": self.meta,
            "failures": [f.to_dict() for f in self.failures],
            "degraded": self.degraded,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            path=data["path"],
            config=data.get("config"),
            cost=data.get("cost"),
            spans=Span.from_dict(data["spans"]),
            members=[MemberRecord.from_dict(m) for m in data.get("members", [])],
            meta=dict(data.get("meta", {})),
            failures=[
                MemberFailure.from_dict(f) for f in data.get("failures", [])
            ],
            degraded=bool(data.get("degraded", False)),
            profile=data.get("profile"),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialise the report to a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Parse a report back from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
