"""Decomposition trees and their builders (the paper's Section 4 substrate)."""

from repro.decomposition.tree import DecompositionTree, TreeAssembler, min_leaf_cut
from repro.decomposition.recursive import build_recursive_tree
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.decomposition.contraction import (
    contraction_decomposition_tree,
    heavy_edge_matching,
)
from repro.decomposition.frt import frt_decomposition_tree
from repro.decomposition.mincut_split import (
    gomory_hu_decomposition_tree,
    mincut_decomposition_tree,
)
from repro.decomposition.racke import BUILDERS, build_tree, racke_ensemble
from repro.decomposition.guided import placement_guided_tree, solve_hgp_iterated

__all__ = [
    "DecompositionTree",
    "TreeAssembler",
    "min_leaf_cut",
    "build_recursive_tree",
    "spectral_decomposition_tree",
    "contraction_decomposition_tree",
    "heavy_edge_matching",
    "frt_decomposition_tree",
    "gomory_hu_decomposition_tree",
    "mincut_decomposition_tree",
    "BUILDERS",
    "build_tree",
    "racke_ensemble",
    "placement_guided_tree",
    "solve_hgp_iterated",
]
