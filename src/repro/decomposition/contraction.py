"""Contraction (heavy-edge agglomeration) decomposition trees.

Bottom-up counterpart of the recursive-bisection builders: repeatedly
compute a randomized *heavy-edge matching* (prefer merging the pairs that
communicate most) and contract matched pairs into supervertices; the merge
forest, read top-down, is the decomposition tree.  The intuition mirrors
multilevel partitioners: heavily-communicating vertices should share a
subtree so any partition cutting high in the tree leaves them together.

Because every round at least halves the number of clusters that found a
match, the tree has O(log n) expected depth on bounded-degree graphs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree, TreeAssembler
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["contraction_decomposition_tree", "heavy_edge_matching"]


def heavy_edge_matching(g: Graph, rng: np.random.Generator) -> np.ndarray:
    """Randomized greedy heavy-edge matching.

    Visits vertices in random order; each unmatched vertex grabs its
    heaviest unmatched neighbour.  Returns ``match[v]`` = partner id or
    ``-1``.  This is the classic METIS coarsening step.
    """
    match = np.full(g.n, -1, dtype=np.int64)
    for v in rng.permutation(g.n):
        if match[v] >= 0:
            continue
        nbrs = g.neighbors(v)
        ws = g.neighbor_weights(v)
        free = match[nbrs] < 0
        # Exclude self-matching artifacts (cannot happen: no self-loops).
        if not free.any():
            continue
        cand_ws = np.where(free, ws, -np.inf)
        u = int(nbrs[int(np.argmax(cand_ws))])
        if u == v or match[u] >= 0:
            continue
        match[v] = u
        match[u] = v
    return match


def contraction_decomposition_tree(
    g: Graph, seed: SeedLike = None, max_rounds: int = 10_000
) -> DecompositionTree:
    """Decomposition tree via iterated heavy-edge contraction.

    Each matching round merges matched cluster pairs under a new internal
    node.  When a round makes no progress (no edges left — disconnected
    remnants), all remaining clusters join under the root.
    """
    rng = ensure_rng(seed)
    asm = TreeAssembler(g)
    # Current clusters: tree-node id per cluster + member vertex lists.
    node_of_cluster: List[int] = [asm.add_leaf(v) for v in range(g.n)]
    members: List[np.ndarray] = [np.asarray([v], dtype=np.int64) for v in range(g.n)]
    current = g

    for _ in range(max_rounds):
        if len(node_of_cluster) == 1:
            break
        if current.m == 0:
            # Disconnected leftovers: a single root joins them for free.
            root = asm.add_internal(node_of_cluster)
            node_of_cluster = [root]
            break
        match = heavy_edge_matching(current, rng)
        labels = np.full(current.n, -1, dtype=np.int64)
        new_nodes: List[int] = []
        new_members: List[np.ndarray] = []
        nxt = 0
        for v in range(current.n):
            if labels[v] >= 0:
                continue
            u = int(match[v])
            if u >= 0 and labels[u] < 0:
                labels[v] = labels[u] = nxt
                new_nodes.append(
                    asm.add_internal([node_of_cluster[v], node_of_cluster[u]])
                )
                new_members.append(
                    np.concatenate([members[v], members[u]])
                )
            else:
                labels[v] = nxt
                new_nodes.append(node_of_cluster[v])
                new_members.append(members[v])
            nxt += 1
        if nxt == current.n:
            # No pair matched (e.g. a perfect independent remnant): join all.
            root = asm.add_internal(node_of_cluster)
            node_of_cluster = [root]
            break
        current = current.contract(labels)
        node_of_cluster = new_nodes
        members = new_members

    if len(node_of_cluster) != 1:
        root = asm.add_internal(node_of_cluster)
        node_of_cluster = [root]
    return asm.finish(node_of_cluster[0])
