"""Contraction (heavy-edge agglomeration) decomposition trees.

Bottom-up counterpart of the recursive-bisection builders: repeatedly
compute a randomized *heavy-edge matching* (prefer merging the pairs that
communicate most) and contract matched pairs into supervertices; the merge
forest, read top-down, is the decomposition tree.  The intuition mirrors
multilevel partitioners: heavily-communicating vertices should share a
subtree so any partition cutting high in the tree leaves them together.

Because every round at least halves the number of clusters that found a
match, the tree has O(log n) expected depth on bounded-degree graphs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

import repro.kernels as kernels
from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree, TreeAssembler
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "contraction_decomposition_tree",
    "heavy_edge_matching",
    "matching_labels",
    "aggregate_unmatched",
    "two_hop_matching",
]


def heavy_edge_matching(
    g: Graph,
    rng: np.random.Generator,
    *,
    vertex_weights: Optional[np.ndarray] = None,
    max_weight: Optional[float] = None,
    rounds: int = 8,
) -> np.ndarray:
    """Vectorised randomized heavy-edge matching (the METIS coarsening step).

    Runs proposal rounds over the CSR adjacency: each free vertex
    proposes to its heaviest *eligible* free neighbour (ties broken by a
    seeded random vertex priority, so results are deterministic given
    ``rng``), and mutual proposals become matches.  A handful of rounds
    reaches a maximal-ish matching — each round matches a constant
    fraction of the surviving proposal graph in expectation — without any
    per-vertex Python loop.

    When ``vertex_weights`` and ``max_weight`` are given, a pair is only
    eligible if the merged supervertex stays within ``max_weight``.  The
    multilevel front-end uses this with ``max_weight = leaf_capacity`` so
    every coarse level remains a feasible HGP instance.

    Returns ``match[v]`` = partner id or ``-1`` (unmatched).

    The proposal rounds themselves are the ``heavy_edge_match`` kernel
    dispatched through :mod:`repro.kernels`; this wrapper draws the
    random tie-break priority (before anything else, preserving the rng
    stream) and precomputes the per-CSR-entry weight-cap mask.
    """
    n = g.n
    if n == 0 or g.m == 0:
        return np.full(n, -1, dtype=np.int64)
    tie = rng.permutation(n).astype(np.int64)
    if vertex_weights is not None and max_weight is not None:
        vw = np.asarray(vertex_weights, dtype=np.float64)
        deg = np.diff(g.indptr)
        owner = np.repeat(np.arange(n, dtype=np.int64), deg)
        fits = (vw[owner] + vw[g.indices]) <= max_weight * (1 + 1e-9)
    else:
        fits = np.ones(g.indices.size, dtype=bool)
    return kernels.heavy_edge_match(
        g.indptr, g.indices, g.adj_weights, tie, fits, max(1, rounds)
    )


def matching_labels(match: np.ndarray) -> np.ndarray:
    """Dense supervertex labels from a matching vector.

    Matched pairs share the label of their smaller endpoint; unmatched
    vertices keep their own.  Labels are re-numbered ``0..L-1`` in
    representative order, so the output is deterministic given ``match``
    and directly consumable by :meth:`repro.graph.Graph.contract`.
    """
    match = np.asarray(match, dtype=np.int64)
    n = match.size
    ids = np.arange(n, dtype=np.int64)
    rep = np.where(match >= 0, np.minimum(ids, match), ids)
    _, labels = np.unique(rep, return_inverse=True)
    return labels.astype(np.int64, copy=False)


def aggregate_unmatched(
    g: Graph,
    match: np.ndarray,
    *,
    vertex_weights: Optional[np.ndarray] = None,
    max_weight: Optional[float] = None,
) -> np.ndarray:
    """Merge unmatched vertices into their heaviest neighbour's cluster.

    Matching alone coarsens star-like regions one leaf per level (a hub
    can match only one spoke), so heavy-tailed graphs stall.  This is the
    standard escape hatch: every vertex the matching left single joins
    the cluster of its heaviest neighbour, *many-to-one*, lightest
    joiners first, subject to the same ``max_weight`` cap as matching.
    Returns dense supervertex labels (a drop-in replacement for
    :func:`matching_labels` output).

    Chains are resolved conservatively: a single vertex whose heaviest
    neighbour also moves may end up alone in the neighbour's abandoned
    cluster — still a valid labelling, just no shrink for that vertex.
    """
    labels = matching_labels(match)
    n = g.n
    if n == 0 or g.m == 0:
        return labels
    deg = np.diff(g.indptr)
    free = (np.asarray(match) < 0) & (deg > 0)
    if not free.any():
        return labels
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    order = np.lexsort((-g.adj_weights, owner))
    # Sorted stably by owner, each vertex's segment keeps its CSR
    # position, so the segment's first sorted entry is its heaviest edge.
    heavy_nbr = np.full(n, -1, dtype=np.int64)
    nz = deg > 0
    heavy_nbr[nz] = g.indices[order[g.indptr[:-1][nz]]]
    fv = np.nonzero(free)[0]
    target = labels[heavy_nbr[fv]]
    if vertex_weights is None or max_weight is None:
        labels[fv] = target
    else:
        vw = np.asarray(vertex_weights, dtype=np.float64)
        base = np.bincount(labels, weights=vw, minlength=int(labels.max()) + 1)
        ord2 = np.lexsort((vw[fv], target))
        fv_s = fv[ord2]
        t_s = target[ord2]
        w_s = vw[fv_s]
        # Per-target prefix sums: accept joiners while the cluster stays
        # under the cap (segment-local cumsum via a forward-filled offset).
        cs = np.cumsum(w_s)
        starts = np.nonzero(np.diff(t_s))[0] + 1
        offset = np.zeros(fv_s.size, dtype=np.float64)
        offset[starts] = cs[starts - 1]
        np.maximum.accumulate(offset, out=offset)
        ok = base[t_s] + (cs - offset) <= max_weight * (1 + 1e-9)
        labels[fv_s[ok]] = t_s[ok]
    _, labels = np.unique(labels, return_inverse=True)
    return labels.astype(np.int64, copy=False)


def two_hop_matching(
    g: Graph,
    match: np.ndarray,
    *,
    vertex_weights: Optional[np.ndarray] = None,
    max_weight: Optional[float] = None,
) -> np.ndarray:
    """Cap-aware 2-hop matching: pair unmatched vertices sharing a hub.

    On star-like graphs both the matching (hub pairs one spoke) and the
    many-to-one aggregation (the hub cluster rides the ``max_weight``
    cap) stall, leaving thousands of singleton spokes per level.  The
    standard multilevel escape is to match such vertices *with each
    other* through their common heaviest neighbour: two spokes of one
    hub are 2-hop neighbours and merging them needs no hub capacity.

    Unmatched vertices are grouped by heaviest neighbour and paired
    greedily lightest-first within each group, subject to the same
    ``max_weight`` cap as matching.  Returns a copy of ``match`` with
    the new pairs filled in (feed it to :func:`aggregate_unmatched` /
    :func:`matching_labels`).  Deterministic given ``match``; the
    per-vertex loop only runs on the stalled remainder, so the cost is
    bounded by the stall itself.
    """
    match = np.asarray(match, dtype=np.int64).copy()
    n = g.n
    if n == 0 or g.m == 0:
        return match
    deg = np.diff(g.indptr)
    free = (match < 0) & (deg > 0)
    if not free.any():
        return match
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    order = np.lexsort((-g.adj_weights, owner))
    heavy_nbr = np.full(n, -1, dtype=np.int64)
    nz = deg > 0
    heavy_nbr[nz] = g.indices[order[g.indptr[:-1][nz]]]
    fv = np.nonzero(free)[0]
    key = heavy_nbr[fv]
    if vertex_weights is not None and max_weight is not None:
        vw = np.asarray(vertex_weights, dtype=np.float64)
        limit = float(max_weight) * (1 + 1e-9)
    else:
        vw = np.zeros(n, dtype=np.float64)
        limit = np.inf
    ord2 = np.lexsort((fv, vw[fv], key))
    pending = -1
    pending_key = -1
    for v, k in zip(fv[ord2].tolist(), key[ord2].tolist()):
        if k != pending_key or pending < 0:
            pending, pending_key = v, k
            continue
        if vw[pending] + vw[v] <= limit:
            match[pending] = v
            match[v] = pending
            pending = -1
        else:
            # Weights ascend within the group: if the lightest pending
            # cannot pair with v, no later pair in this group fits either.
            pending = v
    return match


def contraction_decomposition_tree(
    g: Graph, seed: SeedLike = None, max_rounds: int = 10_000
) -> DecompositionTree:
    """Decomposition tree via iterated heavy-edge contraction.

    Each matching round merges matched cluster pairs under a new internal
    node.  When a round makes no progress (no edges left — disconnected
    remnants), all remaining clusters join under the root.
    """
    rng = ensure_rng(seed)
    asm = TreeAssembler(g)
    # Current clusters: tree-node id per cluster + member vertex lists.
    node_of_cluster: List[int] = [asm.add_leaf(v) for v in range(g.n)]
    members: List[np.ndarray] = [np.asarray([v], dtype=np.int64) for v in range(g.n)]
    current = g

    for _ in range(max_rounds):
        if len(node_of_cluster) == 1:
            break
        if current.m == 0:
            # Disconnected leftovers: a single root joins them for free.
            root = asm.add_internal(node_of_cluster)
            node_of_cluster = [root]
            break
        match = heavy_edge_matching(current, rng)
        labels = np.full(current.n, -1, dtype=np.int64)
        new_nodes: List[int] = []
        new_members: List[np.ndarray] = []
        nxt = 0
        for v in range(current.n):
            if labels[v] >= 0:
                continue
            u = int(match[v])
            if u >= 0 and labels[u] < 0:
                labels[v] = labels[u] = nxt
                new_nodes.append(
                    asm.add_internal([node_of_cluster[v], node_of_cluster[u]])
                )
                new_members.append(
                    np.concatenate([members[v], members[u]])
                )
            else:
                labels[v] = nxt
                new_nodes.append(node_of_cluster[v])
                new_members.append(members[v])
            nxt += 1
        if nxt == current.n:
            # No pair matched (e.g. a perfect independent remnant): join all.
            root = asm.add_internal(node_of_cluster)
            node_of_cluster = [root]
            break
        current = current.contract(labels)
        node_of_cluster = new_nodes
        members = new_members

    if len(node_of_cluster) != 1:
        root = asm.add_internal(node_of_cluster)
        node_of_cluster = [root]
    return asm.finish(node_of_cluster[0])
