"""FRT-style random hierarchical decomposition trees.

Fakcharoenphol–Rao–Talwar (FRT) trees probabilistically embed a metric
into a distribution of hierarchically-well-separated trees with expected
distortion ``O(log n)``.  Räcke's construction (the one the paper invokes)
is the *cut/congestion* analogue of this *distance* embedding; we include
FRT trees in the ensemble because on communication graphs the metric
``len(e) = 1 / w(e)`` places heavily-communicating vertices close
together, so low-diameter decompositions group exactly the vertices a
good placement should co-locate.

Implementation is the standard one: a random vertex permutation ``π`` and
a random radius multiplier ``β ∈ [1, 2)``; level-``i`` clusters are formed
by assigning each vertex to the first ``π``-vertex within distance
``β · 2^i``.  Nested levels give a laminar family, i.e. a tree.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.graph.ops import all_pairs_dijkstra
from repro.decomposition.tree import DecompositionTree, TreeAssembler
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["frt_decomposition_tree"]


def frt_decomposition_tree(g: Graph, seed: SeedLike = None) -> DecompositionTree:
    """Sample one FRT tree over the ``1 / w`` shortest-path metric.

    Requires a connected graph (the metric must be finite).  All-pairs
    distances are computed with repeated Dijkstra, so this builder is
    meant for the ≲ 2000-vertex instances the evaluation uses.
    """
    if g.n == 0:
        raise InvalidInputError("empty graph")
    if g.n == 1:
        asm = TreeAssembler(g)
        leaf = asm.add_leaf(0)
        return asm.finish(asm.add_internal([leaf]))
    if not g.is_connected():
        raise InvalidInputError(
            "frt_decomposition_tree requires a connected graph; "
            "decompose components first"
        )
    rng = ensure_rng(seed)
    dist = all_pairs_dijkstra(g)
    finite = dist[np.isfinite(dist)]
    diameter = float(finite.max())
    if diameter == 0:  # pragma: no cover - only multi-vertex zero metric
        diameter = 1.0

    pi = rng.permutation(g.n)
    beta = float(rng.uniform(1.0, 2.0))

    # Number of levels: radii beta * 2^i down to below the minimum distance.
    positive = finite[finite > 0]
    min_dist = float(positive.min()) if positive.size else 1.0
    levels: List[np.ndarray] = []
    radius = beta * diameter
    # Top cluster: everything together.
    labels = np.zeros(g.n, dtype=np.int64)
    levels.append(labels.copy())
    while radius >= min_dist / 2 and len(levels) < 64:
        radius /= 2.0
        new_labels = np.full(g.n, -1, dtype=np.int64)
        for v in range(g.n):
            # First permutation vertex within `radius`, but respecting the
            # parent cluster (FRT cuts within clusters only).
            for c in pi:
                if dist[c, v] <= radius and labels[c] == labels[v]:
                    new_labels[v] = int(c)
                    break
            if new_labels[v] < 0:
                new_labels[v] = v  # own singleton (always within radius 0)
        # Compose with parent labels to stay laminar.
        combined = labels * g.n + new_labels
        _, labels = np.unique(combined, return_inverse=True)
        levels.append(labels.copy())
        if np.unique(labels).size == g.n:
            break

    # Build the tree from the nested label sequence.
    asm = TreeAssembler(g)
    # Deepest level: force singletons.
    leaf_nodes = [asm.add_leaf(v) for v in range(g.n)]
    # node id per (cluster at current level)
    cluster_nodes = {v: leaf_nodes[v] for v in range(g.n)}
    cluster_labels = np.arange(g.n, dtype=np.int64)
    for labels in levels[::-1]:
        groups: dict[int, List[int]] = {}
        for v in range(g.n):
            groups.setdefault(int(labels[v]), []).append(int(cluster_labels[v]))
        new_nodes: dict[int, int] = {}
        for lab, members in groups.items():
            uniq = sorted(set(members))
            if len(uniq) == 1:
                new_nodes[lab] = cluster_nodes[uniq[0]]
            else:
                new_nodes[lab] = asm.add_internal([cluster_nodes[c] for c in uniq])
        cluster_nodes = new_nodes
        cluster_labels = labels.copy()
    roots = sorted(set(int(l) for l in cluster_labels))
    if len(roots) == 1:
        root = cluster_nodes[roots[0]]
    else:  # pragma: no cover - connected graphs always end with one root
        root = asm.add_internal([cluster_nodes[r] for r in roots])
    return asm.finish(root)
