"""Placement-guided decomposition trees (warm-started iteration).

An extension beyond the paper: once *any* placement exists, its laminar
structure (which tasks share a leaf, which leaves share a socket, …) is
itself a hierarchical decomposition of ``V(G)`` — and usually a very
good one, because the placement was chosen to keep chatty tasks
together.  :func:`placement_guided_tree` materialises that structure as
a decomposition tree (splitting within-leaf groups by recursive spectral
bisection down to singletons), and :func:`solve_hgp_iterated` closes the
loop: solve → build the guided tree from the winner → re-solve on an
ensemble seeded with it → keep the best — a self-improvement iteration
whose cost is monotonically non-increasing by construction (the previous
winner remains a candidate).

Soundness is inherited: a guided tree is an ordinary decomposition tree,
so Proposition 1 applies unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.graph.spectral import fiedler_vector, sweep_cut
from repro.decomposition.tree import DecompositionTree, TreeAssembler
from repro.hierarchy.placement import Placement
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["placement_guided_tree", "solve_hgp_iterated"]


def placement_guided_tree(
    placement: Placement, seed: SeedLike = None
) -> DecompositionTree:
    """Decomposition tree mirroring a placement's hierarchy structure.

    Internal nodes correspond to the H-nodes whose subtrees host at
    least one task; within each leaf's task group, vertices are split
    recursively by spectral bisection down to singletons (the DP needs
    leaf-level granularity to consider re-splitting the group).
    """
    g = placement.graph
    hier = placement.hierarchy
    rng = ensure_rng(seed)
    asm = TreeAssembler(g)

    def split_group(vertices: np.ndarray) -> int:
        """Binary split of a same-leaf group down to singleton leaves."""
        if vertices.size == 1:
            return asm.add_leaf(int(vertices[0]))
        sub, back = g.subgraph(vertices)
        ncomp, labels = sub.connected_components()
        if ncomp > 1:
            kids = [
                split_group(back[np.nonzero(labels == c)[0]]) for c in range(ncomp)
            ]
            return asm.add_internal(kids)
        if sub.n == 2 or sub.m == 0:
            half = sub.n // 2
            mask = np.zeros(sub.n, dtype=bool)
            mask[:half] = True
        else:
            fv = fiedler_vector(sub, seed=rng)
            mask, _ = sweep_cut(sub, fv, balance_fraction=0.25)
            if not (0 < mask.sum() < sub.n):
                mask = np.zeros(sub.n, dtype=bool)
                mask[: sub.n // 2] = True
        left = split_group(back[np.nonzero(mask)[0]])
        right = split_group(back[np.nonzero(~mask)[0]])
        return asm.add_internal([left, right])

    def build(level: int, node: int) -> Optional[int]:
        if level == hier.h:
            members = np.nonzero(placement.leaf_of == node)[0]
            if members.size == 0:
                return None
            return split_group(members)
        kids = [
            child_id
            for child in hier.children(level, node)
            if (child_id := build(level + 1, int(child))) is not None
        ]
        if not kids:
            return None
        if len(kids) == 1:
            return kids[0]
        return asm.add_internal(kids)

    root = build(0, 0)
    if root is None:
        raise InvalidInputError("placement hosts no tasks")
    return asm.finish(root)


def solve_hgp_iterated(
    g: Graph,
    hierarchy,
    demands: Sequence[float],
    config=None,
    rounds: int = 2,
    telemetry=None,
):
    """Iterate the pipeline with placement-guided warm-started trees.

    Both the initial ensemble solve and every guided round run through
    the shared staged engine, so the whole iteration emits one structured
    run report (guided trees appear as extra member records with
    ``method == "guided"``).

    Parameters
    ----------
    g, hierarchy, demands:
        The instance.
    config:
        Base :class:`repro.core.SolverConfig` (default constructed when
        ``None``).
    rounds:
        Guided re-solve rounds after the initial ensemble solve
        (0 = plain :func:`repro.core.solve_hgp`).
    telemetry:
        Shared :class:`repro.core.telemetry.Telemetry` collector
        (``None`` = a fresh ``Telemetry("guided")``, attached to the
        returned result).

    Returns
    -------
    HGPResult
        Result whose cost is ≤ the plain pipeline's (the incumbent always
        stays a candidate); ``placement.meta['guided_rounds']`` records
        how many rounds actually improved.
    """
    from repro.core.config import SolverConfig
    from repro.core.engine import run_pipeline, solve_member
    from repro.core.solver import HGPResult
    from repro.core.telemetry import Telemetry

    cfg = config if config is not None else SolverConfig()
    tel = telemetry if telemetry is not None else Telemetry("guided")
    d = np.asarray(demands, dtype=np.float64)
    base = run_pipeline(g, hierarchy, d, cfg, telemetry=tel)
    result = HGPResult(
        base.placement,
        base.tree_costs,
        base.dp_costs,
        tel.to_stopwatch(),
        base.grid,
        telemetry=tel,
    )
    improved_rounds = 0
    for r in range(rounds):
        with tel.span("trees"):
            guided = placement_guided_tree(result.placement, seed=(cfg.seed or 0) + r)
            guided.method = "guided"
        outcome = solve_member(
            guided, hierarchy, d, cfg, base.grid, index=len(tel.members)
        )
        tel.add_seconds("dp", outcome.timings.total("dp"))
        tel.add_seconds("repair", outcome.timings.total("repair"))
        tel.record_member(outcome.record)
        placement = outcome.placement
        if cfg.refine and cfg.refine_passes > 0:
            from repro.baselines.local_search import refine_placement

            with tel.span("refine"):
                placement = refine_placement(
                    placement,
                    max_passes=cfg.refine_passes,
                    max_violation=max(1.0, placement.max_violation()),
                    allow_swaps=True,
                )
        result.tree_costs.append(placement.cost())
        result.dp_costs.append(outcome.dp_cost)
        if placement.cost() < result.cost:
            result.placement = placement.with_meta(
                solver="hgp_iterated", config=cfg.describe()
            )
            improved_rounds += 1
    result.placement = result.placement.with_meta(guided_rounds=improved_rounds)
    result.stopwatch = tel.to_stopwatch()
    return result
