"""Min-cut–guided decomposition trees.

Splits clusters along *actual* minimum cuts: Stoer–Wagner global min cut
for small pieces (exact sparsest separation by weight) and a
Gomory–Hu-tree split (remove the lightest flow-tree edge) as an
alternative criterion.  Min-cut splits can be very unbalanced — that is
fine for decomposition trees, whose purpose is to expose cheap cuts to
the DP, not to balance anything (balance is the DP's job via capacities).

A vertex-count ceiling keeps the O(n³)-ish cut routines off large
clusters; above it we defer to the spectral split.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.spectral import fiedler_vector, sweep_cut
from repro.flow.mincut import stoer_wagner
from repro.flow.gomory_hu import gomory_hu_tree
from repro.decomposition.recursive import build_recursive_tree
from repro.decomposition.tree import DecompositionTree
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["mincut_decomposition_tree", "gomory_hu_decomposition_tree"]


def mincut_decomposition_tree(
    g: Graph,
    exact_below: int = 64,
    seed: SeedLike = None,
) -> DecompositionTree:
    """Recursive Stoer–Wagner splits (spectral above ``exact_below``)."""
    rng = ensure_rng(seed)

    def split(sub: Graph, r: np.random.Generator) -> np.ndarray:
        if sub.m == 0:
            mask = np.zeros(sub.n, dtype=bool)
            mask[: sub.n // 2] = True
            return mask
        if sub.n <= exact_below:
            _, mask = stoer_wagner(sub)
            return mask
        fv = fiedler_vector(sub, seed=r)
        mask, _ = sweep_cut(sub, fv, balance_fraction=0.2)
        return mask

    return build_recursive_tree(g, split, seed=rng)


def gomory_hu_decomposition_tree(
    g: Graph,
    exact_below: int = 48,
    seed: SeedLike = None,
) -> DecompositionTree:
    """Recursive splits along the lightest Gomory–Hu tree edge.

    Removing the minimum-flow edge of the flow tree splits the cluster at
    its *globally cheapest pairwise min cut*, grouping vertices by cut
    connectivity.  Falls back to spectral on large clusters (the flow tree
    costs ``n − 1`` max-flows).
    """
    rng = ensure_rng(seed)

    def split(sub: Graph, r: np.random.Generator) -> np.ndarray:
        if sub.m == 0:
            mask = np.zeros(sub.n, dtype=bool)
            mask[: sub.n // 2] = True
            return mask
        if sub.n <= exact_below:
            parent, flow = gomory_hu_tree(sub)
            # Lightest tree edge (skip the root's unused slot 0).
            cand = np.arange(1, sub.n)
            e = int(cand[int(np.argmin(flow[1:]))])
            # Side = subtree under `e` in the flow tree.
            children: list[list[int]] = [[] for _ in range(sub.n)]
            for v in range(sub.n):
                if parent[v] >= 0:
                    children[int(parent[v])].append(v)
            mask = np.zeros(sub.n, dtype=bool)
            stack = [e]
            while stack:
                v = stack.pop()
                mask[v] = True
                stack.extend(children[v])
            return mask
        fv = fiedler_vector(sub, seed=r)
        mask, _ = sweep_cut(sub, fv, balance_fraction=0.2)
        return mask

    return build_recursive_tree(g, split, seed=rng)
