"""The tree-ensemble stand-in for Räcke's distribution (Theorems 6–7).

Räcke (STOC 2008) constructs ``O(|E| log n)`` decomposition trees whose
convex combination approximates *every* cut of ``G`` within ``O(log n)``.
The paper only consumes this as a black box: solve HGPT on each tree, map
the solutions back, return the cheapest (Theorem 7's ``arg min``).

We substitute a heterogeneous ensemble of cut-based heuristic trees
(DESIGN.md §2 records the substitution).  Soundness is preserved because
Proposition 1 holds for *any* decomposition tree — mapped solutions are
always genuinely costed in ``G`` — and coverage is approximated by
diversifying both the *builder family* (spectral, contraction, FRT,
min-cut) and the random seeds within each family.  Experiment E6 measures
the marginal value of ensemble size.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree
from repro.decomposition.spectral_tree import spectral_decomposition_tree
from repro.decomposition.contraction import contraction_decomposition_tree
from repro.decomposition.frt import frt_decomposition_tree
from repro.decomposition.mincut_split import (
    gomory_hu_decomposition_tree,
    mincut_decomposition_tree,
)
from repro.cache import get_cache, seed_token
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["BUILDERS", "build_tree", "racke_ensemble", "ensemble_cache_parts"]

BuilderFn = Callable[..., DecompositionTree]

#: Registry of decomposition-tree builders available to the ensemble.
BUILDERS: Dict[str, BuilderFn] = {
    "spectral": spectral_decomposition_tree,
    "contraction": contraction_decomposition_tree,
    "frt": frt_decomposition_tree,
    "mincut": mincut_decomposition_tree,
    "gomory_hu": gomory_hu_decomposition_tree,
}

#: Default round-robin order used when the caller does not pick methods.
DEFAULT_METHODS: Sequence[str] = ("spectral", "contraction", "frt", "mincut")


def build_tree(g: Graph, method: str, seed: SeedLike = None) -> DecompositionTree:
    """Build a single decomposition tree with the named builder."""
    try:
        builder = BUILDERS[method]
    except KeyError:
        raise InvalidInputError(
            f"unknown builder {method!r}; available: {sorted(BUILDERS)}"
        ) from None
    tree = builder(g, seed=seed)
    tree.method = method
    return tree


def ensemble_cache_parts(
    g: Graph,
    n_trees: int,
    methods: Sequence[str] | None,
    seed: SeedLike,
) -> tuple | None:
    """Cache-key parts for one ensemble build, or ``None`` if uncacheable.

    The key covers everything that determines the output: the graph's
    content digest, the ensemble size, the *requested* method cycle (its
    resolution — validation, FRT connectivity drop — is a deterministic
    function of the graph, so the raw spec suffices), and the seed
    material.  Seeds without a stable token (``None``, live generators)
    make the build uncacheable.
    """
    token = seed_token(seed)
    if token is None:
        return None
    methods_key = tuple(methods) if methods is not None else None
    return (g.digest(), int(n_trees), methods_key, token)


def racke_ensemble(
    g: Graph,
    n_trees: int = 8,
    methods: Sequence[str] | None = None,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> List[DecompositionTree]:
    """Build a diversified ensemble of decomposition trees.

    Parameters
    ----------
    g:
        Graph to decompose (FRT members require connectivity; they are
        skipped automatically on disconnected inputs).
    n_trees:
        Ensemble size.  Theorem 6 would use ``O(|E| log n)``; E6 shows a
        handful already captures most of the benefit on our workloads.
    methods:
        Builder names cycled round-robin; defaults to
        :data:`DEFAULT_METHODS`.
    seed:
        Master seed; members receive independent child streams.
    use_cache:
        Consult the process cache (kind ``"trees"``) before building.
        Only reproducible seed material (ints, ``SeedSequence``) is
        cacheable; ``None`` and live generators always build fresh.

    Returns
    -------
    list[DecompositionTree]
    """
    if n_trees < 1:
        raise InvalidInputError(f"n_trees must be >= 1, got {n_trees}")
    requested = list(methods) if methods is not None else list(DEFAULT_METHODS)
    for mname in requested:
        if mname not in BUILDERS:
            raise InvalidInputError(
                f"unknown builder {mname!r}; available: {sorted(BUILDERS)}"
            )

    def build() -> List[DecompositionTree]:
        chosen = requested
        if not g.is_connected():
            chosen = [m for m in chosen if m != "frt"] or ["spectral"]
        rngs = spawn_rngs(seed, n_trees)
        return [
            build_tree(g, chosen[i % len(chosen)], seed=rngs[i])
            for i in range(n_trees)
        ]

    if not use_cache:
        return build()
    parts = ensemble_cache_parts(g, n_trees, methods, seed)
    trees = get_cache().get_or_build("trees", parts, build)
    # Shallow copy so callers mutating the list cannot corrupt the entry.
    return list(trees)
