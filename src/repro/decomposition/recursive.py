"""Recursive-splitting skeleton shared by cut-based tree builders.

A builder only supplies a *split function* mapping a connected subgraph to
one side of a 2-way cut; the skeleton handles everything else —
disconnected pieces become siblings (a zero-cost split), singletons become
leaves, degenerate splits fall back to a balanced random split so the
recursion always terminates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree, TreeAssembler
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["build_recursive_tree", "SplitFn"]

# A split function sees (connected subgraph, rng) and returns a boolean
# side mask over the subgraph's local vertex ids.
SplitFn = Callable[[Graph, np.random.Generator], np.ndarray]


def build_recursive_tree(
    g: Graph, split_fn: SplitFn, seed: SeedLike = None
) -> DecompositionTree:
    """Build a decomposition tree by recursively 2-splitting vertex sets.

    Parameters
    ----------
    g:
        The graph to decompose.
    split_fn:
        Maps a *connected* subgraph with ``n >= 2`` to a boolean side
        mask; a trivial (empty/full) mask triggers the random fallback.
    seed:
        RNG seed threaded through all splits.

    Returns
    -------
    DecompositionTree
        Tree whose internal nodes correspond to the recursive clusters.
    """
    rng = ensure_rng(seed)
    asm = TreeAssembler(g)

    def build(vertices: np.ndarray) -> int:
        if vertices.size == 1:
            return asm.add_leaf(int(vertices[0]))
        sub, back = g.subgraph(vertices)
        ncomp, labels = sub.connected_components()
        if ncomp > 1:
            kids = [
                build(back[np.nonzero(labels == c)[0]]) for c in range(ncomp)
            ]
            return asm.add_internal(kids)
        if vertices.size == 2:
            return asm.add_internal([build(vertices[:1]), build(vertices[1:])])
        mask = split_fn(sub, rng)
        n_side = int(mask.sum())
        if n_side == 0 or n_side == sub.n:
            # Degenerate split: random balanced fallback keeps termination.
            mask = np.zeros(sub.n, dtype=bool)
            mask[rng.permutation(sub.n)[: sub.n // 2]] = True
        left = build(back[np.nonzero(mask)[0]])
        right = build(back[np.nonzero(~mask)[0]])
        return asm.add_internal([left, right])

    root = build(np.arange(g.n, dtype=np.int64))
    return asm.finish(root)


def components_first(g: Graph, seed: SeedLike, split_fn: SplitFn) -> DecompositionTree:
    """Convenience wrapper kept for API symmetry (skeleton already handles
    disconnected graphs)."""
    return build_recursive_tree(g, split_fn, seed=seed)
