"""Spectral recursive-bisection decomposition trees.

Splits every cluster along a balanced sweep cut of its Fiedler embedding.
This is the workhorse builder: on mesh-like and clustered graphs the
Fiedler cut tracks the sparsest cut closely (Cheeger), so the resulting
tree's edge weights are near-minimal and the HGPT DP sees cut costs close
to what an optimal partitioner could achieve in ``G``.

For ensemble diversity (Theorem 7 takes an ``arg min`` over a tree
*distribution*), the balance window and the sweep-cut start are jittered
per tree via the RNG.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.spectral import fiedler_vector, sweep_cut
from repro.decomposition.recursive import build_recursive_tree
from repro.decomposition.tree import DecompositionTree
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["spectral_decomposition_tree"]


def spectral_decomposition_tree(
    g: Graph,
    balance_fraction: float = 0.25,
    jitter: float = 0.15,
    seed: SeedLike = None,
) -> DecompositionTree:
    """Decomposition tree from recursive spectral bisection.

    Parameters
    ----------
    g:
        Graph to decompose.
    balance_fraction:
        Baseline lower bound on each side's vertex fraction; jittered per
        split to diversify ensemble members.
    jitter:
        Half-width of the uniform jitter applied to ``balance_fraction``
        (clipped to ``[0.05, 0.45]``).
    seed:
        RNG seed.
    """
    rng = ensure_rng(seed)

    def split(sub: Graph, r: np.random.Generator) -> np.ndarray:
        if sub.m == 0:  # isolated vertices: any split is free
            mask = np.zeros(sub.n, dtype=bool)
            mask[: sub.n // 2] = True
            return mask
        bf = float(np.clip(balance_fraction + r.uniform(-jitter, jitter), 0.05, 0.45))
        fv = fiedler_vector(sub, seed=r)
        mask, _ = sweep_cut(sub, fv, balance_fraction=bf)
        return mask

    return build_recursive_tree(g, split, seed=rng)
