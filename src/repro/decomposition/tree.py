"""Decomposition trees (paper Section 4).

A decomposition tree ``T`` of a graph ``G`` is a rooted tree whose leaves
are in bijection with ``V(G)`` (the node map ``m_V`` restricted to
leaves).  Every tree edge ``e_T = (v, parent(v))`` splits the leaves into
the set under ``v`` and the rest; its weight is defined (paper, Section 4)
as the total ``G``-weight crossing that split:

    ``w_T(e_T) = Σ_{(x,y) ∈ E(G), split separates x from y} w(x, y)``.

Two facts make these trees useful:

* **Proposition 1** — for any leaf subset ``P_T``,
  ``w_T(CUT_T(P_T)) ≥ w(CUT(m(P_T)))``: cut costs measured on the tree
  upper-bound true cut costs in ``G``.  Hence the DP cost of a tree
  solution upper-bounds the Eq. (1) cost of the mapped placement, and the
  pipeline's "solve each tree, keep the cheapest *mapped* solution" is
  sound for *any* tree family.
* **Theorem 6 (Räcke)** — there is a distribution of such trees that
  also *lower*-bounds cuts up to ``O(log n)``, giving the approximation
  factor.  We replace that (heavyweight) construction with an ensemble of
  cut-based heuristic trees (see :mod:`repro.decomposition.racke` and
  DESIGN.md's substitution note).

The class stores the tree in flat arrays and supports the exact
minimum-leaf-cut computation used to validate Proposition 1 in tests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidInputError, SolverError
from repro.graph.graph import Graph

__all__ = [
    "DecompositionTree",
    "TreeAssembler",
    "min_leaf_cut",
    "vertex_content_digests",
]


#: Per-graph memo of :func:`vertex_content_digests`, keyed on the graph's
#: content digest (small LRU — the streaming layer alternates between a
#: handful of live-graph snapshots during churn).
_VERTEX_DIGEST_CACHE: "OrderedDict[str, List[bytes]]" = OrderedDict()
_VERTEX_DIGEST_CACHE_MAX = 8


def vertex_content_digests(g: Graph) -> List[bytes]:
    """Per-vertex BLAKE2b digests of each vertex's induced CSR slice.

    ``digest[v]`` hashes vertex ``v``'s adjacency row — neighbour ids and
    incident edge weights in canonical CSR order — so it changes exactly
    when an edge incident to ``v`` appears, disappears, or is reweighted.
    These are the graph-content leaves of the subtree digests used by the
    incremental DP memo (see ``docs/performance.md`` §10): a subtree's
    digest is stable under churn that touches no vertex below it.

    Results are memoised per graph content digest (graphs are immutable).
    """
    key = g.digest()
    cached = _VERTEX_DIGEST_CACHE.get(key)
    if cached is not None:
        _VERTEX_DIGEST_CACHE.move_to_end(key)
        return cached
    out: List[bytes] = []
    indptr = g.indptr
    indices = g.indices
    weights = g.adj_weights
    for v in range(g.n):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        h = hashlib.blake2b(digest_size=16)
        h.update(indices[lo:hi].tobytes())
        h.update(weights[lo:hi].tobytes())
        out.append(h.digest())
    _VERTEX_DIGEST_CACHE[key] = out
    while len(_VERTEX_DIGEST_CACHE) > _VERTEX_DIGEST_CACHE_MAX:
        _VERTEX_DIGEST_CACHE.popitem(last=False)
    return out


class DecompositionTree:
    """Rooted decomposition tree over a graph's vertex set.

    Attributes
    ----------
    graph:
        The underlying graph ``G``.
    parent:
        ``parent[i]`` is the parent node id of tree node ``i`` (root: −1).
    children:
        Child id lists per node.
    edge_weight:
        ``edge_weight[i]`` is ``w_T`` of the edge to ``parent[i]``
        (0 at the root).
    leaf_vertex:
        ``leaf_vertex[i]`` is the ``G``-vertex at leaf ``i`` (−1 for
        internal nodes).
    leaf_node_of_vertex:
        Inverse map: tree node id of each ``G``-vertex's leaf.
    root:
        Root node id.
    """

    __slots__ = (
        "graph",
        "parent",
        "children",
        "edge_weight",
        "leaf_vertex",
        "leaf_node_of_vertex",
        "root",
        "method",
        "_leaf_sets",
    )

    def __init__(
        self,
        graph: Graph,
        parent: np.ndarray,
        children: List[List[int]],
        edge_weight: np.ndarray,
        leaf_vertex: np.ndarray,
        root: int,
    ):
        self.graph = graph
        self.parent = np.asarray(parent, dtype=np.int64)
        self.children = children
        self.edge_weight = np.asarray(edge_weight, dtype=np.float64)
        self.leaf_vertex = np.asarray(leaf_vertex, dtype=np.int64)
        self.root = int(root)
        n_nodes = self.parent.size
        if not (
            self.edge_weight.shape == (n_nodes,)
            and self.leaf_vertex.shape == (n_nodes,)
            and len(children) == n_nodes
        ):
            raise InvalidInputError("inconsistent decomposition-tree arrays")
        leaves = np.nonzero(self.leaf_vertex >= 0)[0]
        verts = self.leaf_vertex[leaves]
        if np.sort(verts).tolist() != list(range(graph.n)):
            raise InvalidInputError("tree leaves must biject with graph vertices")
        inv = np.full(graph.n, -1, dtype=np.int64)
        inv[verts] = leaves
        self.leaf_node_of_vertex = inv
        self.method: Optional[str] = None
        self._leaf_sets: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of tree nodes (internal + leaves)."""
        return int(self.parent.size)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf (hosts a graph vertex)."""
        return self.leaf_vertex[node] >= 0

    def postorder(self) -> np.ndarray:
        """Node ids in post-order (children before parents)."""
        order: List[int] = []
        stack: List[int] = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self.children[v])
        return np.asarray(order[::-1], dtype=np.int64)

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        best = 0
        for v in self.postorder()[::-1]:  # pre-order
            p = self.parent[v]
            if p >= 0:
                depths[v] = depths[p] + 1
                best = max(best, int(depths[v]))
        return best

    def leaf_sets(self) -> List[np.ndarray]:
        """For every node, the sorted ``G``-vertex ids below it (cached).

        Computed in one bottom-up pass; total memory O(n · depth).
        """
        if self._leaf_sets is None:
            sets: List[Optional[np.ndarray]] = [None] * self.n_nodes
            for v in self.postorder():
                if self.is_leaf(v):
                    sets[v] = np.asarray([self.leaf_vertex[v]], dtype=np.int64)
                else:
                    sets[v] = np.sort(
                        np.concatenate([sets[c] for c in self.children[v]])
                    )
            self._leaf_sets = sets  # type: ignore[assignment]
        return self._leaf_sets  # type: ignore[return-value]

    def validate(self) -> None:
        """Check structural invariants and the ``w_T`` definition.

        Raises :class:`SolverError` on any violation; used by tests and by
        builders' self-checks (cheap relative to tree construction).
        """
        sets = self.leaf_sets()
        for v in range(self.n_nodes):
            p = self.parent[v]
            if p >= 0 and v not in self.children[p]:
                raise SolverError(f"node {v} missing from parent {p}'s child list")
            if p < 0 and v != self.root:
                raise SolverError(f"non-root node {v} has no parent")
            if not self.is_leaf(v) and not self.children[v]:
                raise SolverError(f"internal node {v} has no children")
            if p >= 0:
                expected = self.graph.cut_weight(sets[v])
                if abs(expected - float(self.edge_weight[v])) > 1e-6 * max(
                    1.0, expected
                ):
                    raise SolverError(
                        f"edge weight at node {v}: stored {self.edge_weight[v]}, "
                        f"cut weight {expected}"
                    )
        if sets[self.root].size != self.graph.n:
            raise SolverError("root leaf set does not cover V(G)")


class TreeAssembler:
    """Incremental builder used by all decomposition-tree constructions.

    Builders call :meth:`add_leaf` / :meth:`add_internal` bottom-up and
    then :meth:`finish`, which computes every edge weight from the
    ``w_T`` definition (one cut-weight evaluation per tree node).
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self._parent: List[int] = []
        self._children: List[List[int]] = []
        self._leaf_vertex: List[int] = []

    def add_leaf(self, vertex: int) -> int:
        """Create a leaf node hosting ``vertex``; returns its node id."""
        if not (0 <= vertex < self.graph.n):
            raise InvalidInputError(f"vertex {vertex} out of range")
        nid = len(self._parent)
        self._parent.append(-1)
        self._children.append([])
        self._leaf_vertex.append(vertex)
        return nid

    def add_internal(self, children: Sequence[int]) -> int:
        """Create an internal node over existing ``children``; returns its id."""
        children = list(children)
        if len(children) < 1:
            raise InvalidInputError("internal node needs at least one child")
        nid = len(self._parent)
        self._parent.append(-1)
        self._children.append(children)
        self._leaf_vertex.append(-1)
        for c in children:
            if self._parent[c] != -1:
                raise InvalidInputError(f"node {c} already has a parent")
            self._parent[c] = nid
        return nid

    def finish(self, root: int) -> DecompositionTree:
        """Finalize: compute ``w_T`` for every edge and validate bijection."""
        n_nodes = len(self._parent)
        if not (0 <= root < n_nodes) or self._parent[root] != -1:
            raise InvalidInputError(f"bad root {root}")
        tree = DecompositionTree(
            self.graph,
            np.asarray(self._parent, dtype=np.int64),
            self._children,
            np.zeros(n_nodes),
            np.asarray(self._leaf_vertex, dtype=np.int64),
            root,
        )
        sets = tree.leaf_sets()
        weights = np.zeros(n_nodes)
        for v in range(n_nodes):
            if tree.parent[v] >= 0:
                weights[v] = tree.graph.cut_weight(sets[v])
        tree.edge_weight = weights
        return tree


def min_leaf_cut(tree: DecompositionTree, leaf_set: np.ndarray) -> float:
    """Exact minimum tree-cut separating a leaf set from the other leaves.

    This is ``w_T(CUT_T(P_T))`` from the paper: the cheapest set of tree
    edges whose removal disconnects every leaf in ``leaf_set`` (given as
    ``G``-vertex ids) from every leaf outside it.  Solved by a two-state
    tree DP — state = which side the component containing the node joins —
    in O(n) time.  Used to verify Proposition 1 empirically.
    """
    mark = np.zeros(tree.graph.n, dtype=bool)
    ls = np.asarray(leaf_set, dtype=np.int64)
    if ls.size:
        mark[ls] = True
    INF = float("inf")
    # dp[v] = (cost if v's component is S-side, cost if rest-side)
    dp = np.zeros((tree.n_nodes, 2))
    for v in tree.postorder():
        if tree.is_leaf(v):
            in_s = mark[tree.leaf_vertex[v]]
            dp[v, 0] = 0.0 if in_s else INF
            dp[v, 1] = INF if in_s else 0.0
        else:
            for side in (0, 1):
                total = 0.0
                for c in tree.children[v]:
                    w = float(tree.edge_weight[c])
                    total += min(dp[c, side], dp[c, 1 - side] + w)
                dp[v, side] = total
    return float(min(dp[tree.root, 0], dp[tree.root, 1]))
