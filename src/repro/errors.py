"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class; subclasses distinguish user errors (bad inputs)
from infeasibility (no valid assignment exists) and internal invariant
violations (bugs — these should never fire and are asserted in tests).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInputError(ReproError, ValueError):
    """An argument violates the documented contract (shape, range, type)."""


class InfeasibleError(ReproError):
    """No solution satisfies the constraints.

    Raised e.g. when total demand exceeds total hierarchy capacity, or a
    single vertex demand exceeds even the violated leaf capacity.
    """


class SolverError(ReproError):
    """An internal invariant of a solver was violated (a bug, not bad input)."""


class DegradedRunError(SolverError):
    """An ensemble run lost members it was not allowed to lose.

    Raised by the engine when one or more ensemble members failed past
    their retry budget and the run's resilience policy does not permit
    completing on the survivors (``allow_partial=False``, or fewer than
    ``min_members`` outcomes survived).  Carries whatever partial state
    the run produced so callers can inspect or salvage it.

    Attributes
    ----------
    outcomes:
        The surviving ``MemberOutcome`` objects, in ensemble order.
    failures:
        One ``MemberFailure`` record per lost member (kind, attempts,
        traceback digest).
    """

    def __init__(self, message: str, outcomes=None, failures=None):
        super().__init__(message)
        self.outcomes = list(outcomes or [])
        self.failures = list(failures or [])
