"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class; subclasses distinguish user errors (bad inputs)
from infeasibility (no valid assignment exists) and internal invariant
violations (bugs — these should never fire and are asserted in tests).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidInputError(ReproError, ValueError):
    """An argument violates the documented contract (shape, range, type)."""


class InfeasibleError(ReproError):
    """No solution satisfies the constraints.

    Raised e.g. when total demand exceeds total hierarchy capacity, or a
    single vertex demand exceeds even the violated leaf capacity.
    """


class SolverError(ReproError):
    """An internal invariant of a solver was violated (a bug, not bad input)."""
