"""Flow substrate: Dinic max-flow, min cuts, Gomory–Hu trees."""

from repro.flow.maxflow import DinicMaxFlow, max_flow
from repro.flow.mincut import isolating_cut_weight, st_min_cut, stoer_wagner
from repro.flow.gomory_hu import gomory_hu_tree, min_cut_from_tree

__all__ = [
    "DinicMaxFlow",
    "max_flow",
    "isolating_cut_weight",
    "st_min_cut",
    "stoer_wagner",
    "gomory_hu_tree",
    "min_cut_from_tree",
]
