"""Gomory–Hu trees (Gusfield's variant).

A Gomory–Hu tree of a weighted graph is a tree on the same vertex set
whose minimum edge on the path between ``u`` and ``v`` equals the
``u``–``v`` min-cut value.  We use Gusfield's simplification — ``n − 1``
max-flow calls on the *original* graph, no contractions — which produces
an equivalent flow tree.

Role here: the Gomory–Hu tree is a natural *cut structure summary* and
drives one of the decomposition-tree builders (splitting along the
lightest flow-tree edge groups vertices by cut connectivity, a cheap
stand-in for Räcke's cut-approximating trees).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cache import get_cache
from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.flow.maxflow import DinicMaxFlow
from repro.obs.metrics import get_registry

__all__ = ["gomory_hu_tree", "min_cut_from_tree"]


def gomory_hu_tree(
    g: Graph, use_cache: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Gusfield Gomory–Hu tree of a connected graph.

    The construction is fully deterministic, so results are cached by
    graph content digest (kind ``"gomory_hu"``) unless ``use_cache`` is
    ``False``; cache hits return fresh array copies.

    Returns
    -------
    (parent, flow) : tuple of numpy.ndarray
        ``parent[v]`` is the tree parent of ``v`` (``parent[0] = -1``)
        and ``flow[v]`` the min-cut value between ``v`` and ``parent[v]``
        (``flow[0]`` is unused).
    """
    if g.n < 1:
        raise InvalidInputError("empty graph")
    if use_cache:
        cache = get_cache()
        parts = (g.digest(),)
        hit, value = cache.lookup("gomory_hu", parts)
        if hit:
            parent, flow = value
            return parent.copy(), flow.copy()
        parent, flow = _build_gomory_hu(g)
        cache.store("gomory_hu", parts, (parent, flow))
        return parent.copy(), flow.copy()
    return _build_gomory_hu(g)


def _build_gomory_hu(g: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """The actual Gusfield construction (n − 1 max-flows)."""
    if g.n >= 2 and not g.is_connected():
        raise InvalidInputError("gomory_hu_tree requires a connected graph")
    n = g.n
    parent = np.zeros(n, dtype=np.int64)
    parent[0] = -1
    flow = np.zeros(n, dtype=np.float64)
    # One frozen engine for all n − 1 Gusfield iterations: each solve
    # restores capacities from the frozen master (np.copyto) instead of
    # rebuilding the arc arrays and adjacency lists from scratch.
    engine = DinicMaxFlow.from_graph(g) if n >= 2 else None
    for i in range(1, n):
        t = int(parent[i])
        value = engine.solve(i, t)
        side = engine.min_cut_side(i)
        flow[i] = value
        # Re-hang children of t that fell on i's side of the cut.
        for j in range(i + 1, n):
            if parent[j] == t and side[j]:
                parent[j] = i
        # Gusfield's parent swap to keep the tree consistent.
        if parent[t] >= 0 and side[parent[t]]:
            parent[i] = parent[t]
            parent[t] = i
            flow[i] = flow[t]
            flow[t] = value
    get_registry().counter(
        "repro_flow_gomoryhu_trees_total", "Gomory-Hu trees built"
    ).inc()
    return parent, flow


def min_cut_from_tree(
    parent: np.ndarray, flow: np.ndarray, u: int, v: int
) -> float:
    """Min-cut value between ``u`` and ``v`` read off the Gomory–Hu tree.

    The answer is the minimum ``flow`` edge on the unique tree path, found
    by walking both vertices to their common ancestor using depths.
    """
    n = parent.size
    if not (0 <= u < n and 0 <= v < n):
        raise InvalidInputError(f"bad vertex pair ({u}, {v})")
    if u == v:
        return float("inf")
    depth = np.zeros(n, dtype=np.int64)
    for x in range(n):
        d, y = 0, x
        while parent[y] >= 0:
            y = int(parent[y])
            d += 1
        depth[x] = d
    best = float("inf")
    a, b = u, v
    while depth[a] > depth[b]:
        best = min(best, float(flow[a]))
        a = int(parent[a])
    while depth[b] > depth[a]:
        best = min(best, float(flow[b]))
        b = int(parent[b])
    while a != b:
        best = min(best, float(flow[a]), float(flow[b]))
        a, b = int(parent[a]), int(parent[b])
    return best
