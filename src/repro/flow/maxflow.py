"""Dinic's maximum-flow algorithm on undirected capacity networks.

Used by the Gomory–Hu tree builder and by the flow-based decomposition
tree heuristics.  The implementation keeps the residual network in flat
numpy-backed arrays (arc lists with paired reverse arcs) and runs the
level-graph BFS / blocking-flow DFS loop with explicit stacks, which is
the standard way to make Dinic tolerable in pure Python: no recursion, no
per-arc object allocation inside the loop.

Complexity: ``O(V^2 E)`` in general, ``O(E sqrt(V))`` on unit networks —
ample for the instance sizes the decomposition builders feed it.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.obs.metrics import get_registry

__all__ = ["DinicMaxFlow", "max_flow"]


class DinicMaxFlow:
    """Reusable max-flow engine over a fixed set of arcs.

    Undirected edges are modelled as two directed arcs that *share*
    capacity via their residual pairing (add capacity ``c`` in both
    directions), which is the textbook reduction for undirected flow.

    Parameters
    ----------
    n:
        Number of vertices.

    Notes
    -----
    Arcs are appended with :meth:`add_edge` before calling
    :meth:`solve`.  After a solve, :meth:`min_cut_side` extracts the
    source side of a minimum cut from the final residual network.
    """

    def __init__(self, n: int):
        if n < 2:
            raise InvalidInputError("flow network needs n >= 2")
        self.n = n
        self._heads: List[int] = []
        self._caps: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._frozen = False
        self.heads: np.ndarray
        self.caps: np.ndarray

    @classmethod
    def from_graph(cls, g: Graph) -> "DinicMaxFlow":
        """Build (and freeze) an engine over ``g``'s undirected edges.

        The returned engine is ready for repeated ``solve`` calls on
        varying terminal pairs — each re-solve restores capacities from
        the frozen master via ``np.copyto`` instead of rebuilding the
        arc arrays (the Gomory–Hu builder runs ``n − 1`` solves on one
        engine this way).
        """
        engine = cls(g.n)
        for u, v, w in g.iter_edges():
            engine.add_edge(u, v, w)
        engine._freeze()
        return engine

    def add_edge(self, u: int, v: int, capacity: float, directed: bool = False) -> None:
        """Add an arc ``u -> v`` (and the paired residual arc).

        With ``directed=False`` (default) the reverse arc also gets
        ``capacity``, making the edge undirected.
        """
        if self._frozen:
            raise InvalidInputError("cannot add edges after solve()")
        if not (0 <= u < self.n and 0 <= v < self.n) or u == v:
            raise InvalidInputError(f"bad arc ({u}, {v})")
        if capacity < 0:
            raise InvalidInputError(f"capacity must be >= 0, got {capacity}")
        a = len(self._heads)
        self._heads.extend((v, u))
        self._caps.extend((capacity, capacity if not directed else 0.0))
        self._adj[u].append(a)
        self._adj[v].append(a + 1)

    def _freeze(self) -> None:
        self.heads = np.asarray(self._heads, dtype=np.int64)
        # Frozen master copy of the input capacities: re-solves restore
        # from this ndarray instead of reconverting the Python list.
        self._caps0 = np.asarray(self._caps, dtype=np.float64)
        self._caps0.setflags(write=False)
        self.caps = self._caps0.copy()
        self._frozen = True

    def solve(self, s: int, t: int) -> float:
        """Maximum ``s``–``t`` flow value; mutates residual capacities."""
        if s == t:
            raise InvalidInputError("source equals sink")
        if not self._frozen:
            self._freeze()
        else:
            # Re-solving on the same network requires fresh capacities;
            # restore from the frozen master without an O(m) list pass.
            np.copyto(self.caps, self._caps0)
        t0 = time.perf_counter()
        heads, caps, adj = self.heads, self.caps, self._adj
        n = self.n
        total = 0.0
        INF = float("inf")
        while True:
            # --- BFS: build level graph -------------------------------
            level = np.full(n, -1, dtype=np.int64)
            level[s] = 0
            queue = [s]
            qi = 0
            while qi < len(queue):
                v = queue[qi]
                qi += 1
                for a in adj[v]:
                    u = heads[a]
                    if caps[a] > 1e-12 and level[u] < 0:
                        level[u] = level[v] + 1
                        queue.append(int(u))
            if level[t] < 0:
                break
            # --- DFS: blocking flow with iteration pointers ------------
            it = [0] * n
            while True:
                pushed = self._dfs_push(s, t, INF, level, it)
                if pushed <= 1e-12:
                    break
                total += pushed
        metrics = get_registry()
        metrics.counter(
            "repro_flow_maxflow_calls_total", "Completed Dinic max-flow solves"
        ).inc()
        metrics.histogram(
            "repro_flow_maxflow_seconds", "Wall-clock seconds of one max-flow solve"
        ).observe(time.perf_counter() - t0)
        return total

    def _dfs_push(
        self, s: int, t: int, limit: float, level: np.ndarray, it: List[int]
    ) -> float:
        """One augmenting path in the level graph (explicit stack DFS)."""
        heads, caps, adj = self.heads, self.caps, self._adj
        path: List[int] = []  # arc ids along the current path
        v = s
        while True:
            if v == t:
                bottleneck = min(limit, min(caps[a] for a in path)) if path else 0.0
                for a in path:
                    caps[a] -= bottleneck
                    caps[a ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while it[v] < len(adj[v]):
                a = adj[v][it[v]]
                u = int(heads[a])
                if caps[a] > 1e-12 and level[u] == level[v] + 1:
                    path.append(a)
                    v = u
                    advanced = True
                    break
                it[v] += 1
            if advanced:
                continue
            # Dead end: retreat.
            level[v] = -1
            if not path:
                return 0.0
            a = path.pop()
            v = int(heads[a ^ 1])
            it[v] += 1

    def min_cut_side(self, s: int) -> np.ndarray:
        """Source side of a min cut: vertices reachable in the residual graph.

        Only valid immediately after :meth:`solve`.
        """
        if not self._frozen:
            raise InvalidInputError("solve() has not been called")
        heads, caps, adj = self.heads, self.caps, self._adj
        side = np.zeros(self.n, dtype=bool)
        side[s] = True
        stack = [s]
        while stack:
            v = stack.pop()
            for a in adj[v]:
                u = int(heads[a])
                if caps[a] > 1e-12 and not side[u]:
                    side[u] = True
                    stack.append(u)
        return side


def max_flow(g: Graph, s: int, t: int) -> Tuple[float, np.ndarray]:
    """Max ``s``–``t`` flow and the source-side min-cut mask of graph ``g``."""
    engine = DinicMaxFlow.from_graph(g)
    value = engine.solve(s, t)
    return value, engine.min_cut_side(s)
