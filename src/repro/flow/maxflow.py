"""Dinic's maximum-flow algorithm on undirected capacity networks.

Used by the Gomory–Hu tree builder and by the flow-based decomposition
tree heuristics.  The residual network lives in flat numpy arrays (arc
lists with paired reverse arcs, CSR-style per-vertex arc segments), and
the level-graph BFS / blocking-flow DFS loop dispatches through the
:mod:`repro.kernels` backend seam — the pure-python reference kernels
are the original explicit-stack implementations, and the numba backend
JIT-compiles the same loops with bit-identical results.

Complexity: ``O(V^2 E)`` in general, ``O(E sqrt(V))`` on unit networks —
ample for the instance sizes the decomposition builders feed it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

import repro.kernels as kernels
from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.obs.metrics import get_registry

__all__ = ["DinicMaxFlow", "max_flow"]


#: Hoisted metric handles: the Gomory–Hu builder runs ``n − 1`` solves,
#: so the per-call registry find-or-create lookups were measurable hot-
#: path overhead.  Lazily built (the registry may not exist at import)
#: and keyed on ``(registry, generation)`` so a test-side ``reset()``
#: invalidates the cache instead of leaving orphaned families.
_METRIC_HANDLES: Optional[tuple] = None


def _metric_handles() -> tuple:
    global _METRIC_HANDLES
    metrics = get_registry()
    cached = _METRIC_HANDLES
    if cached is not None and cached[0] is metrics and cached[1] == metrics.generation:
        return cached[2]
    handles = (
        metrics.counter(
            "repro_flow_maxflow_calls_total", "Completed Dinic max-flow solves"
        ),
        metrics.histogram(
            "repro_flow_maxflow_seconds",
            "Wall-clock seconds of one max-flow solve",
        ),
    )
    _METRIC_HANDLES = (metrics, metrics.generation, handles)
    return handles


class DinicMaxFlow:
    """Reusable max-flow engine over a fixed set of arcs.

    Undirected edges are modelled as two directed arcs that *share*
    capacity via their residual pairing (add capacity ``c`` in both
    directions), which is the textbook reduction for undirected flow.

    Parameters
    ----------
    n:
        Number of vertices.

    Notes
    -----
    Arcs are appended with :meth:`add_edge` before calling
    :meth:`solve`.  After a solve, :meth:`min_cut_side` extracts the
    source side of a minimum cut from the final residual network.
    """

    def __init__(self, n: int):
        if n < 2:
            raise InvalidInputError("flow network needs n >= 2")
        self.n = n
        self._heads: List[int] = []
        self._caps: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._frozen = False
        self.heads: np.ndarray
        self.caps: np.ndarray

    @classmethod
    def from_graph(cls, g: Graph) -> "DinicMaxFlow":
        """Build (and freeze) an engine over ``g``'s undirected edges.

        The returned engine is ready for repeated ``solve`` calls on
        varying terminal pairs — each re-solve restores capacities from
        the frozen master via ``np.copyto`` instead of rebuilding the
        arc arrays (the Gomory–Hu builder runs ``n − 1`` solves on one
        engine this way).
        """
        engine = cls(g.n)
        for u, v, w in g.iter_edges():
            engine.add_edge(u, v, w)
        engine._freeze()
        return engine

    def add_edge(self, u: int, v: int, capacity: float, directed: bool = False) -> None:
        """Add an arc ``u -> v`` (and the paired residual arc).

        With ``directed=False`` (default) the reverse arc also gets
        ``capacity``, making the edge undirected.
        """
        if self._frozen:
            raise InvalidInputError("cannot add edges after solve()")
        if not (0 <= u < self.n and 0 <= v < self.n) or u == v:
            raise InvalidInputError(f"bad arc ({u}, {v})")
        if capacity < 0:
            raise InvalidInputError(f"capacity must be >= 0, got {capacity}")
        a = len(self._heads)
        self._heads.extend((v, u))
        self._caps.extend((capacity, capacity if not directed else 0.0))
        self._adj[u].append(a)
        self._adj[v].append(a + 1)

    def _freeze(self) -> None:
        self.heads = np.asarray(self._heads, dtype=np.int64)
        # Frozen master copy of the input capacities: re-solves restore
        # from this ndarray instead of reconverting the Python list.
        self._caps0 = np.asarray(self._caps, dtype=np.float64)
        self._caps0.setflags(write=False)
        self.caps = self._caps0.copy()
        # Flat per-vertex arc segments (CSR over arc ids) — the layout
        # the kernel ABI consumes; preserves _adj's append order.
        counts = np.fromiter(
            (len(arcs) for arcs in self._adj), dtype=np.int64, count=self.n
        )
        self.arc_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.arc_indptr[1:])
        self.arc_ids = np.asarray(
            [a for arcs in self._adj for a in arcs], dtype=np.int64
        )
        self._frozen = True

    def solve(self, s: int, t: int) -> float:
        """Maximum ``s``–``t`` flow value; mutates residual capacities."""
        if s == t:
            raise InvalidInputError("source equals sink")
        if not self._frozen:
            self._freeze()
        else:
            # Re-solving on the same network requires fresh capacities;
            # restore from the frozen master without an O(m) list pass.
            np.copyto(self.caps, self._caps0)
        t0 = time.perf_counter()
        heads, caps = self.heads, self.caps
        arc_indptr, arc_ids = self.arc_indptr, self.arc_ids
        backend = kernels.get_backend()
        s, t = int(s), int(t)
        total = 0.0
        while True:
            level = kernels.dinic_bfs_levels(
                heads, caps, arc_indptr, arc_ids, s, backend=backend
            )
            if level[t] < 0:
                break
            total += kernels.dinic_blocking_flow(
                heads, caps, arc_indptr, arc_ids, level, s, t, backend=backend
            )
        calls, seconds = _metric_handles()
        calls.inc()
        seconds.observe(time.perf_counter() - t0)
        return total

    def min_cut_side(self, s: int) -> np.ndarray:
        """Source side of a min cut: vertices reachable in the residual graph.

        Only valid immediately after :meth:`solve`.
        """
        if not self._frozen:
            raise InvalidInputError("solve() has not been called")
        heads, caps, adj = self.heads, self.caps, self._adj
        side = np.zeros(self.n, dtype=bool)
        side[s] = True
        stack = [s]
        while stack:
            v = stack.pop()
            for a in adj[v]:
                u = int(heads[a])
                if caps[a] > 1e-12 and not side[u]:
                    side[u] = True
                    stack.append(u)
        return side


def max_flow(g: Graph, s: int, t: int) -> Tuple[float, np.ndarray]:
    """Max ``s``–``t`` flow and the source-side min-cut mask of graph ``g``."""
    engine = DinicMaxFlow.from_graph(g)
    value = engine.solve(s, t)
    return value, engine.min_cut_side(s)
