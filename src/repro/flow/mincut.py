"""Minimum cuts: s–t cuts (via Dinic) and the Stoer–Wagner global min cut.

The paper's cost rewrite (Eq. 3) is phrased in terms of minimum cuts
separating leaf sets; on general graphs these are flow problems.  The
decomposition-tree builders also use the global min cut as a splitting
criterion on small pieces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.flow.maxflow import max_flow
from repro.obs.metrics import get_registry

__all__ = ["st_min_cut", "stoer_wagner", "isolating_cut_weight"]


def st_min_cut(g: Graph, s: int, t: int) -> Tuple[float, np.ndarray]:
    """Minimum ``s``–``t`` cut value and the ``s``-side boolean mask."""
    if not (0 <= s < g.n and 0 <= t < g.n) or s == t:
        raise InvalidInputError(f"bad terminal pair ({s}, {t})")
    return max_flow(g, s, t)


def isolating_cut_weight(g: Graph, vertices: np.ndarray) -> float:
    """Weight of the trivial cut isolating ``vertices`` (boundary weight).

    This is an upper bound on the minimum cut separating the set; on
    *trees* (where the library actually needs exact values, computed in
    :mod:`repro.hgpt.solution`) it matches the minimum cut of contiguous
    sets.
    """
    return g.cut_weight(np.asarray(vertices))


def stoer_wagner(g: Graph) -> Tuple[float, np.ndarray]:
    """Global minimum cut of a connected weighted graph.

    Classic Stoer–Wagner: repeat *minimum cut phases* (maximum-adjacency
    orderings) on a shrinking contracted graph, keeping the best
    cut-of-the-phase.  O(n·m + n² log n) conceptually; here O(n³)-ish with
    dense numpy inner ops, which is fine for the ≲ 500-vertex pieces the
    decomposition builders hand it.

    Returns
    -------
    (float, numpy.ndarray)
        Cut weight and a boolean mask of one side (in original ids).
    """
    if g.n < 2:
        raise InvalidInputError("global min cut needs n >= 2")
    if not g.is_connected():
        # Disconnected graphs have a zero cut along any component split.
        _, labels = g.connected_components()
        return 0.0, labels == labels[0]

    n = g.n
    # Dense symmetric weight matrix of the current contracted graph.
    w = np.zeros((n, n), dtype=np.float64)
    w[g.edges_u, g.edges_v] = g.edges_w
    w[g.edges_v, g.edges_u] = g.edges_w
    # groups[i] = original vertices merged into supervertex i.
    groups = [[i] for i in range(n)]
    active = list(range(n))

    best_weight = float("inf")
    best_group: list[int] = []

    while len(active) > 1:
        # Maximum-adjacency ordering within `active`.
        a0 = active[0]
        in_a = {a0}
        weights_to_a = {v: w[a0, v] for v in active if v != a0}
        order = [a0]
        while len(in_a) < len(active):
            nxt = max(weights_to_a, key=lambda v: weights_to_a[v])
            order.append(nxt)
            in_a.add(nxt)
            del weights_to_a[nxt]
            for v in weights_to_a:
                weights_to_a[v] += w[nxt, v]
        s, t = order[-2], order[-1]
        cut_of_phase = float(sum(w[t, v] for v in active if v != t))
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_group = list(groups[t])
        # Contract t into s.
        for v in active:
            if v not in (s, t):
                w[s, v] += w[t, v]
                w[v, s] = w[s, v]
        groups[s].extend(groups[t])
        active.remove(t)

    mask = np.zeros(n, dtype=bool)
    mask[best_group] = True
    get_registry().counter(
        "repro_flow_stoerwagner_cuts_total", "Stoer-Wagner global min cuts computed"
    ).inc()
    return best_weight, mask
