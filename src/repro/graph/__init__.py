"""Graph substrate: CSR kernel, generators, I/O, algorithms, spectral tools."""

from repro.graph.graph import Graph
from repro.graph.ops import (
    UnionFind,
    all_pairs_dijkstra,
    bfs_order,
    dijkstra,
    largest_component,
    minimum_spanning_tree,
)
from repro.graph.generators import (
    barabasi_albert,
    grid_2d,
    grid_3d,
    hypercube,
    layered_dag,
    planted_partition,
    power_law,
    random_demands,
    random_geometric,
    random_regular,
    random_tree,
    random_weights,
    rmat,
    torus_2d,
)
from repro.graph.io import read_edgelist, read_metis, write_edgelist, write_metis
from repro.graph.spectral import (
    fiedler_vector,
    laplacian,
    normalized_laplacian,
    spectral_bisection,
    sweep_cut,
)

__all__ = [
    "Graph",
    "UnionFind",
    "all_pairs_dijkstra",
    "bfs_order",
    "dijkstra",
    "largest_component",
    "minimum_spanning_tree",
    "barabasi_albert",
    "grid_2d",
    "grid_3d",
    "hypercube",
    "layered_dag",
    "planted_partition",
    "power_law",
    "random_demands",
    "random_geometric",
    "random_regular",
    "random_tree",
    "random_weights",
    "rmat",
    "torus_2d",
    "read_edgelist",
    "read_metis",
    "write_edgelist",
    "write_metis",
    "fiedler_vector",
    "laplacian",
    "normalized_laplacian",
    "spectral_bisection",
    "sweep_cut",
]
