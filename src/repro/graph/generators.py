"""Synthetic workload graph generators.

The paper motivates HGP with streaming-task placement (Section 1) and
evaluates nothing; the experiment suite therefore draws on the standard
graph families used throughout the balanced-partitioning literature the
paper cites (grids/meshes from VLSI and scientific computing, expanders as
the hard case for cut-based methods, power-law graphs for data-intensive
workloads, planted-partition graphs as the easy/clusterable case) plus
layered operator DAGs mirroring the TidalRace-style workloads.

All generators are deterministic given ``seed`` and return
:class:`repro.graph.Graph` instances.  Weights are positive floats; demand
vectors are generated separately by :func:`random_demands` so the same
topology can be paired with different load profiles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "grid_2d",
    "grid_3d",
    "torus_2d",
    "random_regular",
    "power_law",
    "barabasi_albert",
    "planted_partition",
    "random_geometric",
    "random_tree",
    "layered_dag",
    "hypercube",
    "rmat",
    "random_weights",
    "random_demands",
]


def _apply_weights(
    n: int,
    eu: np.ndarray,
    ev: np.ndarray,
    weight_range: Optional[Tuple[float, float]],
    rng: np.random.Generator,
) -> Graph:
    if weight_range is None:
        ew = np.ones(eu.size, dtype=np.float64)
    else:
        lo, hi = weight_range
        if not (0 < lo <= hi):
            raise InvalidInputError(f"weight_range must satisfy 0 < lo <= hi, got {weight_range}")
        ew = rng.uniform(lo, hi, size=eu.size)
    return Graph.from_edge_arrays(n, eu, ev, ew)


def grid_2d(
    rows: int,
    cols: int,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """``rows × cols`` 4-neighbour mesh; vertex ``(r, c)`` has id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise InvalidInputError("grid dimensions must be >= 1")
    rng = ensure_rng(seed)
    ids = np.arange(rows * cols).reshape(rows, cols)
    horiz_u = ids[:, :-1].ravel()
    horiz_v = ids[:, 1:].ravel()
    vert_u = ids[:-1, :].ravel()
    vert_v = ids[1:, :].ravel()
    eu = np.concatenate([horiz_u, vert_u])
    ev = np.concatenate([horiz_v, vert_v])
    return _apply_weights(rows * cols, eu, ev, weight_range, rng)


def grid_3d(
    nx: int,
    ny: int,
    nz: int,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """``nx × ny × nz`` 6-neighbour mesh (scientific-computing stencils).

    Vertex ``(x, y, z)`` has id ``(x*ny + y)*nz + z``.  Construction is
    O(m) array slicing — the million-vertex meshes of E20 build in well
    under a second.
    """
    if nx < 1 or ny < 1 or nz < 1:
        raise InvalidInputError("grid dimensions must be >= 1")
    rng = ensure_rng(seed)
    ids = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    eu = np.concatenate(
        [ids[:-1, :, :].ravel(), ids[:, :-1, :].ravel(), ids[:, :, :-1].ravel()]
    )
    ev = np.concatenate(
        [ids[1:, :, :].ravel(), ids[:, 1:, :].ravel(), ids[:, :, 1:].ravel()]
    )
    return _apply_weights(nx * ny * nz, eu, ev, weight_range, rng)


def torus_2d(
    rows: int,
    cols: int,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """Wrap-around mesh (every vertex has degree 4 when dims >= 3)."""
    if rows < 3 or cols < 3:
        raise InvalidInputError("torus dimensions must be >= 3 to avoid parallel edges")
    rng = ensure_rng(seed)
    ids = np.arange(rows * cols).reshape(rows, cols)
    right = np.roll(ids, -1, axis=1)
    down = np.roll(ids, -1, axis=0)
    eu = np.concatenate([ids.ravel(), ids.ravel()])
    ev = np.concatenate([right.ravel(), down.ravel()])
    return _apply_weights(rows * cols, eu, ev, weight_range, rng)


def random_regular(
    n: int,
    d: int,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
    max_tries: int = 200,
) -> Graph:
    """Random ``d``-regular graph via the configuration model with retries.

    Random regular graphs are expanders with high probability — the
    adversarial family for cut-based partitioners, exercised by E5.
    """
    if n * d % 2 != 0:
        raise InvalidInputError("n * d must be even for a d-regular graph")
    if d >= n:
        raise InvalidInputError("need d < n")
    if d < 1:
        raise InvalidInputError("need d >= 1")
    rng = ensure_rng(seed)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n, dtype=np.int64), d)
        rng.shuffle(stubs)
        eu, ev = stubs[0::2], stubs[1::2]
        # Reject matchings with self-loops or parallel edges (simple graph).
        if np.any(eu == ev):
            continue
        lo = np.minimum(eu, ev)
        hi = np.maximum(eu, ev)
        key = lo * n + hi
        if np.unique(key).size != key.size:
            continue
        return _apply_weights(n, eu, ev, weight_range, rng)
    raise InvalidInputError(
        f"failed to sample a simple {d}-regular graph on {n} vertices in {max_tries} tries"
    )


def power_law(
    n: int,
    m_per_node: int = 2,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """Barabási–Albert preferential attachment (heavy-tailed degrees).

    Models hub-and-spoke communication patterns common in stream graphs
    where a few aggregation operators talk to everyone.
    """
    if m_per_node < 1 or n <= m_per_node:
        raise InvalidInputError("need 1 <= m_per_node < n")
    rng = ensure_rng(seed)
    eus: list[int] = []
    evs: list[int] = []
    # Repeated-nodes list: sampling uniformly from it is preferential attachment.
    repeated: list[int] = list(range(m_per_node))
    for v in range(m_per_node, n):
        targets: set[int] = set()
        while len(targets) < m_per_node:
            targets.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in targets:
            eus.append(v)
            evs.append(t)
            repeated.append(t)
        repeated.extend([v] * m_per_node)
    return _apply_weights(
        n,
        np.asarray(eus, dtype=np.int64),
        np.asarray(evs, dtype=np.int64),
        weight_range,
        rng,
    )


def barabasi_albert(
    n: int,
    m_per_node: int = 2,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """Vectorised preferential attachment (Batagelj–Brandes construction).

    Same degree distribution as :func:`power_law` but built in O(m) array
    operations, so million-vertex instances are practical (E20 uses it
    for the heavy-tailed scaling tier).  Unlike :func:`power_law` it
    allows the occasional repeated target (merged into one weighted edge
    by the :class:`repro.graph.Graph` constructor), which is the standard
    trade-off of the vectorised construction.

    Each new vertex ``v`` attaches ``m_per_node`` edges; endpoint slots
    are stored in a flat array ``M`` where ``M[2i]`` is the source and
    ``M[2i + 1]`` the target of edge ``i``.  Sampling a uniform *slot
    index* ``r < 2i`` and copying ``M[r]`` is exactly
    degree-proportional sampling; resolving odd ``r`` to the slot it
    copies (iterated until the references bottom out, a geometrically
    shrinking set) keeps everything array-shaped.
    """
    if m_per_node < 1 or n <= m_per_node:
        raise InvalidInputError("need 1 <= m_per_node < n")
    rng = ensure_rng(seed)
    d = m_per_node
    n_new = n - d
    m = n_new * d
    # src[j] = the new vertex owning edge j (d edges per vertex, offset
    # so the first d vertices are the seed pool).
    src = np.repeat(np.arange(d, n, dtype=np.int64), d)
    # Slot index sampled per edge: edge j may copy any of the 2j slots
    # written before it, or pick itself (2j) to attach to... the seed
    # convention below maps out-of-range picks into the seed pool.
    j = np.arange(m, dtype=np.int64)
    r = rng.integers(0, 2 * j + 1, dtype=np.int64)
    # Odd slots are targets, themselves copied from earlier slots:
    # chase the references until every pick is an even (source) slot or
    # a direct vertex id.  Each round resolves ≥ half in expectation.
    rr = r.copy()
    while True:
        odd = rr % 2 == 1
        if not odd.any():
            break
        rr[odd] = r[rr[odd] // 2]
    # Even slot 2i belongs to edge i and holds src[i]; the r == 2j
    # self-pick lands on the edge's own source, which we remap into the
    # uniform seed pool to avoid self-loops.
    tgt = src[rr // 2]
    self_pick = tgt == src
    if self_pick.any():
        tgt[self_pick] = rng.integers(0, d, size=int(self_pick.sum()))
    keep = tgt != src
    return _apply_weights(n, src[keep], tgt[keep], weight_range, rng)


def planted_partition(
    n_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    weight_in: float = 1.0,
    weight_out: float = 1.0,
    seed: SeedLike = None,
) -> Graph:
    """Stochastic block model with equal-size blocks.

    The "easy" family: a good hierarchical partitioner should recover the
    blocks and co-locate each one, so the HGP cost collapses to the sparse
    inter-block edges.
    """
    if not (0 <= p_out <= p_in <= 1):
        raise InvalidInputError("need 0 <= p_out <= p_in <= 1")
    if n_blocks < 1 or block_size < 1:
        raise InvalidInputError("need n_blocks >= 1 and block_size >= 1")
    rng = ensure_rng(seed)
    n = n_blocks * block_size
    block = np.arange(n) // block_size
    iu, iv = np.triu_indices(n, k=1)
    same = block[iu] == block[iv]
    prob = np.where(same, p_in, p_out)
    keep = rng.random(iu.size) < prob
    eu, ev = iu[keep], iv[keep]
    ew = np.where(same[keep], weight_in, weight_out).astype(np.float64)
    return Graph.from_edge_arrays(n, eu, ev, ew)


def random_geometric(
    n: int,
    radius: float,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """Random geometric graph on the unit square (mesh-like locality)."""
    if n < 1:
        raise InvalidInputError("need n >= 1")
    if radius <= 0:
        raise InvalidInputError("need radius > 0")
    rng = ensure_rng(seed)
    pts = rng.random((n, 2))
    iu, iv = np.triu_indices(n, k=1)
    d2 = ((pts[iu] - pts[iv]) ** 2).sum(axis=1)
    keep = d2 <= radius * radius
    return _apply_weights(n, iu[keep], iv[keep], weight_range, rng)


def random_tree(
    n: int,
    weight_range: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
) -> Graph:
    """Uniform random recursive tree: vertex ``v`` attaches to a random earlier vertex."""
    if n < 1:
        raise InvalidInputError("need n >= 1")
    rng = ensure_rng(seed)
    if n == 1:
        return Graph(1, [])
    ev = np.arange(1, n, dtype=np.int64)
    eu = np.array([int(rng.integers(0, v)) for v in range(1, n)], dtype=np.int64)
    return _apply_weights(n, eu, ev, weight_range, rng)


def layered_dag(
    n_layers: int,
    width: int,
    fan_out: int = 2,
    weight_range: Optional[Tuple[float, float]] = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Layered operator-DAG skeleton, undirected communication view.

    Mirrors the streaming pipelines of Section 1: ``n_layers`` stages of
    ``width`` operators each; every operator feeds ``fan_out`` random
    operators in the next layer.  Returned as an *undirected* weighted
    graph because HGP's cost function only sees communication volume, not
    direction.  (The richer, rate-aware directed model lives in
    :mod:`repro.streaming`.)
    """
    if n_layers < 2 or width < 1:
        raise InvalidInputError("need n_layers >= 2 and width >= 1")
    if not (1 <= fan_out <= width):
        raise InvalidInputError("need 1 <= fan_out <= width")
    rng = ensure_rng(seed)
    n = n_layers * width
    eus: list[int] = []
    evs: list[int] = []
    for layer in range(n_layers - 1):
        base = layer * width
        nxt = base + width
        for i in range(width):
            targets = rng.choice(width, size=fan_out, replace=False)
            for t in targets:
                eus.append(base + i)
                evs.append(nxt + int(t))
    return _apply_weights(
        n,
        np.asarray(eus, dtype=np.int64),
        np.asarray(evs, dtype=np.int64),
        weight_range,
        rng,
    )


def random_weights(g: Graph, lo: float, hi: float, seed: SeedLike = None) -> Graph:
    """Re-weight an existing topology with i.i.d. uniform weights in ``[lo, hi]``."""
    if not (0 < lo <= hi):
        raise InvalidInputError(f"need 0 < lo <= hi, got ({lo}, {hi})")
    rng = ensure_rng(seed)
    ew = rng.uniform(lo, hi, size=g.m)
    return Graph.from_edge_arrays(g.n, g.edges_u, g.edges_v, ew)


def random_demands(
    n: int,
    total_capacity: float,
    fill: float = 0.8,
    skew: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-vertex demand vector summing to ``fill * total_capacity``.

    Parameters
    ----------
    n:
        Number of vertices.
    total_capacity:
        Aggregate capacity of the hierarchy (``k`` for unit leaves).
    fill:
        Target utilisation in ``(0, 1]``; the paper's feasibility regime.
    skew:
        ``0`` gives equal demands; larger values draw from a lognormal
        with that sigma — tasks in real stream systems are heavily skewed.
    seed:
        RNG seed.

    Returns
    -------
    numpy.ndarray
        Demand vector with every entry in ``(0, 1]``.
    """
    if n < 1:
        raise InvalidInputError("need n >= 1")
    if not (0 < fill <= 1):
        raise InvalidInputError(f"fill must be in (0, 1], got {fill}")
    if skew < 0:
        raise InvalidInputError(f"skew must be >= 0, got {skew}")
    rng = ensure_rng(seed)
    if skew == 0:
        raw = np.ones(n)
    else:
        raw = rng.lognormal(mean=0.0, sigma=skew, size=n)
    d = raw / raw.sum() * (fill * total_capacity)
    # Per the problem statement a single task must fit on one (unit) leaf.
    return np.clip(d, 1e-9, 1.0)


def hypercube(dim: int, weight_range: Optional[Tuple[float, float]] = None,
              seed: SeedLike = None) -> Graph:
    """``dim``-dimensional hypercube (n = 2^dim, the classic HPC topology).

    Vertices are bit strings; edges connect strings at Hamming distance 1.
    """
    if not (1 <= dim <= 16):
        raise InvalidInputError(f"dim must be in [1, 16], got {dim}")
    rng = ensure_rng(seed)
    n = 1 << dim
    ids = np.arange(n)
    eus, evs = [], []
    for b in range(dim):
        mask = 1 << b
        lower = ids[(ids & mask) == 0]
        eus.append(lower)
        evs.append(lower | mask)
    return _apply_weights(
        n, np.concatenate(eus), np.concatenate(evs), weight_range, rng
    )


def rmat(
    scale: int,
    edge_factor: int = 4,
    probs: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    weight_range: Optional[Tuple[float, float]] = (0.5, 2.0),
    seed: SeedLike = None,
) -> Graph:
    """R-MAT (recursive matrix) graph — the Graph500 generator.

    Produces heavy-tailed, community-free graphs on ``2^scale`` vertices
    with about ``edge_factor * 2^scale`` undirected edges (self-loops
    dropped, duplicates merged).  The default probabilities are the
    Graph500 kernel's.
    """
    if not (2 <= scale <= 22):
        raise InvalidInputError(f"scale must be in [2, 22], got {scale}")
    if edge_factor < 1:
        raise InvalidInputError("edge_factor must be >= 1")
    a, b, c, d = probs
    if abs(a + b + c + d - 1.0) > 1e-9 or min(probs) < 0:
        raise InvalidInputError(f"probs must be a distribution, got {probs}")
    rng = ensure_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    # Vectorised bit-by-bit quadrant descent.
    us = np.zeros(m, dtype=np.int64)
    vs = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrants in order (0,0), (0,1), (1,0), (1,1).
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        both = r >= a + b + c
        us = (us << 1) | (down | both).astype(np.int64)
        vs = (vs << 1) | (right | both).astype(np.int64)
    keep = us != vs
    if not keep.any():
        # Degenerate draw: fall back to a single edge to keep a graph.
        return Graph(n, [(0, 1 % n if n > 1 else 0, 1.0)])
    return _apply_weights(n, us[keep], vs[keep], weight_range, rng)
