"""CSR-backed undirected weighted graph kernel.

This is the substrate every other subsystem builds on: the task graph
``G`` of the HGP instance, the quotient graphs used by the multilevel
baselines, and the flow networks behind Gomory–Hu trees all use this one
representation.

Design notes (per the hpc-parallel guides):

* Storage is *structure-of-arrays*: a canonical undirected edge list
  (``edges_u``, ``edges_v``, ``edges_w`` with ``u < v``) plus a CSR
  adjacency (``indptr``, ``indices``, ``adj_weights``, ``adj_edge_ids``)
  built once at construction.  Hot operations — cut weights, degree sums,
  boundary scans — are single vectorised numpy passes over contiguous
  arrays; no per-edge Python objects exist anywhere.
* Graphs are **immutable** after construction.  Mutation patterns in the
  algorithms (coarsening, contraction, subgraphs) all *produce new
  graphs*, which keeps invariants trivially true and makes the structures
  safe to share across ensemble members.
* Parallel edges given to the constructor are merged by summing weights;
  self-loops are rejected (they are meaningless for partitioning costs).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import InvalidInputError

__all__ = ["Graph"]


class Graph:
    """Immutable undirected weighted graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v, w)`` triples with ``u != v``, ``w > 0``.
        Parallel edges are merged by summing their weights.

    Attributes
    ----------
    n : int
        Vertex count.
    m : int
        Edge count after merging parallel edges.
    edges_u, edges_v : numpy.ndarray of int64, shape (m,)
        Canonical endpoints with ``edges_u < edges_v``, sorted
        lexicographically.
    edges_w : numpy.ndarray of float64, shape (m,)
        Edge weights, aligned with ``edges_u`` / ``edges_v``.
    indptr, indices : numpy.ndarray
        CSR adjacency over both edge directions.
    adj_weights : numpy.ndarray of float64
        Weight of each CSR entry.
    adj_edge_ids : numpy.ndarray of int64
        Canonical edge id of each CSR entry (both directions of edge ``e``
        map to ``e``).
    """

    __slots__ = (
        "n",
        "m",
        "edges_u",
        "edges_v",
        "edges_w",
        "indptr",
        "indices",
        "adj_weights",
        "adj_edge_ids",
        "_weighted_degrees",
        "_digest",
    )

    def __init__(self, n: int, edges: Iterable[Tuple[int, int, float]]):
        if n < 0:
            raise InvalidInputError(f"vertex count must be >= 0, got {n}")
        self.n = int(n)

        triples = list(edges)
        if triples:
            eu = np.asarray([t[0] for t in triples], dtype=np.int64)
            ev = np.asarray([t[1] for t in triples], dtype=np.int64)
            ew = np.asarray([t[2] for t in triples], dtype=np.float64)
        else:
            eu = np.empty(0, dtype=np.int64)
            ev = np.empty(0, dtype=np.int64)
            ew = np.empty(0, dtype=np.float64)

        if eu.size:
            if eu.min() < 0 or ev.min() < 0 or eu.max() >= n or ev.max() >= n:
                raise InvalidInputError("edge endpoint out of range [0, n)")
            if np.any(eu == ev):
                raise InvalidInputError("self-loops are not allowed")
            if np.any(ew <= 0) or not np.all(np.isfinite(ew)):
                raise InvalidInputError("edge weights must be finite and > 0")
            # Canonicalise so u < v, then merge parallel edges.
            lo = np.minimum(eu, ev)
            hi = np.maximum(eu, ev)
            key = lo * n + hi
            order = np.argsort(key, kind="stable")
            key, lo, hi, ew = key[order], lo[order], hi[order], ew[order]
            uniq, start = np.unique(key, return_index=True)
            merged_w = np.add.reduceat(ew, start)
            self.edges_u = lo[start]
            self.edges_v = hi[start]
            self.edges_w = merged_w
        else:
            self.edges_u, self.edges_v, self.edges_w = eu, ev, ew

        self.m = int(self.edges_u.size)
        self._build_csr()
        self._weighted_degrees: np.ndarray | None = None
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_csr(self) -> None:
        """Build the bidirectional CSR adjacency from the canonical edges."""
        heads = np.concatenate([self.edges_u, self.edges_v])
        tails = np.concatenate([self.edges_v, self.edges_u])
        ws = np.concatenate([self.edges_w, self.edges_w])
        eids = np.concatenate(
            [np.arange(self.m, dtype=np.int64), np.arange(self.m, dtype=np.int64)]
        )
        order = np.argsort(heads, kind="stable")
        heads, tails, ws, eids = heads[order], tails[order], ws[order], eids[order]
        counts = np.bincount(heads, minlength=self.n)
        self.indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        self.indices = tails
        self.adj_weights = ws
        self.adj_edge_ids = eids

    @classmethod
    def from_edge_arrays(
        cls, n: int, eu: np.ndarray, ev: np.ndarray, ew: np.ndarray
    ) -> "Graph":
        """Construct from parallel numpy arrays (zero-copy-ish fast path)."""
        g = cls.__new__(cls)
        if n < 0:
            raise InvalidInputError(f"vertex count must be >= 0, got {n}")
        g.n = int(n)
        eu = np.asarray(eu, dtype=np.int64)
        ev = np.asarray(ev, dtype=np.int64)
        ew = np.asarray(ew, dtype=np.float64)
        if eu.shape != ev.shape or eu.shape != ew.shape:
            raise InvalidInputError("edge arrays must have equal shapes")
        if eu.size:
            if eu.min() < 0 or ev.min() < 0 or eu.max() >= n or ev.max() >= n:
                raise InvalidInputError("edge endpoint out of range [0, n)")
            if np.any(eu == ev):
                raise InvalidInputError("self-loops are not allowed")
            if np.any(ew <= 0) or not np.all(np.isfinite(ew)):
                raise InvalidInputError("edge weights must be finite and > 0")
            lo = np.minimum(eu, ev)
            hi = np.maximum(eu, ev)
            key = lo * n + hi
            order = np.argsort(key, kind="stable")
            key, lo, hi, ew = key[order], lo[order], hi[order], ew[order]
            uniq, start = np.unique(key, return_index=True)
            g.edges_u = lo[start]
            g.edges_v = hi[start]
            g.edges_w = np.add.reduceat(ew, start)
        else:
            g.edges_u = np.empty(0, dtype=np.int64)
            g.edges_v = np.empty(0, dtype=np.int64)
            g.edges_w = np.empty(0, dtype=np.float64)
        g.m = int(g.edges_u.size)
        g._build_csr()
        g._weighted_degrees = None
        g._digest = None
        return g

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Stable content hash of the graph (32-char blake2b hex).

        Hashes ``n`` plus the canonical edge arrays, so two graphs built
        independently from the same edge set (in any input order — the
        constructor canonicalises) share a digest.  Computed once and
        memoised; graphs are immutable so the value can never go stale.
        This is the graph's identity in :mod:`repro.cache` keys.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self.n.to_bytes(8, "little"))
            h.update(self.edges_u.tobytes())
            h.update(self.edges_v.tobytes())
            h.update(self.edges_w.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbour ids of vertex ``v`` (no copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the incident edge weights of vertex ``v``, aligned with
        :meth:`neighbors`."""
        return self.adj_weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of distinct neighbours of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def weighted_degrees(self) -> np.ndarray:
        """Vector of weighted degrees (sum of incident edge weights)."""
        if self._weighted_degrees is None:
            d = np.zeros(self.n, dtype=np.float64)
            np.add.at(d, self.edges_u, self.edges_w)
            np.add.at(d, self.edges_v, self.edges_w)
            self._weighted_degrees = d
        return self._weighted_degrees

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.edges_w.sum())

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` or ``0.0`` when absent."""
        nbrs = self.neighbors(u)
        hit = np.nonzero(nbrs == v)[0]
        if hit.size == 0:
            return 0.0
        return float(self.neighbor_weights(u)[hit[0]])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists."""
        return bool(np.any(self.neighbors(u) == v))

    def iter_edges(self) -> Iterable[Tuple[int, int, float]]:
        """Yield canonical ``(u, v, w)`` triples with ``u < v``."""
        for u, v, w in zip(self.edges_u, self.edges_v, self.edges_w):
            yield int(u), int(v), float(w)

    # ------------------------------------------------------------------
    # cuts and partitions (vectorised hot paths)
    # ------------------------------------------------------------------

    def cut_weight(self, side: np.ndarray | Sequence[int]) -> float:
        """Total weight of edges with exactly one endpoint in ``side``.

        Parameters
        ----------
        side:
            Either a boolean mask of length ``n`` or an iterable of vertex
            ids forming one side of the cut.
        """
        mask = self._as_mask(side)
        cross = mask[self.edges_u] != mask[self.edges_v]
        return float(self.edges_w[cross].sum())

    def partition_cut_weight(self, labels: np.ndarray) -> float:
        """Total weight of edges whose endpoints carry different labels.

        ``labels`` is an integer vector of length ``n``; this is the
        classic k-way edge-cut objective.
        """
        labels = np.asarray(labels)
        if labels.shape != (self.n,):
            raise InvalidInputError(
                f"labels must have shape ({self.n},), got {labels.shape}"
            )
        cross = labels[self.edges_u] != labels[self.edges_v]
        return float(self.edges_w[cross].sum())

    def boundary_edges(self, side: np.ndarray | Sequence[int]) -> np.ndarray:
        """Ids of canonical edges crossing the cut defined by ``side``."""
        mask = self._as_mask(side)
        return np.nonzero(mask[self.edges_u] != mask[self.edges_v])[0]

    def volume(self, side: np.ndarray | Sequence[int]) -> float:
        """Sum of weighted degrees of the vertices in ``side``."""
        mask = self._as_mask(side)
        return float(self.weighted_degrees[mask].sum())

    def conductance(self, side: np.ndarray | Sequence[int]) -> float:
        """Conductance of the cut ``(side, complement)``.

        ``cut / min(vol(S), vol(V−S))``; returns ``inf`` for trivial sides.
        """
        mask = self._as_mask(side)
        vol_s = self.volume(mask)
        vol_rest = 2.0 * self.total_weight - vol_s
        denom = min(vol_s, vol_rest)
        if denom <= 0:
            return float("inf")
        return self.cut_weight(mask) / denom

    def _as_mask(self, side: np.ndarray | Sequence[int]) -> np.ndarray:
        arr = np.asarray(side)
        if arr.dtype == bool:
            if arr.shape != (self.n,):
                raise InvalidInputError(
                    f"boolean mask must have shape ({self.n},), got {arr.shape}"
                )
            return arr
        mask = np.zeros(self.n, dtype=bool)
        if arr.size:
            if arr.min() < 0 or arr.max() >= self.n:
                raise InvalidInputError("vertex id out of range in side set")
            mask[arr.astype(np.int64)] = True
        return mask

    # ------------------------------------------------------------------
    # structural transforms (all return new graphs)
    # ------------------------------------------------------------------

    def reweighted(self, edges_w: np.ndarray) -> "Graph":
        """Same topology, new canonical edge weights (a new graph).

        ``edges_w`` is aligned with :attr:`edges_u` / :attr:`edges_v`.
        The structure arrays (``edges_u``, ``edges_v``, ``indptr``,
        ``indices``, ``adj_edge_ids``) are *shared* with ``self`` — safe
        because graphs are immutable — so a pure weight update costs one
        ``O(m)`` gather instead of a full CSR rebuild.  The memoised
        digest is reset: content addressing must see the new weights.
        """
        ew = np.asarray(edges_w, dtype=np.float64)
        if ew.shape != (self.m,):
            raise InvalidInputError(
                f"edges_w must have shape ({self.m},), got {ew.shape}"
            )
        if ew.size and (np.any(ew <= 0) or not np.all(np.isfinite(ew))):
            raise InvalidInputError("edge weights must be finite and > 0")
        g = Graph.__new__(Graph)
        g.n = self.n
        g.m = self.m
        g.edges_u = self.edges_u
        g.edges_v = self.edges_v
        g.edges_w = ew
        g.indptr = self.indptr
        g.indices = self.indices
        g.adj_weights = ew[self.adj_edge_ids]
        g.adj_edge_ids = self.adj_edge_ids
        g._weighted_degrees = None
        g._digest = None
        return g

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns
        -------
        (Graph, numpy.ndarray)
            The subgraph (vertices relabelled ``0..len-1`` in the order
            given) and the array mapping new ids back to original ids.
        """
        verts = np.asarray(list(vertices), dtype=np.int64)
        if verts.size != np.unique(verts).size:
            raise InvalidInputError("subgraph vertex list contains duplicates")
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[verts] = np.arange(verts.size)
        keep = (new_id[self.edges_u] >= 0) & (new_id[self.edges_v] >= 0)
        sub = Graph.from_edge_arrays(
            int(verts.size),
            new_id[self.edges_u[keep]],
            new_id[self.edges_v[keep]],
            self.edges_w[keep],
        )
        return sub, verts

    def contract(self, labels: np.ndarray) -> "Graph":
        """Quotient graph: merge every label class into a supervertex.

        ``labels`` must be a length-``n`` integer vector using ids
        ``0..L-1`` densely.  Edges inside a class vanish; parallel edges
        between classes merge by weight summation (performed by the
        constructor).
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.n,):
            raise InvalidInputError(
                f"labels must have shape ({self.n},), got {labels.shape}"
            )
        if labels.size and (labels.min() < 0):
            raise InvalidInputError("labels must be non-negative")
        n_super = int(labels.max()) + 1 if labels.size else 0
        lu = labels[self.edges_u]
        lv = labels[self.edges_v]
        keep = lu != lv
        return Graph.from_edge_arrays(n_super, lu[keep], lv[keep], self.edges_w[keep])

    def connected_components(self) -> Tuple[int, np.ndarray]:
        """Connected components via iterative union–find over edge arrays.

        Returns
        -------
        (int, numpy.ndarray)
            The number of components and a dense label vector.
        """
        parent = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        for u, v in zip(self.edges_u, self.edges_v):
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        roots = np.array([find(i) for i in range(self.n)], dtype=np.int64)
        uniq, labels = np.unique(roots, return_inverse=True)
        return int(uniq.size), labels

    def is_connected(self) -> bool:
        """Whether the graph has at most one connected component."""
        if self.n <= 1:
            return True
        ncomp, _ = self.connected_components()
        return ncomp == 1

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export as :class:`networkx.Graph` with ``weight`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w)) for u, v, w in self.iter_edges()
        )
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Import from networkx; missing ``weight`` attributes default to 1.

        Node labels must be ``0..n-1`` integers (relabel first otherwise).
        """
        n = g.number_of_nodes()
        nodes = set(g.nodes())
        if nodes != set(range(n)):
            raise InvalidInputError(
                "networkx nodes must be 0..n-1 integers; use nx.convert_node_labels_to_integers first"
            )
        edges = [
            (u, v, float(data.get("weight", 1.0))) for u, v, data in g.edges(data=True)
        ]
        return cls(n, edges)

    def to_scipy_sparse(self):
        """Symmetric CSR adjacency matrix (scipy)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.adj_weights, self.indices, self.indptr), shape=(self.n, self.n)
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m}, total_weight={self.total_weight:.4g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and bool(np.array_equal(self.edges_u, other.edges_u))
            and bool(np.array_equal(self.edges_v, other.edges_v))
            and bool(np.allclose(self.edges_w, other.edges_w))
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self.edges_w.sum()))
