"""Graph serialization: METIS format and plain edge lists.

The METIS ``.graph`` format is the lingua franca of the partitioning
community (SCOTCH, JOSTLE and Zoltan all read it), so supporting it makes
the library interoperable with the heuristic packages the paper's related
work cites.  We implement the weighted variant with optional vertex
weights (fmt codes ``0``, ``1``, ``10``, ``11``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph

__all__ = [
    "write_metis",
    "read_metis",
    "write_edgelist",
    "read_edgelist",
]

PathLike = Union[str, Path]


def write_metis(
    path: PathLike,
    g: Graph,
    demands: Optional[np.ndarray] = None,
    weight_scale: float = 1000.0,
) -> None:
    """Write ``g`` in METIS format.

    METIS requires *integer* edge and vertex weights, so floats are scaled
    by ``weight_scale`` and rounded (a documented, lossy step; use
    :func:`write_edgelist` for exact round-trips).

    Parameters
    ----------
    path: destination file.
    g: graph to serialize.
    demands: optional per-vertex demand vector written as vertex weights.
    weight_scale: multiplier applied before integer rounding.
    """
    if demands is not None and np.asarray(demands).shape != (g.n,):
        raise InvalidInputError("demands must have shape (n,)")
    fmt = "11" if demands is not None else "1"
    lines = [f"{g.n} {g.m} {fmt}"]
    # Build per-vertex adjacency strings from CSR (1-indexed per METIS).
    for v in range(g.n):
        parts: list[str] = []
        if demands is not None:
            parts.append(str(max(1, int(round(float(demands[v]) * weight_scale)))))
        nbrs = g.neighbors(v)
        ws = g.neighbor_weights(v)
        for u, w in zip(nbrs, ws):
            parts.append(str(int(u) + 1))
            parts.append(str(max(1, int(round(float(w) * weight_scale)))))
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")


def read_metis(path: PathLike) -> Tuple[Graph, Optional[np.ndarray]]:
    """Read a METIS ``.graph`` file.

    Returns the graph and the vertex-weight vector (or ``None``).  Comment
    lines starting with ``%`` are skipped.  Edge weights are returned as
    the raw integers (callers rescale if they wrote scaled floats).
    """
    raw = [
        ln
        for ln in Path(path).read_text().splitlines()
        if ln.strip() and not ln.lstrip().startswith("%")
    ]
    if not raw:
        raise InvalidInputError(f"{path}: empty METIS file")
    header = raw[0].split()
    if len(header) < 2:
        raise InvalidInputError(f"{path}: malformed METIS header {raw[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) >= 3 else "0"
    has_vwgt = len(fmt) >= 2 and fmt[-2] == "1"
    has_ewgt = fmt[-1] == "1"
    ncon = int(header[3]) if len(header) >= 4 else 1
    if len(raw) - 1 != n:
        raise InvalidInputError(
            f"{path}: header declares {n} vertices but file has {len(raw) - 1} adjacency lines"
        )
    vwgts = np.zeros(n, dtype=np.float64) if has_vwgt else None
    eus: list[int] = []
    evs: list[int] = []
    ews: list[float] = []
    for v, line in enumerate(raw[1:]):
        tokens = line.split()
        pos = 0
        if has_vwgt:
            vwgts[v] = float(tokens[0])  # type: ignore[index]
            pos = ncon
        while pos < len(tokens):
            u = int(tokens[pos]) - 1
            pos += 1
            if has_ewgt:
                w = float(tokens[pos])
                pos += 1
            else:
                w = 1.0
            if u > v:  # each edge appears twice; keep canonical direction
                eus.append(v)
                evs.append(u)
                ews.append(w)
    g = Graph.from_edge_arrays(
        n,
        np.asarray(eus, dtype=np.int64),
        np.asarray(evs, dtype=np.int64),
        np.asarray(ews, dtype=np.float64),
    )
    if g.m != m:
        raise InvalidInputError(
            f"{path}: header declares {m} edges but adjacency lists encode {g.m}"
        )
    return g, vwgts


def write_edgelist(path: PathLike, g: Graph) -> None:
    """Exact text serialization: ``n m`` header then ``u v w`` lines."""
    lines = [f"{g.n} {g.m}"]
    lines.extend(f"{u} {v} {w!r}" for u, v, w in g.iter_edges())
    Path(path).write_text("\n".join(lines) + "\n")


def read_edgelist(path: PathLike) -> Graph:
    """Inverse of :func:`write_edgelist`."""
    raw = [ln for ln in Path(path).read_text().splitlines() if ln.strip()]
    if not raw:
        raise InvalidInputError(f"{path}: empty edge-list file")
    n, m = (int(tok) for tok in raw[0].split())
    triples = []
    for ln in raw[1:]:
        u, v, w = ln.split()
        triples.append((int(u), int(v), float(w)))
    if len(triples) != m:
        raise InvalidInputError(f"{path}: expected {m} edges, found {len(triples)}")
    return Graph(n, triples)
