"""Graph serialization: METIS format and plain edge lists.

The METIS ``.graph`` format is the lingua franca of the partitioning
community (SCOTCH, JOSTLE and Zoltan all read it), so supporting it makes
the library interoperable with the heuristic packages the paper's related
work cites.  We implement the weighted variant with optional vertex
weights (fmt codes ``0``, ``1``, ``10``, ``11``).
"""

from __future__ import annotations

from itertools import chain
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph

__all__ = [
    "write_metis",
    "read_metis",
    "write_edgelist",
    "read_edgelist",
]

PathLike = Union[str, Path]


def write_metis(
    path: PathLike,
    g: Graph,
    demands: Optional[np.ndarray] = None,
    weight_scale: float = 1000.0,
) -> None:
    """Write ``g`` in METIS format (vectorised; no per-edge Python loop).

    METIS requires *integer* edge and vertex weights, so floats are scaled
    by ``weight_scale`` and rounded (a documented, lossy step; use
    :func:`write_edgelist` for exact round-trips).

    Parameters
    ----------
    path: destination file.
    g: graph to serialize.
    demands:
        Optional vertex weights: shape ``(n,)``, or ``(n, ncon)`` for the
        multi-constraint variant (``ncon`` weight columns per vertex,
        declared in the header's fourth field).
    weight_scale: multiplier applied before integer rounding.
    """
    vw = None
    ncon = 1
    if demands is not None:
        vw = np.asarray(demands, dtype=np.float64)
        if vw.ndim == 1:
            vw = vw[:, None]
        if vw.ndim != 2 or vw.shape[0] != g.n:
            raise InvalidInputError(
                f"demands must have shape ({g.n},) or ({g.n}, ncon), got "
                f"{np.asarray(demands).shape}"
            )
        ncon = vw.shape[1]
    header = f"{g.n} {g.m} 11" if vw is not None else f"{g.n} {g.m} 1"
    if ncon > 1:
        header += f" {ncon}"
    # All integer formatting happens on whole arrays; the only Python
    # loop joins one pre-formatted token slice per line.
    nbr_s = np.char.mod("%d", g.indices + 1)
    w_int = np.maximum(
        1, np.rint(g.adj_weights * weight_scale).astype(np.int64)
    )
    w_s = np.char.mod("%d", w_int)
    width = max(
        nbr_s.dtype.itemsize, w_s.dtype.itemsize
    ) // np.dtype("U1").itemsize
    inter = np.empty(2 * g.indices.size, dtype=f"<U{max(1, width)}")
    inter[0::2] = nbr_s
    inter[1::2] = w_s
    adj_parts = np.split(inter, 2 * g.indptr[1:-1])
    if vw is not None:
        vw_int = np.maximum(1, np.rint(vw * weight_scale).astype(np.int64))
        vw_lines = [" ".join(row) for row in np.char.mod("%d", vw_int)]
        lines = [header]
        lines.extend(
            f"{p} {a}" if a else p
            for p, a in zip(vw_lines, (" ".join(part) for part in adj_parts))
        )
    else:
        lines = [header]
        lines.extend(" ".join(part) for part in adj_parts)
    Path(path).write_text("\n".join(lines) + "\n")


def read_metis(path: PathLike) -> Tuple[Graph, Optional[np.ndarray]]:
    """Read a METIS ``.graph`` file (vectorised single-pass tokenizer).

    Returns the graph and the vertex-weight array — ``None`` when the
    file has no vertex weights, shape ``(n,)`` for ``ncon = 1``, and
    shape ``(n, ncon)`` for the multi-constraint variant (all ``ncon``
    columns are consumed, not just the first).  Comment lines starting
    with ``%`` are skipped.  Edge weights are returned as the raw
    integers (callers rescale if they wrote scaled floats).
    """
    raw = [
        ln
        for ln in Path(path).read_text().splitlines()
        if ln.strip() and not ln.lstrip().startswith("%")
    ]
    if not raw:
        raise InvalidInputError(f"{path}: empty METIS file")
    header = raw[0].split()
    if len(header) < 2:
        raise InvalidInputError(f"{path}: malformed METIS header {raw[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) >= 3 else "0"
    has_vwgt = len(fmt) >= 2 and fmt[-2] == "1"
    has_ewgt = fmt[-1] == "1"
    ncon = int(header[3]) if len(header) >= 4 else 1
    if ncon < 1:
        raise InvalidInputError(f"{path}: ncon must be >= 1, got {ncon}")
    if len(raw) - 1 != n:
        raise InvalidInputError(
            f"{path}: header declares {n} vertices but file has {len(raw) - 1} adjacency lines"
        )
    # One tokenization pass: split each line once, then parse the whole
    # token stream as one float64 array and slice it positionally.
    tok_lists = [ln.split() for ln in raw[1:]]
    counts = np.fromiter(map(len, tok_lists), dtype=np.int64, count=n)
    total = int(counts.sum())
    try:
        flat = np.fromiter(
            chain.from_iterable(tok_lists), dtype=np.float64, count=total
        )
    except ValueError as exc:
        raise InvalidInputError(f"{path}: non-numeric token ({exc})") from exc
    n_vw = ncon if has_vwgt else 0
    adj_counts = counts - n_vw
    if (adj_counts < 0).any():
        v = int(np.argmax(adj_counts < 0))
        raise InvalidInputError(
            f"{path}: vertex {v + 1} line has fewer than ncon={ncon} tokens"
        )
    if has_ewgt and (adj_counts % 2).any():
        v = int(np.argmax(adj_counts % 2))
        raise InvalidInputError(
            f"{path}: vertex {v + 1} line has a neighbour without a weight"
        )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    owner = np.repeat(np.arange(n, dtype=np.int64), counts)
    in_line = np.arange(total, dtype=np.int64) - offsets[owner]
    vwgts: Optional[np.ndarray] = None
    if has_vwgt:
        vwgts = flat[in_line < n_vw].reshape(n, ncon)
        if ncon == 1:
            vwgts = vwgts[:, 0]
    adj_mask = in_line >= n_vw
    adj = flat[adj_mask]
    adj_owner = owner[adj_mask]
    if has_ewgt:
        # Per-line adjacency token counts are even (checked above), so
        # the concatenated stream alternates neighbour/weight globally.
        nbrs = adj[0::2]
        ws = adj[1::2]
        nbr_owner = adj_owner[0::2]
    else:
        nbrs = adj
        ws = np.ones(adj.size, dtype=np.float64)
        nbr_owner = adj_owner
    u = nbrs.astype(np.int64) - 1
    if u.size and (u.min() < 0 or u.max() >= n):
        raise InvalidInputError(f"{path}: neighbour id out of range [1, {n}]")
    keep = u > nbr_owner  # each edge appears twice; keep canonical direction
    g = Graph.from_edge_arrays(
        n, nbr_owner[keep], u[keep], ws[keep].astype(np.float64)
    )
    if g.m != m:
        raise InvalidInputError(
            f"{path}: header declares {m} edges but adjacency lists encode {g.m}"
        )
    return g, vwgts


def write_edgelist(path: PathLike, g: Graph) -> None:
    """Exact text serialization: ``n m`` header then ``u v w`` lines."""
    lines = [f"{g.n} {g.m}"]
    lines.extend(f"{u} {v} {w!r}" for u, v, w in g.iter_edges())
    Path(path).write_text("\n".join(lines) + "\n")


def read_edgelist(path: PathLike) -> Graph:
    """Inverse of :func:`write_edgelist`."""
    raw = [ln for ln in Path(path).read_text().splitlines() if ln.strip()]
    if not raw:
        raise InvalidInputError(f"{path}: empty edge-list file")
    n, m = (int(tok) for tok in raw[0].split())
    triples = []
    for ln in raw[1:]:
        u, v, w = ln.split()
        triples.append((int(u), int(v), float(w)))
    if len(triples) != m:
        raise InvalidInputError(f"{path}: expected {m} edges, found {len(triples)}")
    return Graph(n, triples)
