"""Standalone graph algorithms used as substrates across the library.

These complement the methods on :class:`repro.graph.Graph`: traversal
orders, shortest paths (needed by the FRT-style metric decomposition
trees), and minimum spanning trees (used by the contraction-based
decomposition builder and as a cheap connectivity certificate).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph

__all__ = [
    "bfs_order",
    "dijkstra",
    "all_pairs_dijkstra",
    "minimum_spanning_tree",
    "largest_component",
    "UnionFind",
]


class UnionFind:
    """Array-based disjoint-set forest with union by size + path halving."""

    __slots__ = ("parent", "size", "n_sets")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_sets = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_sets -= 1
        return True

    def same(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)


def bfs_order(g: Graph, source: int = 0) -> np.ndarray:
    """Vertices of ``source``'s component in breadth-first order."""
    if not (0 <= source < g.n):
        raise InvalidInputError(f"source {source} out of range")
    seen = np.zeros(g.n, dtype=bool)
    order: List[int] = [source]
    seen[source] = True
    head = 0
    while head < len(order):
        v = order[head]
        head += 1
        for u in g.neighbors(v):
            if not seen[u]:
                seen[u] = True
                order.append(int(u))
    return np.asarray(order, dtype=np.int64)


def dijkstra(
    g: Graph, source: int, lengths: Optional[np.ndarray] = None
) -> np.ndarray:
    """Single-source shortest path distances.

    Parameters
    ----------
    g:
        Graph whose edge *weights* are communication volumes; by default
        we use ``1 / w`` as the metric length so heavily-communicating
        pairs are metrically *close* (this is the convention the FRT-style
        decomposition builder wants).  Pass explicit per-canonical-edge
        ``lengths`` to override.
    source:
        Source vertex.
    lengths:
        Optional length per canonical edge id (shape ``(m,)``).

    Returns
    -------
    numpy.ndarray
        Distance vector (``inf`` for unreachable vertices).
    """
    if not (0 <= source < g.n):
        raise InvalidInputError(f"source {source} out of range")
    if lengths is None:
        lengths = 1.0 / g.edges_w
    else:
        lengths = np.asarray(lengths, dtype=np.float64)
        if lengths.shape != (g.m,):
            raise InvalidInputError(
                f"lengths must have shape ({g.m},), got {lengths.shape}"
            )
        if lengths.size and lengths.min() < 0:
            raise InvalidInputError("edge lengths must be non-negative")
    dist = np.full(g.n, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    indptr, indices, eids = g.indptr, g.indices, g.adj_edge_ids
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for k in range(indptr[v], indptr[v + 1]):
            u = int(indices[k])
            nd = d + lengths[eids[k]]
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def all_pairs_dijkstra(g: Graph, lengths: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense all-pairs shortest-path matrix (O(n · m log n)); small graphs only."""
    return np.vstack([dijkstra(g, s, lengths) for s in range(g.n)])


def minimum_spanning_tree(g: Graph, maximize: bool = False) -> np.ndarray:
    """Kruskal's algorithm; returns the ids of the chosen canonical edges.

    With ``maximize=True`` returns a *maximum* spanning forest instead —
    used by the contraction decomposition builder, which wants to contract
    the heaviest-communication edges first.
    """
    order = np.argsort(g.edges_w)
    if maximize:
        order = order[::-1]
    uf = UnionFind(g.n)
    chosen: List[int] = []
    for e in order:
        if uf.union(int(g.edges_u[e]), int(g.edges_v[e])):
            chosen.append(int(e))
            if uf.n_sets == 1:
                break
    return np.asarray(chosen, dtype=np.int64)


def largest_component(g: Graph) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest connected component.

    Returns the subgraph and the original ids of its vertices.
    """
    ncomp, labels = g.connected_components()
    if ncomp <= 1:
        return g, np.arange(g.n, dtype=np.int64)
    counts = np.bincount(labels, minlength=ncomp)
    big = int(np.argmax(counts))
    verts = np.nonzero(labels == big)[0]
    return g.subgraph(verts)
