"""Spectral toolbox: Laplacians, Fiedler vectors, sweep cuts.

The spectral recursive-bisection decomposition builder
(:mod:`repro.decomposition.spectral`) and the multilevel baseline's
initial-partition stage both need a cheap, dependable way to find
low-conductance cuts.  We implement:

* graph Laplacian / normalized Laplacian assembly (sparse),
* a Fiedler-vector solver — our own shift-inverted power/Lanczos-lite
  iteration with a deflation against the constant vector, falling back to
  :func:`scipy.sparse.linalg.eigsh` for stubborn spectra, and
* the classic *sweep cut* rounding that scans the sorted Fiedler
  embedding and takes the best conductance (or best balanced-cut)
  threshold, which carries Cheeger-style guarantees.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

import repro.kernels as kernels
from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "laplacian",
    "normalized_laplacian",
    "fiedler_vector",
    "sweep_cut",
    "spectral_bisection",
]


def laplacian(g: Graph) -> sp.csr_matrix:
    """Combinatorial Laplacian ``L = D − A`` as sparse CSR."""
    a = g.to_scipy_sparse()
    deg = np.asarray(a.sum(axis=1)).ravel()
    return sp.diags(deg).tocsr() - a


def normalized_laplacian(g: Graph) -> sp.csr_matrix:
    """Symmetric normalized Laplacian ``I − D^{-1/2} A D^{-1/2}``.

    Isolated vertices get a zero row/column (their "eigenvalue" is 0,
    which is correct: they are free to go anywhere).
    """
    a = g.to_scipy_sparse()
    deg = np.asarray(a.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
    d_half = sp.diags(inv_sqrt)
    eye = sp.diags(nz.astype(np.float64))
    return (eye - d_half @ a @ d_half).tocsr()


def fiedler_vector(
    g: Graph,
    normalized: bool = True,
    tol: float = 1e-8,
    max_iter: int = 2000,
    seed: SeedLike = None,
    use_cache: bool = True,
) -> np.ndarray:
    """Eigenvector of the second-smallest Laplacian eigenvalue.

    Strategy: deflated power iteration on ``cI − L`` (which maps the
    smallest eigenvalues of ``L`` to the largest of the iteration matrix),
    orthogonalised against the known kernel direction each step.  If the
    iteration stalls (tiny spectral gap) we defer to scipy's Lanczos.

    Caching: the eigensolve is deterministic given the graph and the
    random start vector, so results are memoised in :mod:`repro.cache`
    (kind ``"fiedler"``) keyed by the graph digest, solver params, and a
    hash of the drawn start vector.  The start vector is drawn from the
    rng *before* the lookup, so a generator passed as ``seed`` consumes
    exactly the same entropy on a hit as on a miss — callers sharing an
    rng stream stay bit-for-bit deterministic either way.

    Parameters
    ----------
    g: connected graph with ``n >= 2``.
    normalized: use the normalized Laplacian (kernel ``D^{1/2} 1``).
    tol: convergence threshold on successive-iterate distance.
    max_iter: power-iteration budget before falling back to scipy.
    seed: seed for the random start vector.
    use_cache: consult the process cache before solving.
    """
    if g.n < 2:
        raise InvalidInputError("fiedler_vector needs n >= 2")
    rng = ensure_rng(seed)
    start = rng.standard_normal(g.n)
    if use_cache:
        from repro.cache import get_cache

        cache = get_cache()
        h = hashlib.blake2b(start.tobytes(), digest_size=16).hexdigest()
        parts = (g.digest(), bool(normalized), float(tol), int(max_iter), h)
        hit, value = cache.lookup("fiedler", parts)
        if hit:
            return value.copy()
        result = _solve_fiedler(g, normalized, tol, max_iter, start)
        cache.store("fiedler", parts, result)
        return result.copy()
    return _solve_fiedler(g, normalized, tol, max_iter, start)


def _solve_fiedler(
    g: Graph, normalized: bool, tol: float, max_iter: int, start: np.ndarray
) -> np.ndarray:
    """The actual eigensolve, from a caller-supplied start vector."""
    lap = normalized_laplacian(g) if normalized else laplacian(g)
    n = g.n
    if normalized:
        deg = g.weighted_degrees.copy()
        deg[deg <= 0] = 1.0
        kernel = np.sqrt(deg)
    else:
        kernel = np.ones(n)
    kernel /= np.linalg.norm(kernel)

    # Upper bound on eigenvalues: 2 for normalized, 2*max degree otherwise.
    shift = 2.0 if normalized else 2.0 * float(g.weighted_degrees.max() or 1.0)
    x = start.copy()
    x -= kernel * (kernel @ x)
    nrm = np.linalg.norm(x)
    if nrm == 0:  # pragma: no cover - probability zero
        x = np.ones(n)
        x[0] = -1.0
        nrm = np.linalg.norm(x)
    x /= nrm
    # The matvec dominates the iteration; dispatch it through the kernel
    # seam over the raw CSR arrays (the python backend reproduces
    # ``lap @ x`` exactly, so cached Fiedler digests are unaffected).
    lap_indptr, lap_indices, lap_data = lap.indptr, lap.indices, lap.data
    backend = kernels.get_backend()
    for _ in range(max_iter):
        y = shift * x - kernels.csr_matvec(
            lap_indptr, lap_indices, lap_data, x, backend=backend
        )
        y -= kernel * (kernel @ y)
        nrm = np.linalg.norm(y)
        if nrm < 1e-14:
            break
        y /= nrm
        if np.linalg.norm(y - x) < tol or np.linalg.norm(y + x) < tol:
            return y
        x = y
    # Fallback: scipy Lanczos on the two smallest eigenpairs.  The start
    # vector is the last power iterate so the result stays deterministic
    # for a given seed.
    try:
        from scipy.sparse.linalg import eigsh

        k = min(2, n - 1)
        _, vecs = eigsh(lap, k=k, sigma=-1e-3, which="LM", v0=x)
        return vecs[:, -1]
    except Exception:  # pragma: no cover - last resort, dense solve
        _, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]


def sweep_cut(
    g: Graph,
    embedding: np.ndarray,
    balance_fraction: float = 0.0,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """Best threshold cut along a 1-D embedding.

    Sorts vertices by ``embedding`` and evaluates every prefix as one cut
    side, returning the boolean mask of the best side and its score
    (conductance).  With ``balance_fraction = f > 0`` only prefixes whose
    ``weights``-mass lies within ``[f, 1 − f]`` of the total are eligible —
    this is how the bisection callers enforce balance.

    Runs in one vectorised pass: prefix cut weights are maintained by the
    identity ``cut(prefix + v) = cut(prefix) + deg_w(v) − 2·w(v, prefix)``
    accumulated over sorted adjacency, giving O(m + n log n) total.
    """
    emb = np.asarray(embedding, dtype=np.float64)
    if emb.shape != (g.n,):
        raise InvalidInputError(f"embedding must have shape ({g.n},)")
    if g.n < 2:
        raise InvalidInputError("sweep_cut needs n >= 2")
    w_node = np.ones(g.n) if weights is None else np.asarray(weights, dtype=np.float64)
    if w_node.shape != (g.n,):
        raise InvalidInputError(f"weights must have shape ({g.n},)")

    order = np.argsort(emb, kind="stable")
    rank = np.empty(g.n, dtype=np.int64)
    rank[order] = np.arange(g.n)

    # cut(prefix_t) for t = 1..n-1 via the streaming identity above.
    wdeg = g.weighted_degrees
    cut = np.zeros(g.n - 1)
    running = 0.0
    # For each vertex in order, subtract twice the weight to already-placed
    # neighbours. This is the only per-edge Python-level loop; it touches
    # each CSR entry once.
    indptr, indices, aw = g.indptr, g.indices, g.adj_weights
    for t, v in enumerate(order[:-1]):
        w_back = 0.0
        rv = rank[indices[indptr[v] : indptr[v + 1]]]
        ws = aw[indptr[v] : indptr[v + 1]]
        w_back = float(ws[rv < t].sum())
        running += float(wdeg[v]) - 2.0 * w_back
        cut[t] = running

    vol = np.cumsum(wdeg[order])[:-1]
    total_vol = float(wdeg.sum())
    mass = np.cumsum(w_node[order])[:-1]
    total_mass = float(w_node.sum())

    denom = np.minimum(vol, total_vol - vol)
    denom[denom <= 0] = np.inf
    score = cut / denom

    if balance_fraction > 0:
        lo = balance_fraction * total_mass
        hi = (1.0 - balance_fraction) * total_mass
        eligible = (mass >= lo - 1e-12) & (mass <= hi + 1e-12)
        if not eligible.any():
            # Fall back to the most balanced available split.
            eligible = np.zeros_like(score, dtype=bool)
            eligible[int(np.argmin(np.abs(mass - total_mass / 2)))] = True
        score = np.where(eligible, score, np.inf)

    best = int(np.argmin(score))
    mask = np.zeros(g.n, dtype=bool)
    mask[order[: best + 1]] = True
    return mask, float(score[best])


def spectral_bisection(
    g: Graph,
    balance_fraction: float = 0.25,
    weights: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Fiedler vector + balanced sweep cut; returns a boolean side mask.

    ``balance_fraction = 0.25`` keeps each side between 25% and 75% of the
    vertex mass — loose enough to find good cuts, tight enough that the
    recursion in the decomposition builders terminates in O(log n) depth.
    """
    if g.n < 2:
        raise InvalidInputError("spectral_bisection needs n >= 2")
    if g.m == 0:
        mask = np.zeros(g.n, dtype=bool)
        mask[: g.n // 2] = True
        return mask
    fv = fiedler_vector(g, seed=seed)
    mask, _ = sweep_cut(g, fv, balance_fraction=balance_fraction, weights=weights)
    return mask
