"""HGPT machinery: quantization, binarization, the signature DP, repair."""

from repro.hgpt.quantize import DemandGrid
from repro.hgpt.binarize import INF_WEIGHT, BinaryTree, binarize
from repro.hgpt.solution import LevelSet, TreeSolution
from repro.hgpt.dp import DPConfig, DPStats, compute_lower_bounds, solve_rhgpt
from repro.hgpt.repair import RepairReport, repair_to_placement

__all__ = [
    "DemandGrid",
    "INF_WEIGHT",
    "BinaryTree",
    "binarize",
    "LevelSet",
    "TreeSolution",
    "DPConfig",
    "DPStats",
    "compute_lower_bounds",
    "solve_rhgpt",
    "RepairReport",
    "repair_to_placement",
]
