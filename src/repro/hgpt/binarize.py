"""Binarization of decomposition trees for the DP (paper Section 3).

The DP's merge step (Claim 1) combines exactly two children, so arbitrary
trees are first converted to binary form the way the paper prescribes: a
node with ``f > 2`` children is replaced by a balanced binary gadget of
``f − 1`` dummy nodes whose *internal* edges have infinite weight (they
may never be cut), while each original child keeps its own edge weight.

Unary chains are collapsed: a node with a single child spans the same
leaf set as the child, and by the ``w_T`` definition both edges carry the
same weight, so the chain is equivalent to its bottom edge.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import InvalidInputError
from repro.decomposition.tree import DecompositionTree

__all__ = ["BinaryTree", "binarize", "INF_WEIGHT"]

#: Sentinel weight of dummy (uncuttable) edges.
INF_WEIGHT = math.inf


@dataclass
class BinaryTree:
    """Flat-array binary tree consumed by :mod:`repro.hgpt.dp`.

    Attributes
    ----------
    left, right:
        Child node ids (−1 at leaves).
    up_weight:
        Weight of the edge to the parent (``INF_WEIGHT`` on dummy edges,
        0 at the root — the root edge does not exist).
    vertex:
        Graph vertex hosted at each leaf (−1 at internal nodes).
    demand:
        Quantized leaf demand (0 at internal nodes).
    root:
        Root node id.
    """

    left: np.ndarray
    right: np.ndarray
    up_weight: np.ndarray
    vertex: np.ndarray
    demand: np.ndarray
    root: int

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return int(self.left.size)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        return self.left[node] < 0

    def postorder(self) -> np.ndarray:
        """Node ids with children before parents (iterative, no recursion)."""
        return self.subtree_postorder(self.root)

    def subtree_postorder(self, root: int) -> np.ndarray:
        """Postorder of the subtree rooted at ``root`` (children first)."""
        order: List[int] = []
        stack = [root]
        while stack:
            v = stack.pop()
            order.append(v)
            if self.left[v] >= 0:
                stack.append(int(self.left[v]))
            if self.right[v] >= 0:
                stack.append(int(self.right[v]))
        return np.asarray(order[::-1], dtype=np.int64)

    def subtree_digests(self, leaf_material: Sequence[bytes]) -> List[bytes]:
        """Bottom-up BLAKE2b digest of every subtree (one per node).

        ``leaf_material[vertex]`` is the graph-content hash of each
        ``G``-vertex's induced CSR slice
        (:func:`repro.decomposition.tree.vertex_content_digests`).  A
        leaf digest binds the leaf's quantized demand to that material;
        an internal digest binds both child digests *with the child
        up-edge weights* (the only tree inputs the DP reads at a merge
        beyond the child tables themselves).  Two subtrees with equal
        digests therefore produce bit-identical DP tables under equal
        capacities/deltas/beam — the correctness contract of the
        ``subtree_tables`` cache tier.

        Digests are position-independent: node ids never enter, so the
        same subtree recurring at a different index (or in a rebuilt
        tree after churn elsewhere) still hits the memo.
        """
        digests: List[bytes] = [b""] * self.n_nodes
        for v in self.postorder():
            if self.left[v] < 0:
                h = hashlib.blake2b(digest_size=16)
                h.update(b"L")
                h.update(int(self.demand[v]).to_bytes(8, "little"))
                h.update(leaf_material[int(self.vertex[v])])
                digests[v] = h.digest()
            else:
                a, b = int(self.left[v]), int(self.right[v])
                h = hashlib.blake2b(digest_size=16)
                h.update(b"I")
                h.update(digests[a])
                h.update(np.float64(self.up_weight[a]).tobytes())
                h.update(digests[b])
                h.update(np.float64(self.up_weight[b]).tobytes())
                digests[v] = h.digest()
        return digests

    def subtree_sizes(self) -> np.ndarray:
        """Node count of the subtree rooted at each node (leaves = 1)."""
        size = np.ones(self.n_nodes, dtype=np.int64)
        for v in self.postorder():
            if self.left[v] >= 0:
                size[v] += size[int(self.left[v])] + size[int(self.right[v])]
        return size

    def validate(self) -> None:
        """Structural sanity: every internal node has two children, every
        leaf a vertex and positive demand."""
        seen = np.zeros(self.n_nodes, dtype=bool)
        for v in self.postorder():
            seen[v] = True
            leaf = self.left[v] < 0
            if leaf:
                if self.right[v] >= 0 or self.vertex[v] < 0 or self.demand[v] < 1:
                    raise InvalidInputError(f"malformed leaf {v}")
            else:
                if self.right[v] < 0 or self.vertex[v] >= 0:
                    raise InvalidInputError(f"malformed internal node {v}")
        if not seen.all():
            raise InvalidInputError("unreachable nodes present")


def binarize(tree: DecompositionTree, qdemands: np.ndarray) -> BinaryTree:
    """Convert a decomposition tree + quantized demands into a
    :class:`BinaryTree`.

    Parameters
    ----------
    tree:
        Decomposition tree over ``G``.
    qdemands:
        Quantized demand per ``G``-vertex (positive integers).

    Notes
    -----
    Implemented iteratively over the decomposition tree's post-order so
    arbitrarily deep trees cannot blow the Python recursion limit.
    """
    q = np.asarray(qdemands, dtype=np.int64)
    if q.shape != (tree.graph.n,):
        raise InvalidInputError(
            f"qdemands must have shape ({tree.graph.n},), got {q.shape}"
        )
    if q.size and q.min() < 1:
        raise InvalidInputError("quantized demands must be >= 1")

    left: List[int] = []
    right: List[int] = []
    up_w: List[float] = []
    vert: List[int] = []
    dem: List[int] = []

    def new_node(w: float) -> int:
        nid = len(left)
        left.append(-1)
        right.append(-1)
        up_w.append(w)
        vert.append(-1)
        dem.append(0)
        return nid

    # For every decomposition-tree node, the id of the binary node that
    # roots its (collapsed, binarized) subtree.
    bin_of = np.full(tree.n_nodes, -1, dtype=np.int64)
    for t_node in tree.postorder():
        w_up = float(tree.edge_weight[t_node]) if tree.parent[t_node] >= 0 else 0.0
        if tree.is_leaf(t_node):
            nid = new_node(w_up)
            v = int(tree.leaf_vertex[t_node])
            vert[nid] = v
            dem[nid] = int(q[v])
            bin_of[t_node] = nid
            continue
        kids = [int(bin_of[c]) for c in tree.children[t_node]]
        if len(kids) == 1:
            # Unary collapse: same leaf set below both edges => same weight;
            # reuse the child's binary node, adopting this node's up-weight
            # (they are equal by construction, asserted cheaply).
            bin_of[t_node] = kids[0]
            up_w[kids[0]] = w_up
            continue
        # Balanced pairwise reduction: dummy internals get INF up-edges
        # except the final gadget root, which carries the real up-weight.
        layer = kids
        while len(layer) > 1:
            nxt: List[int] = []
            for i in range(0, len(layer) - 1, 2):
                nid = new_node(INF_WEIGHT)
                left[nid] = layer[i]
                right[nid] = layer[i + 1]
                nxt.append(nid)
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        top = layer[0]
        up_w[top] = w_up
        bin_of[t_node] = top

    root = int(bin_of[tree.root])
    up_w[root] = 0.0
    bt = BinaryTree(
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.asarray(up_w, dtype=np.float64),
        np.asarray(vert, dtype=np.int64),
        np.asarray(dem, dtype=np.int64),
        root,
    )
    return bt
