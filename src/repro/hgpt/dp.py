"""The RHGPT signature dynamic program (paper Section 3, Theorem 4).

Overview
--------
The relaxed problem (Definition 4) drops the ``≤ DEG(j)`` refinement
bound, after which Theorem 3 guarantees an optimal *nice* solution: for
every tree node ``v`` and level ``j`` at most one set's mirror region
crosses ``v`` — the ``(v, j)``-active set.  A partial solution on
``SUB(v)`` is then fully summarised by its *signature*
``(D¹, …, Dʰ)`` — the quantized demand of the active set per level
(Definition 8) — because every other set is closed strictly inside or
strictly outside the subtree.

States and transitions
----------------------
* Leaf ``v`` with quantized demand ``d'``: single state
  ``(d', …, d')`` at cost 0 (the leaf is active at every level).
* Internal ``v`` with children ``v1, v2`` reached by edges of weight
  ``w1, w2``: choose cut levels ``j1, j2 ∈ {0, …, h}`` (Definition 9).
  Child ``i``'s active sets at levels ``k ≤ ji`` propagate through ``v``
  and merge with the other child's; levels ``k > ji`` with ``Dᵢᵏ > 0``
  are *closed* — edge ``v vᵢ`` joins their cut and pays
  ``wᵢ · (cm(k−1) − cm(k))``.  The merged signature is
  ``Dᵏ = D₁ᵏ·[k ≤ j1] + D₂ᵏ·[k ≤ j2]`` and must respect the quantized
  capacities; Corollary 1's monotonicity ``Dᵏ ≥ Dᵏ⁺¹`` is automatic.

Cost accounting (one deliberate deviation — DESIGN.md §2)
---------------------------------------------------------
The paper's Eq. (4) charges half the multiplier difference per closed
set, matching Eq. (3) where per-set *minimum* cuts double-count shared
boundary edges.  We charge the full difference once per cut edge per
level — the *edge-cut* objective

    ``cost = Σ_{e ∈ T} Σ_{k : e cut at level k} w_T(e) · (cm(k−1) − cm(k))``

— which (i) equals the Eq. (1) cost of the placement induced by the level
sets (each level-``k`` component is one H-subtree) and (ii) upper-bounds
the mapped Eq. (1) cost on decomposition trees via Proposition 1.  The
literal half-payment rule can undercount by up to 2× when a closed set's
boundary edge is shared with the enclosing set, yielding tree "costs"
below the cost of any realizable placement.

Implementation
--------------
State tables are *structure-of-arrays* (signature matrix, cost vector,
back-pointer columns) and every pass — projection, pairwise merge,
deduplication, dominance pruning — is vectorised numpy over those
arrays.  The merge engine is a *bounded, tiled, optionally
subtree-parallel* kernel configured by :class:`DPConfig`; all knob
combinations return costs identical to the exhaustive merge (pinned by
``tests/hgpt/test_dp_kernel.py``).  Semantics:

* **Projection**: cutting a child's up-edge at level ``j`` zeroes
  signature components above ``j`` and pays for each closed non-empty
  level.  Infinite (dummy) edges admit only payment-free cut levels.
* **Dominance pruning**: ``(sig', cost')`` kills ``(sig, cost)`` when
  ``sig' ≤ sig`` componentwise and ``cost' ≤ cost`` — a smaller active
  set only loosens future capacity checks, and any payment triggered by
  ``Dᵏ > 0`` under ``sig'`` is also triggered under ``sig``.  The
  ``h ≥ 3`` scan is blocked: each block of cost-ordered candidates is
  first filtered against every previously kept signature in one
  vectorised comparison, and only the survivors fall through to the
  sequential intra-block pass (the old per-row loop profiled at ~97% of
  deep-hierarchy solve time).
* **Incumbent-bound pruning** (exact solves): a cheap beamed pre-pass
  seeds an upper bound, and an admissible per-node lower bound on the
  cost paid *outside* each subtree (mandatory closure payments,
  :func:`compute_lower_bounds`) drops any partial state that provably
  cannot beat the incumbent before it enters a cross-product.
* **Tiled merges**: the ``(j1, j2) × K1 × K2`` cross-product streams
  through fixed-size tiles that are bound-pruned, feasibility-masked and
  periodically compacted (radix dedupe + dominance), capping peak table
  bytes instead of materialising every candidate at once.
* **Subtree parallelism**: disjoint subtrees below a size threshold are
  independent, so their tables can be farmed across the persistent
  :mod:`repro.core.pool` workers; the parent merges only the spine.
* **Beam**: an optional cap on states kept per node; the most-closed
  surviving state is always retained (dropping every flexible state can
  make an ancestor infeasible), and the solver escalates to the exact
  DP if pruning ever kills feasibility.  Beamed runs stay *sound* — any
  kept state reconstructs to a valid solution.  Incumbent-bound pruning
  is disabled under a beam so beamed state selection (and therefore
  beamed results) stay bit-identical to the pre-kernel implementation.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.kernels as kernels
from repro.errors import InvalidInputError, SolverError
from repro.hgpt.binarize import BinaryTree
from repro.hgpt.solution import LevelSet, TreeSolution
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    get_registry,
)

__all__ = [
    "solve_rhgpt",
    "DPConfig",
    "DPStats",
    "SubtreeMemo",
    "compute_lower_bounds",
]


@dataclass(frozen=True)
class DPConfig:
    """Knobs of the bounded, tiled, subtree-parallel merge kernel.

    Every combination returns the same solution *costs* as the
    exhaustive merge; the knobs trade memory and wall-clock, never
    quality (property-tested in ``tests/hgpt/test_dp_kernel.py``).

    Attributes
    ----------
    tile_size:
        Cross-product pairs materialised per merge tile.  Survivors are
        compacted (dedupe + dominance) whenever the pending buffer
        exceeds ``2 × tile_size`` rows, capping peak table bytes.
        ``0`` = legacy single-pass accumulation (one compaction per
        node, chunked only to bound the transient ``sums`` array).
    bound_pruning:
        Incumbent/lower-bound pruning on *exact* solves: a beamed
        pre-pass (width :attr:`incumbent_beam`) seeds an upper bound,
        and states whose cost plus the admissible outside-subtree lower
        bound exceeds it are dropped before they enter a cross-product.
        Ignored under a beam (see the module docstring).
    parallel_subtrees:
        Farm independent subtrees across the persistent
        :mod:`repro.core.pool` workers and merge only the spine in the
        parent.  Automatically disabled inside pool workers (no nested
        pools) and on trees smaller than :attr:`parallel_min_nodes`.
    parallel_workers:
        Worker processes for subtree farming (``0`` = ``min(cpu, 8)``).
    parallel_threshold:
        Largest farmed subtree, in binary-tree nodes (``0`` = auto:
        ``max(16, n_nodes // (2 × workers))``).
    parallel_min_nodes:
        Smallest tree worth farming at all.
    incumbent_beam:
        Beam width of the bound-seeding pre-pass.  Wider beams cost
        more up front but tighten the incumbent; 256 is the sweet spot
        on deep (h >= 4) hierarchies, where a loose bound leaves most
        of the cross-product unpruned.
    """

    tile_size: int = 1 << 18
    bound_pruning: bool = True
    parallel_subtrees: bool = False
    parallel_workers: int = 0
    parallel_threshold: int = 0
    parallel_min_nodes: int = 64
    incumbent_beam: int = 256

    def __post_init__(self) -> None:
        if self.tile_size < 0:
            raise InvalidInputError(
                f"tile_size must be >= 0, got {self.tile_size}"
            )
        if self.parallel_workers < 0:
            raise InvalidInputError(
                f"parallel_workers must be >= 0, got {self.parallel_workers}"
            )
        if self.parallel_threshold < 0:
            raise InvalidInputError(
                f"parallel_threshold must be >= 0, got {self.parallel_threshold}"
            )
        if self.parallel_min_nodes < 1:
            raise InvalidInputError(
                f"parallel_min_nodes must be >= 1, got {self.parallel_min_nodes}"
            )
        if self.incumbent_beam < 1:
            raise InvalidInputError(
                f"incumbent_beam must be >= 1, got {self.incumbent_beam}"
            )


#: Module default: tiling + bound pruning on, subtree farming opt-in.
_DEFAULT_CONFIG = DPConfig()

#: Kernel-off reference configuration (the pre-kernel merge semantics).
_LEGACY_CONFIG = DPConfig(
    tile_size=0, bound_pruning=False, parallel_subtrees=False
)


#: Hoisted metric-family handles (lazy — the registry may be reset or
#: absent at import): one tuple lookup per solve instead of nine
#: registry find-or-create calls.  Keyed on ``(registry, generation)``
#: so a test-side ``reset()`` invalidates the cache instead of leaving
#: orphaned families.
_DP_METRIC_HANDLES: Optional[tuple] = None


def _dp_metric_handles() -> tuple:
    global _DP_METRIC_HANDLES
    metrics = get_registry()
    cached = _DP_METRIC_HANDLES
    if cached is not None and cached[0] is metrics and cached[1] == metrics.generation:
        return cached[2]
    handles = (
            metrics.counter(
                "repro_dp_solves_total", "Completed signature-DP solves"
            ),
            metrics.counter(
                "repro_dp_nodes_total", "Binary-tree nodes processed by the DP"
            ),
            metrics.counter(
                "repro_dp_states_total", "DP states created across all nodes"
            ),
            metrics.counter(
                "repro_dp_merges_total", "Pairwise signature merges evaluated"
            ),
            metrics.counter(
                "repro_dp_tiles_total", "Merge tiles streamed by the DP kernel"
            ),
            metrics.counter(
                "repro_dp_bound_pruned_total",
                "States dropped by incumbent-bound pruning",
            ),
            metrics.counter(
                "repro_incremental_subtree_hits_total",
                "Subtree DP tables served from the subtree_tables memo",
            ),
            metrics.counter(
                "repro_incremental_subtree_misses_total",
                "Subtree DP tables rebuilt and stored by the memo",
            ),
            metrics.histogram(
                "repro_dp_states_max",
                "Largest per-node state table of one DP solve",
                buckets=DEFAULT_SIZE_BUCKETS,
            ),
            metrics.histogram(
                "repro_dp_table_peak_bytes",
                "Peak live merge-table bytes of one DP solve",
                buckets=DEFAULT_BYTE_BUCKETS,
            ),
            metrics.histogram(
                "repro_dp_seconds", "Wall-clock seconds of one DP solve"
            ),
        )
    _DP_METRIC_HANDLES = (metrics, metrics.generation, handles)
    return handles


def _publish_dp_metrics(stats: "DPStats", seconds: float) -> None:
    """Fold one DP run's counters into the process-local metrics registry."""
    (
        solves,
        nodes,
        states,
        merges,
        tiles,
        bound_pruned,
        memo_hits,
        memo_misses,
        states_max,
        peak_bytes,
        dp_seconds,
    ) = _dp_metric_handles()
    solves.inc()
    nodes.inc(stats.nodes)
    states.inc(stats.states_total)
    merges.inc(stats.merges)
    tiles.inc(stats.tiles)
    bound_pruned.inc(stats.bound_pruned)
    if stats.memo_hits:
        memo_hits.inc(stats.memo_hits)
    if stats.memo_misses:
        memo_misses.inc(stats.memo_misses)
    states_max.observe(stats.states_max)
    peak_bytes.observe(stats.table_peak_bytes)
    dp_seconds.observe(seconds)


class DPStats:
    """Counters describing one DP run (consumed by E4/E18's scaling studies)."""

    __slots__ = (
        "states_total",
        "states_max",
        "merges",
        "nodes",
        "tiles",
        "bound_pruned",
        "table_peak_bytes",
        "memo_hits",
        "memo_misses",
    )

    def __init__(self) -> None:
        self.states_total = 0
        self.states_max = 0
        self.merges = 0
        self.nodes = 0
        self.tiles = 0
        self.bound_pruned = 0
        self.table_peak_bytes = 0
        self.memo_hits = 0
        self.memo_misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DPStats(nodes={self.nodes}, states_total={self.states_total}, "
            f"states_max={self.states_max}, merges={self.merges}, "
            f"tiles={self.tiles}, bound_pruned={self.bound_pruned}, "
            f"table_peak_bytes={self.table_peak_bytes}, "
            f"memo_hits={self.memo_hits}, memo_misses={self.memo_misses})"
        )

    def as_dict(self) -> dict:
        """Plain-dict view (folded into engine telemetry member records)."""
        return {
            "nodes": self.nodes,
            "states_total": self.states_total,
            "states_max": self.states_max,
            "merges": self.merges,
            "tiles": self.tiles,
            "bound_pruned": self.bound_pruned,
            "table_peak_bytes": self.table_peak_bytes,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }

    def update(self, other: "DPStats") -> None:
        """Accumulate another run's counters (per-tree -> caller totals)."""
        self.states_total += other.states_total
        self.states_max = max(self.states_max, other.states_max)
        self.merges += other.merges
        self.nodes += other.nodes
        self.tiles += other.tiles
        self.bound_pruned += other.bound_pruned
        self.table_peak_bytes = max(
            self.table_peak_bytes, other.table_peak_bytes
        )
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses


@dataclass
class _Table:
    """State table of one tree node (structure-of-arrays).

    ``sigs[(m, h)]`` / ``costs[(m,)]`` hold the Pareto states; the four
    back-pointer columns record, for internal nodes, which child states
    and cut levels produced each state (−1 at leaves).
    """

    sigs: np.ndarray
    costs: np.ndarray
    ia: np.ndarray
    ja: np.ndarray
    ib: np.ndarray
    jb: np.ndarray

    @property
    def size(self) -> int:
        return int(self.costs.size)


class SubtreeMemo:
    """Content-addressed per-node DP-table memo (the ``subtree_tables``
    cache tier).

    One instance carries one solve attempt's key material: the
    position-independent bottom-up subtree digests
    (:meth:`repro.hgpt.binarize.BinaryTree.subtree_digests` — hierarchy
    shape, child up-edge weights, quantized leaf demands and each leaf
    vertex's induced CSR slice) plus an *instance token* covering every
    remaining input the table pass reads: quantized capacities, level
    deltas, beam width and the merge tile size.  Lookups and stores go
    through the process-wide :mod:`repro.cache` instance, so the tier
    shares the byte budget, disk persistence and corrupt-entry recovery
    discipline of the existing tiers.

    Correctness contract: a memoised table is byte-for-byte what
    ``_solve_tables`` would rebuild for that node, because every input
    of the build is folded into the digest or the token.  Only
    *context-free* passes may memoise — exact solves with
    incumbent-bound pruning shape tables by the global incumbent and
    outside-subtree lower bounds, so :func:`solve_rhgpt` drops the memo
    in that mode (see the gating there).  The kernel backend is
    deliberately excluded from the token: backends are bit-identical by
    the PR 8 equivalence contract, so tables interchange freely.
    """

    KIND = "subtree_tables"

    __slots__ = ("_digests", "_token", "_cache", "_h")

    def __init__(
        self,
        digests: Sequence[bytes],
        caps: Sequence[int],
        deltas: Sequence[float],
        beam_width: Optional[int],
        dp_config: Optional[DPConfig] = None,
        extra_parts: Tuple[object, ...] = (),
    ):
        from repro.cache import cache_key, get_cache

        cfg = dp_config if dp_config is not None else _DEFAULT_CONFIG
        caps_arr = np.asarray(caps, dtype=np.int64)
        deltas_arr = np.asarray(deltas, dtype=np.float64)
        self._digests = list(digests)
        self._h = int(caps_arr.size)
        self._token = cache_key(
            "subtree_token",
            (
                caps_arr,
                deltas_arr,
                -1 if beam_width is None else int(beam_width),
                int(cfg.tile_size),
            )
            + tuple(extra_parts),
        )
        self._cache = get_cache()

    def load(self, node: int) -> Optional[_Table]:
        """The memoised table of ``node``, or ``None`` on miss.

        Hit values are shape-validated before use so a corrupt disk
        entry that survived unpickling degrades to a miss instead of
        poisoning the solve.
        """
        hit, value = self._cache.lookup(
            self.KIND, (self._digests[node], self._token)
        )
        if not hit:
            return None
        if (
            not isinstance(value, _Table)
            or value.sigs.ndim != 2
            or value.sigs.shape[1] != self._h
            or value.costs.shape != (value.sigs.shape[0],)
        ):
            return None
        return value

    def save(self, node: int, table: _Table) -> None:
        """Store ``node``'s freshly built table in both cache tiers."""
        self._cache.store(self.KIND, (self._digests[node], self._token), table)


def _encode_rows(sigs: np.ndarray) -> Optional[np.ndarray]:
    """Radix-encode signature rows into scalar int64 keys (or ``None``
    when the value range would overflow — caller falls back to
    row-wise uniqueness)."""
    if sigs.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    bases = sigs.max(axis=0).astype(np.int64) + 1
    total = 1
    for b in bases:
        total *= int(b)
        if total > (1 << 62):
            return None
    keys = np.zeros(sigs.shape[0], dtype=np.int64)
    for i in range(sigs.shape[1]):
        keys = keys * int(bases[i]) + sigs[:, i]
    return keys


def _dedupe_min(
    sigs: np.ndarray, costs: np.ndarray, tie: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per unique signature keep the cheapest row.

    Returns (unique_sigs, min_costs, source_row_index), deterministic:
    ties resolve to the smallest ``tie`` rank in (cost, tie) order
    (row position when ``tie`` is ``None`` — the tiled merge passes the
    global cross-product rank so compaction order cannot change
    winners).  Rows are radix-encoded to scalar keys so uniqueness is
    one int64 sort — ``np.unique(axis=0)``'s structured-dtype argsort
    profiled ~10x slower on the DP's tables.
    """
    if sigs.shape[0] == 0:
        return sigs, costs, np.empty(0, dtype=np.int64)
    if tie is None:
        tie = np.arange(costs.size, dtype=np.int64)
    keys = _encode_rows(sigs)
    if keys is None:  # pragma: no cover - astronomically large capacities
        uniq, inverse = np.unique(sigs, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        order = np.lexsort((tie, costs, inverse))
        sorted_inv = inverse[order]
        first = np.concatenate([[True], sorted_inv[1:] != sorted_inv[:-1]])
        winners = order[first]
        return uniq, costs[winners], winners
    order = np.lexsort((tie, costs, keys))
    sorted_keys = keys[order]
    first = np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
    winners = order[first]
    return sigs[winners], costs[winners], winners


def _project(
    table: _Table, w: float, deltas: np.ndarray, h: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All (cut-level, signature) projections of a child's state table.

    Returns (psigs, pcosts, origin_state, cut_level) after per-signature
    deduplication.  Infinite edges keep only payment-free projections.
    """
    sigs, costs = table.sigs, table.costs
    m = costs.size
    infinite = math.isinf(w)
    blocks_sig: List[np.ndarray] = []
    blocks_cost: List[np.ndarray] = []
    blocks_orig: List[np.ndarray] = []
    blocks_j: List[np.ndarray] = []
    extra = np.zeros(m)
    valid = np.ones(m, dtype=bool)
    arange = np.arange(m, dtype=np.int64)
    for j in range(h, -1, -1):
        psig = sigs.copy()
        if j < h:
            psig[:, j:] = 0
        rows = valid if infinite else slice(None)
        blocks_sig.append(psig[rows])
        blocks_cost.append((costs + extra)[rows])
        blocks_orig.append(arange[rows])
        blocks_j.append(np.full(int(np.count_nonzero(valid)) if infinite else m, j,
                                dtype=np.int64))
        if j > 0:
            pays = sigs[:, j - 1] > 0
            if infinite:
                # A row that would pay on an uncuttable edge is invalid at
                # this and every smaller cut level.
                valid = valid & ~pays
            else:
                extra = extra + np.where(pays, w * deltas[j], 0.0)
    psigs = np.vstack(blocks_sig)
    pcosts = np.concatenate(blocks_cost)
    porig = np.concatenate(blocks_orig)
    pj = np.concatenate(blocks_j)
    uniq, min_costs, winners = _dedupe_min(psigs, pcosts)
    return uniq, min_costs, porig[winners], pj[winners]


def _dominance_prune(
    sigs: np.ndarray,
    costs: np.ndarray,
    beam_width: Optional[int],
) -> np.ndarray:
    """Indices of surviving states (dominance + optional beam).

    States are scanned in ascending (cost, signature) order; a state
    survives unless a previously kept signature is ≤ it componentwise.
    The scan itself is the ``dp_dominance_prune`` kernel dispatched
    through :mod:`repro.kernels` (the python backend keeps the original
    staircase / blocked specialisations, the numba backend JIT-compiles
    an equivalent sequential scan — identical kept sets by construction).
    Under beam truncation the most-closed state (minimal component sum)
    is always re-inserted — see the module docstring.
    """
    m = costs.size
    h = sigs.shape[1]
    if m <= 1:
        return np.arange(m, dtype=np.int64)
    order = np.lexsort(tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (costs,))
    kept_idx, truncated = kernels.dp_dominance_prune(
        sigs, costs, order, -1 if beam_width is None else int(beam_width)
    )
    if truncated:
        sums = sigs.sum(axis=1)
        flex = int(
            np.lexsort(
                tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (sums,)
            )[0]
        )
        if not (kept_idx == flex).any():
            kept_idx = np.append(kept_idx, np.int64(flex))
    return kept_idx


# ----------------------------------------------------------------------
# admissible lower bounds (incumbent-bound pruning)
# ----------------------------------------------------------------------


def compute_lower_bounds(
    bt: BinaryTree, caps: Sequence[int], deltas: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Admissible per-node closure-payment lower bounds, in one pass each.

    Returns ``(sub_lb, outside_lb)``:

    * ``sub_lb[v]`` lower-bounds the cost of **any** feasible DP state
      at ``v`` — the mandatory closure payments inside ``SUB(v)``.  At
      level ``k`` every set holds at most ``caps[k-1]`` quantized
      demand and at most one set stays active across ``v``, so at least
      ``ceil(dem(v)/caps[k-1]) − 1`` sets are closed strictly inside
      ``SUB(v)``; distinct same-level closures are paid by distinct
      edge cuts, each at least the cheapest finite edge weight below
      ``v`` times ``deltas[k]``.  The recursion takes the max of that
      splitting bound and the children's bounds (subtree costs add).
    * ``outside_lb[v]`` lower-bounds the cost any completion pays
      **outside** ``SUB(v)``: the sum of ``sub_lb`` over every subtree
      hanging off the path from ``v`` to the root.

    Admissibility (``sub_lb[v] ≤`` the cheapest state cost at ``v``) is
    pinned against the exhaustive DP in ``tests/hgpt/test_dp_kernel.py``.
    """
    caps_arr = np.asarray(caps, dtype=np.int64)
    deltas_arr = np.asarray(deltas, dtype=np.float64)
    h = caps_arr.size
    n = bt.n_nodes
    dem = np.zeros(n, dtype=np.int64)
    wmin = np.full(n, np.inf)  # cheapest finite edge weight below v
    sub_lb = np.zeros(n)
    post = bt.postorder()
    for v in post:
        if bt.is_leaf(v):
            dem[v] = int(bt.demand[v])
            continue
        a, b = int(bt.left[v]), int(bt.right[v])
        dem[v] = dem[a] + dem[b]
        w = min(wmin[a], wmin[b])
        for child in (a, b):
            cw = float(bt.up_weight[child])
            if math.isfinite(cw):
                w = min(w, cw)
        wmin[v] = w
        split = 0.0
        if math.isfinite(w):
            for k in range(1, h + 1):
                cap = int(caps_arr[k - 1])
                forced = -(-int(dem[v]) // cap) - 1
                if forced > 0:
                    split += deltas_arr[k] * forced * w
        sub_lb[v] = max(sub_lb[a] + sub_lb[b], split)
    outside_lb = np.zeros(n)
    for v in post[::-1]:  # parents before children
        if bt.is_leaf(v):
            continue
        a, b = int(bt.left[v]), int(bt.right[v])
        outside_lb[a] = outside_lb[v] + sub_lb[b]
        outside_lb[b] = outside_lb[v] + sub_lb[a]
    return sub_lb, outside_lb


# ----------------------------------------------------------------------
# the tiled merge
# ----------------------------------------------------------------------

# Cap on the cross-product entries materialised at once in legacy
# (tile_size=0) mode (matches the pre-kernel chunking).
_MERGE_CHUNK = 4_000_000


def _merge_node(
    pa: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    pb: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    caps_arr: np.ndarray,
    beam_width: Optional[int],
    budget: float,
    cfg: DPConfig,
    stats: "DPStats",
) -> Optional[_Table]:
    """Merge two projected child tables through the tiled kernel.

    ``budget`` is the node-local cost ceiling (incumbent minus the
    outside-subtree lower bound; ``inf`` disables bound pruning).
    Returns ``None`` when no feasible pair survives.
    """
    pa_sig, pa_cost, pa_orig, pa_j = pa
    pb_sig, pb_cost, pb_orig, pb_j = pb

    if budget < math.inf and pa_cost.size and pb_cost.size:
        # Row-level pruning before the cross-product: a row that cannot
        # beat the budget even with the cheapest possible partner never
        # produces a surviving pair (the optimal pair's rows survive
        # because their joint cost is within budget).
        keep_a = pa_cost + float(pb_cost.min()) <= budget
        stats.bound_pruned += int(pa_cost.size - np.count_nonzero(keep_a))
        pa_sig, pa_cost = pa_sig[keep_a], pa_cost[keep_a]
        pa_orig, pa_j = pa_orig[keep_a], pa_j[keep_a]
        if pa_cost.size:
            keep_b = pb_cost + float(pa_cost.min()) <= budget
            stats.bound_pruned += int(pb_cost.size - np.count_nonzero(keep_b))
            pb_sig, pb_cost = pb_sig[keep_b], pb_cost[keep_b]
            pb_orig, pb_j = pb_orig[keep_b], pb_j[keep_b]

    na, nb = pa_cost.size, pb_cost.size
    total = na * nb
    if total == 0:
        return None
    h = caps_arr.size
    tiled = cfg.tile_size > 0
    tile = cfg.tile_size if tiled else max(1, _MERGE_CHUNK // max(1, h))
    compact_rows = 2 * tile

    # Accumulated survivors (compacted) + pending tile survivors.
    acc: Optional[Tuple[np.ndarray, ...]] = None
    buf: List[Tuple[np.ndarray, ...]] = []
    pending = 0
    peak = 0

    def compact(final: bool) -> None:
        nonlocal acc, buf, pending
        parts = ([acc] if acc is not None else []) + buf
        if not parts:
            return
        sigs = np.vstack([p[0] for p in parts])
        costs = np.concatenate([p[1] for p in parts])
        ii = np.concatenate([p[2] for p in parts])
        jj = np.concatenate([p[3] for p in parts])
        rank = np.concatenate([p[4] for p in parts])
        uniq, min_costs, winners = _dedupe_min(sigs, costs, tie=rank)
        keep = _dominance_prune(
            uniq, min_costs, beam_width if final else None
        )
        win = winners[keep]
        acc = (uniq[keep], min_costs[keep], ii[win], jj[win], rank[win])
        buf = []
        pending = 0

    # Transient per-row tile footprint: int64 sig row + float64 cost +
    # three int64 index columns (what the pre-seam loop materialised).
    row_bytes = 8 * h + 32
    for start in range(0, total, tile):
        stats.tiles += 1
        stop = min(total, start + tile)
        sums, costs_t, ii, jj, rank, n_ok = kernels.dp_tile_merge(
            pa_sig, pa_cost, pb_sig, pb_cost, caps_arr, start, stop, budget
        )
        stats.bound_pruned += (stop - start) - n_ok
        stats.merges += n_ok
        if n_ok == 0:
            continue
        tile_bytes = n_ok * row_bytes
        if costs_t.size:
            buf.append((sums, costs_t, ii, jj, rank))
            pending += int(costs_t.size)
        live = tile_bytes + sum(
            sum(arr.nbytes for arr in part)
            for part in ([acc] if acc is not None else []) + buf
        )
        peak = max(peak, live)
        if tiled and pending >= compact_rows:
            compact(final=False)
    compact(final=True)
    stats.table_peak_bytes = max(stats.table_peak_bytes, peak)
    if acc is None or acc[0].shape[0] == 0:
        return None
    sigs, costs, ii, jj, _rank = acc
    return _Table(
        sigs=sigs,
        costs=costs,
        ia=pa_orig[ii],
        ja=pa_j[ii],
        ib=pb_orig[jj],
        jb=pb_j[jj],
    )


# ----------------------------------------------------------------------
# table construction (shared by serial solves, spines, and pool workers)
# ----------------------------------------------------------------------


def _solve_tables(
    bt: BinaryTree,
    caps_arr: np.ndarray,
    deltas_arr: np.ndarray,
    beam_width: Optional[int],
    cfg: DPConfig,
    stats: "DPStats",
    nodes: np.ndarray,
    tables: List[Optional[_Table]],
    incumbent: float = math.inf,
    outside_lb: Optional[np.ndarray] = None,
    memo: Optional["SubtreeMemo"] = None,
) -> None:
    """Fill ``tables`` for ``nodes`` (a children-before-parents order).

    ``tables`` entries for the children of every processed internal node
    must already be present (leaves are built on the fly), so the same
    routine serves whole trees, farmed subtrees, and the parent spine.

    When ``memo`` is given, every internal node first probes the
    ``subtree_tables`` tier; hits skip the projection/merge work
    entirely (the children's tables are still present for the rebuild —
    they hit the memo themselves unless they sit on the dirty spine).
    The memo is only honoured on context-free passes
    (``incumbent == inf``); bound-pruned passes shape tables by global
    state and must rebuild.
    """
    h = int(caps_arr.size)
    caps_min = int(caps_arr.min())
    neg1 = np.full(1, -1, dtype=np.int64)
    use_memo = memo is not None and incumbent == math.inf
    for node in nodes:
        if bt.is_leaf(node):
            d = int(bt.demand[node])
            if d > caps_min:
                raise SolverError(
                    f"leaf demand {d} exceeds capacities {caps_arr.tolist()} "
                    "— the demand grid should have rejected this instance"
                )
            tables[node] = _Table(
                sigs=np.full((1, h), d, dtype=np.int64),
                costs=np.zeros(1),
                ia=neg1.copy(),
                ja=neg1.copy(),
                ib=neg1.copy(),
                jb=neg1.copy(),
            )
        else:
            cached = memo.load(node) if use_memo else None
            if cached is not None:
                stats.memo_hits += 1
                tables[node] = cached
            else:
                a, b = int(bt.left[node]), int(bt.right[node])
                ta, tb = tables[a], tables[b]
                assert ta is not None and tb is not None
                pa = _project(ta, float(bt.up_weight[a]), deltas_arr, h)
                pb = _project(tb, float(bt.up_weight[b]), deltas_arr, h)
                budget = math.inf
                if incumbent < math.inf and outside_lb is not None:
                    budget = incumbent - float(outside_lb[node])
                merged = _merge_node(
                    pa, pb, caps_arr, beam_width, budget, cfg, stats
                )
                if merged is None:
                    raise SolverError(
                        "no feasible merged state — capacities too tight for "
                        "this tree (grid admission should prevent this)"
                    )
                tables[node] = merged
                if use_memo:
                    stats.memo_misses += 1
                    memo.save(node, merged)  # type: ignore[union-attr]
        stats.nodes += 1
        size = tables[node].size  # type: ignore[union-attr]
        stats.states_total += size
        stats.states_max = max(stats.states_max, size)


# ----------------------------------------------------------------------
# subtree parallelism
# ----------------------------------------------------------------------


def _partition_subtrees(
    bt: BinaryTree, max_nodes: int, min_nodes: int = 8
) -> List[int]:
    """Roots of disjoint subtrees with ``min_nodes <= size <= max_nodes``.

    Walks down from the root, splitting any subtree above ``max_nodes``;
    subtrees below ``min_nodes`` are left to the spine (not worth a
    process hop).  The returned roots never include the tree root.
    """
    size = bt.subtree_sizes()
    roots: List[int] = []
    stack = [int(bt.left[bt.root]), int(bt.right[bt.root])] \
        if not bt.is_leaf(bt.root) else []
    while stack:
        v = stack.pop()
        if size[v] > max_nodes:
            if not bt.is_leaf(v):
                stack.append(int(bt.left[v]))
                stack.append(int(bt.right[v]))
            continue
        if size[v] >= min_nodes:
            roots.append(v)
    return sorted(roots)


def solve_subtree_tables(payload: Dict[str, object], root: int) -> dict:
    """Pool-worker entry: build one farmed subtree's state tables.

    ``payload`` is the generation dict published by
    :func:`_solve_parallel` (tree, caps, deltas, beam, config, incumbent
    and outside lower bounds).  Returns the subtree's tables as plain
    arrays plus the worker-side counters, all picklable.
    """
    bt: BinaryTree = payload["bt"]  # type: ignore[assignment]
    caps_arr = np.asarray(payload["caps"], dtype=np.int64)
    deltas_arr = np.asarray(payload["deltas"], dtype=np.float64)
    cfg: DPConfig = payload["cfg"]  # type: ignore[assignment]
    stats = DPStats()
    tables: List[Optional[_Table]] = [None] * bt.n_nodes
    nodes = bt.subtree_postorder(root)
    # Workers inherit the parent's resolved kernel backend by name so
    # farmed subtrees dispatch exactly like the spine.
    with kernels.use_backend(str(payload.get("kernel_backend", "auto"))):
        _solve_tables(
            bt,
            caps_arr,
            deltas_arr,
            payload["beam_width"],  # type: ignore[arg-type]
            cfg,
            stats,
            nodes,
            tables,
            incumbent=float(payload["incumbent"]),  # type: ignore[arg-type]
            outside_lb=payload["outside_lb"],  # type: ignore[arg-type]
        )
    return {
        "root": root,
        "tables": {
            int(v): tables[v] for v in nodes if tables[v] is not None
        },
        "stats": stats.as_dict(),
    }


def _solve_parallel(
    bt: BinaryTree,
    caps_arr: np.ndarray,
    deltas_arr: np.ndarray,
    beam_width: Optional[int],
    cfg: DPConfig,
    stats: "DPStats",
    tables: List[Optional[_Table]],
    incumbent: float,
    outside_lb: Optional[np.ndarray],
) -> bool:
    """Farm independent subtrees to the pool; solve the spine here.

    Returns ``False`` (caller falls back to the serial pass) when the
    tree partitions into fewer than two farmable subtrees or this
    process is itself a pool worker.
    """
    from repro.core import pool as worker_pool

    if worker_pool.in_worker():
        return False
    workers = cfg.parallel_workers or min(os.cpu_count() or 1, 8)
    if workers < 2:
        return False
    max_nodes = cfg.parallel_threshold or max(16, bt.n_nodes // (2 * workers))
    roots = _partition_subtrees(bt, max_nodes)
    if len(roots) < 2:
        return False

    executor = worker_pool.get_pool(min(workers, len(roots)))
    ref = worker_pool.publish_generation(
        {
            "bt": bt,
            "caps": caps_arr,
            "deltas": deltas_arr,
            "beam_width": beam_width,
            "cfg": cfg,
            "incumbent": incumbent,
            "outside_lb": outside_lb,
            "kernel_backend": kernels.get_backend().name,
        }
    )
    try:
        jobs = [(ref, r) for r in roots]
        results = list(executor.map(worker_pool.dp_subtree_job, jobs))
    finally:
        worker_pool.release_generation(ref)

    covered = np.zeros(bt.n_nodes, dtype=bool)
    for result in results:
        sub_stats = result["stats"]
        stats.nodes += sub_stats["nodes"]
        stats.states_total += sub_stats["states_total"]
        stats.states_max = max(stats.states_max, sub_stats["states_max"])
        stats.merges += sub_stats["merges"]
        stats.tiles += sub_stats["tiles"]
        stats.bound_pruned += sub_stats["bound_pruned"]
        stats.table_peak_bytes = max(
            stats.table_peak_bytes, sub_stats["table_peak_bytes"]
        )
        stats.memo_hits += sub_stats.get("memo_hits", 0)
        stats.memo_misses += sub_stats.get("memo_misses", 0)
        for node, table in result["tables"].items():
            tables[node] = table
            covered[node] = True
    get_registry().counter(
        "repro_dp_parallel_subtrees_total",
        "Subtrees farmed to pool workers by the DP kernel",
    ).inc(len(roots))

    spine = np.asarray(
        [v for v in bt.postorder() if not covered[v]], dtype=np.int64
    )
    _solve_tables(
        bt,
        caps_arr,
        deltas_arr,
        beam_width,
        cfg,
        stats,
        spine,
        tables,
        incumbent=incumbent,
        outside_lb=outside_lb,
    )
    return True


# ----------------------------------------------------------------------
# the solver
# ----------------------------------------------------------------------


def solve_rhgpt(
    bt: BinaryTree,
    caps: Sequence[int],
    deltas: Sequence[float],
    beam_width: Optional[int] = None,
    stats: Optional[DPStats] = None,
    dp_config: Optional[DPConfig] = None,
    memo: Optional[SubtreeMemo] = None,
) -> TreeSolution:
    """Run the signature DP and reconstruct an optimal nice solution.

    Parameters
    ----------
    bt:
        Binarized decomposition tree with quantized leaf demands.
    caps:
        Quantized capacities for levels ``1..h`` (``caps[i]`` is
        ``C'(i+1)``), non-increasing in ``i``.
    deltas:
        ``deltas[k] = cm(k−1) − cm(k)`` for ``k = 1..h`` (index 0
        unused); non-negative.
    beam_width:
        Optional cap on states kept per node (exact when ``None``).
    stats:
        Optional counter object filled during the run.
    dp_config:
        Merge-kernel knobs (``None`` = the tiled, bound-pruned default;
        see :class:`DPConfig`).  All combinations return identical
        solution costs.
    memo:
        Optional :class:`SubtreeMemo` for the incremental warm path.
        Honoured only when the table pass is *context-free* — beamed
        solves, or exact solves with ``bound_pruning`` off — because
        incumbent-bound pruning shapes tables by global state.  Memo
        hits return exactly what a rebuild would produce, so warm
        results are bit-identical to cold ones.

    Returns
    -------
    TreeSolution
        Optimal relaxed solution (level collections 1..h) with its
        edge-cut cost.

    Raises
    ------
    SolverError
        If no feasible state survives at the root (cannot happen when the
        demand grid admitted the instance — signals a bug).
    """
    h = len(caps)
    if len(deltas) != h + 1:
        raise SolverError(f"need h+1 = {h + 1} deltas, got {len(deltas)}")
    if any(d < 0 for d in deltas):
        raise SolverError(f"deltas must be non-negative, got {list(deltas)}")
    caps_arr = np.asarray(caps, dtype=np.int64)
    if np.any(caps_arr[:-1] < caps_arr[1:]):
        raise SolverError(f"capacities must be non-increasing, got {list(caps)}")
    deltas_arr = np.asarray(deltas, dtype=np.float64)
    cfg = dp_config if dp_config is not None else _DEFAULT_CONFIG

    # Track counters even when the caller passed no collector, so the
    # metrics registry sees every solve.
    own_stats = stats if stats is not None else DPStats()
    t0 = time.perf_counter()

    # Incumbent-bound pruning (exact solves only — see module docstring):
    # a beamed pre-pass seeds the upper bound, the lower-bound passes
    # price the mandatory closures outside each subtree.
    incumbent = math.inf
    outside_lb: Optional[np.ndarray] = None
    if cfg.bound_pruning and beam_width is None:
        pre_tables: List[Optional[_Table]] = [None] * bt.n_nodes
        pre_cfg = DPConfig(
            tile_size=cfg.tile_size,
            bound_pruning=False,
            parallel_subtrees=False,
            incumbent_beam=cfg.incumbent_beam,
        )
        try:
            _solve_tables(
                bt,
                caps_arr,
                deltas_arr,
                cfg.incumbent_beam,
                pre_cfg,
                DPStats(),  # pre-pass work is not the caller's solve
                bt.postorder(),
                pre_tables,
            )
            pre_root = pre_tables[bt.root]
            assert pre_root is not None
            ub = float(pre_root.costs.min())
            # Keep every state that can still tie the incumbent (strict
            # pruning could drop the optimum itself on exact ties).
            incumbent = ub * (1 + 1e-12) + 1e-9
            _sub_lb, outside_lb = compute_lower_bounds(bt, caps_arr, deltas_arr)
        except SolverError:
            incumbent = math.inf  # beam killed feasibility: no pruning

    # The memo is honoured only on context-free passes: under a beam, or
    # on exact solves with bound pruning off.  Bound-pruned exact tables
    # depend on the incumbent and outside-subtree lower bounds, which
    # are global to the solve and not part of the subtree digest.
    active_memo = memo
    if active_memo is not None and not (
        beam_width is not None or not cfg.bound_pruning
    ):
        active_memo = None

    tables: List[Optional[_Table]] = [None] * bt.n_nodes
    solved = False
    if cfg.parallel_subtrees and bt.n_nodes >= cfg.parallel_min_nodes:
        # Farmed subtrees fill worker-local caches, not this process's;
        # the memo only drives the serial path.
        solved = _solve_parallel(
            bt,
            caps_arr,
            deltas_arr,
            beam_width,
            cfg,
            own_stats,
            tables,
            incumbent,
            outside_lb,
        )
    if not solved:
        _solve_tables(
            bt,
            caps_arr,
            deltas_arr,
            beam_width,
            cfg,
            own_stats,
            bt.postorder(),
            tables,
            incumbent=incumbent,
            outside_lb=outside_lb,
            memo=active_memo,
        )

    root_table = tables[bt.root]
    assert root_table is not None
    # Deterministic winner: min cost, ties by lexicographically smallest sig.
    order = np.lexsort(
        tuple(root_table.sigs[:, i] for i in range(h - 1, -1, -1))
        + (root_table.costs,)
    )
    best = int(order[0])
    solution = _rebuild(bt, tables, best, h)
    solution.cost = float(root_table.costs[best])
    _publish_dp_metrics(own_stats, time.perf_counter() - t0)
    return solution


def _rebuild(
    bt: BinaryTree,
    tables: List[Optional[_Table]],
    root_state: int,
    h: int,
) -> TreeSolution:
    """Reconstruct the level collections from the stored back-pointers.

    Two iterative passes (deep trees must not hit the recursion limit):
    a pre-order descent assigning each node its chosen state index, then
    a reverse sweep maintaining per-node active-set vertex lists and
    closing sets where the chosen cut levels dictate.
    """
    state_of: dict[int, int] = {bt.root: root_state}
    preorder: List[int] = []
    stack = [bt.root]
    while stack:
        v = stack.pop()
        preorder.append(v)
        if bt.is_leaf(v):
            continue
        t = tables[v]
        assert t is not None
        s = state_of[v]
        a, b = int(bt.left[v]), int(bt.right[v])
        state_of[a] = int(t.ia[s])
        state_of[b] = int(t.ib[s])
        stack.append(a)
        stack.append(b)

    closed: List[List[LevelSet]] = [[] for _ in range(h)]
    active: dict[int, List[List[int]]] = {}
    for v in reversed(preorder):
        if bt.is_leaf(v):
            active[v] = [[int(bt.vertex[v])] for _ in range(h)]
            continue
        t = tables[v]
        assert t is not None
        s = state_of[v]
        a, b = int(bt.left[v]), int(bt.right[v])
        ta, tb = tables[a], tables[b]
        assert ta is not None and tb is not None
        parts_spec = (
            (a, ta.sigs[int(t.ia[s])], int(t.ja[s])),
            (b, tb.sigs[int(t.ib[s])], int(t.jb[s])),
        )
        act: List[List[int]] = []
        for i in range(h):
            level = i + 1
            merged: List[int] = []
            for child, sigc, jc in parts_spec:
                child_active = active[child][i]
                if level <= jc:
                    merged.extend(child_active)
                elif sigc[i] > 0:
                    closed[i].append(LevelSet(np.asarray(child_active), int(sigc[i])))
                elif child_active:
                    raise SolverError(
                        "active set non-empty but signature component is 0 "
                        "(positive quantized demands should prevent this)"
                    )
            act.append(merged)
        active[v] = act
        del active[a], active[b]

    root_t = tables[bt.root]
    assert root_t is not None
    root_sig = root_t.sigs[root_state]
    for i in range(h):
        root_active = active[bt.root][i]
        if root_sig[i] > 0:
            closed[i].append(LevelSet(np.asarray(root_active), int(root_sig[i])))
        elif root_active:
            raise SolverError("root active set inconsistent with its signature")
    return TreeSolution(levels=closed, cost=0.0)
