"""The RHGPT signature dynamic program (paper Section 3, Theorem 4).

Overview
--------
The relaxed problem (Definition 4) drops the ``≤ DEG(j)`` refinement
bound, after which Theorem 3 guarantees an optimal *nice* solution: for
every tree node ``v`` and level ``j`` at most one set's mirror region
crosses ``v`` — the ``(v, j)``-active set.  A partial solution on
``SUB(v)`` is then fully summarised by its *signature*
``(D¹, …, Dʰ)`` — the quantized demand of the active set per level
(Definition 8) — because every other set is closed strictly inside or
strictly outside the subtree.

States and transitions
----------------------
* Leaf ``v`` with quantized demand ``d'``: single state
  ``(d', …, d')`` at cost 0 (the leaf is active at every level).
* Internal ``v`` with children ``v1, v2`` reached by edges of weight
  ``w1, w2``: choose cut levels ``j1, j2 ∈ {0, …, h}`` (Definition 9).
  Child ``i``'s active sets at levels ``k ≤ ji`` propagate through ``v``
  and merge with the other child's; levels ``k > ji`` with ``Dᵢᵏ > 0``
  are *closed* — edge ``v vᵢ`` joins their cut and pays
  ``wᵢ · (cm(k−1) − cm(k))``.  The merged signature is
  ``Dᵏ = D₁ᵏ·[k ≤ j1] + D₂ᵏ·[k ≤ j2]`` and must respect the quantized
  capacities; Corollary 1's monotonicity ``Dᵏ ≥ Dᵏ⁺¹`` is automatic.

Cost accounting (one deliberate deviation — DESIGN.md §2)
---------------------------------------------------------
The paper's Eq. (4) charges half the multiplier difference per closed
set, matching Eq. (3) where per-set *minimum* cuts double-count shared
boundary edges.  We charge the full difference once per cut edge per
level — the *edge-cut* objective

    ``cost = Σ_{e ∈ T} Σ_{k : e cut at level k} w_T(e) · (cm(k−1) − cm(k))``

— which (i) equals the Eq. (1) cost of the placement induced by the level
sets (each level-``k`` component is one H-subtree) and (ii) upper-bounds
the mapped Eq. (1) cost on decomposition trees via Proposition 1.  The
literal half-payment rule can undercount by up to 2× when a closed set's
boundary edge is shared with the enclosing set, yielding tree "costs"
below the cost of any realizable placement.

Implementation
--------------
State tables are *structure-of-arrays* (signature matrix, cost vector,
back-pointer columns) and every pass — projection, pairwise merge,
deduplication, dominance pruning — is vectorised numpy over those
arrays; profiling showed the original dict-of-tuples implementation
spent ~70% of its time in the O(K²) Python dominance loop.  Semantics:

* **Projection**: cutting a child's up-edge at level ``j`` zeroes
  signature components above ``j`` and pays for each closed non-empty
  level.  Infinite (dummy) edges admit only payment-free cut levels.
* **Dominance pruning**: ``(sig', cost')`` kills ``(sig, cost)`` when
  ``sig' ≤ sig`` componentwise and ``cost' ≤ cost`` — a smaller active
  set only loosens future capacity checks, and any payment triggered by
  ``Dᵏ > 0`` under ``sig'`` is also triggered under ``sig``.
* **Beam**: an optional cap on states kept per node; the most-closed
  surviving state is always retained (dropping every flexible state can
  make an ancestor infeasible), and the solver escalates to the exact
  DP if pruning ever kills feasibility.  Beamed runs stay *sound* — any
  kept state reconstructs to a valid solution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.hgpt.binarize import BinaryTree
from repro.hgpt.solution import LevelSet, TreeSolution
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry

__all__ = ["solve_rhgpt", "DPStats"]


def _publish_dp_metrics(stats: "DPStats", seconds: float) -> None:
    """Fold one DP run's counters into the process-local metrics registry."""
    metrics = get_registry()
    metrics.counter(
        "repro_dp_solves_total", "Completed signature-DP solves"
    ).inc()
    metrics.counter(
        "repro_dp_nodes_total", "Binary-tree nodes processed by the DP"
    ).inc(stats.nodes)
    metrics.counter(
        "repro_dp_states_total", "DP states created across all nodes"
    ).inc(stats.states_total)
    metrics.counter(
        "repro_dp_merges_total", "Pairwise signature merges evaluated"
    ).inc(stats.merges)
    metrics.histogram(
        "repro_dp_states_max",
        "Largest per-node state table of one DP solve",
        buckets=DEFAULT_SIZE_BUCKETS,
    ).observe(stats.states_max)
    metrics.histogram(
        "repro_dp_seconds", "Wall-clock seconds of one DP solve"
    ).observe(seconds)


class DPStats:
    """Counters describing one DP run (consumed by E4's scaling study)."""

    __slots__ = ("states_total", "states_max", "merges", "nodes")

    def __init__(self) -> None:
        self.states_total = 0
        self.states_max = 0
        self.merges = 0
        self.nodes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DPStats(nodes={self.nodes}, states_total={self.states_total}, "
            f"states_max={self.states_max}, merges={self.merges})"
        )

    def as_dict(self) -> dict:
        """Plain-dict view (folded into engine telemetry member records)."""
        return {
            "nodes": self.nodes,
            "states_total": self.states_total,
            "states_max": self.states_max,
            "merges": self.merges,
        }

    def update(self, other: "DPStats") -> None:
        """Accumulate another run's counters (per-tree -> caller totals)."""
        self.states_total += other.states_total
        self.states_max = max(self.states_max, other.states_max)
        self.merges += other.merges
        self.nodes += other.nodes


@dataclass
class _Table:
    """State table of one tree node (structure-of-arrays).

    ``sigs[(m, h)]`` / ``costs[(m,)]`` hold the Pareto states; the four
    back-pointer columns record, for internal nodes, which child states
    and cut levels produced each state (−1 at leaves).
    """

    sigs: np.ndarray
    costs: np.ndarray
    ia: np.ndarray
    ja: np.ndarray
    ib: np.ndarray
    jb: np.ndarray

    @property
    def size(self) -> int:
        return int(self.costs.size)


def _encode_rows(sigs: np.ndarray) -> Optional[np.ndarray]:
    """Radix-encode signature rows into scalar int64 keys (or ``None``
    when the value range would overflow — caller falls back to
    row-wise uniqueness)."""
    if sigs.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    bases = sigs.max(axis=0).astype(np.int64) + 1
    total = 1
    for b in bases:
        total *= int(b)
        if total > (1 << 62):
            return None
    keys = np.zeros(sigs.shape[0], dtype=np.int64)
    for i in range(sigs.shape[1]):
        keys = keys * int(bases[i]) + sigs[:, i]
    return keys


def _dedupe_min(
    sigs: np.ndarray, costs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per unique signature keep the cheapest row.

    Returns (unique_sigs, min_costs, source_row_index), deterministic:
    ties resolve to the first row in (cost, row-order).  Rows are
    radix-encoded to scalar keys so uniqueness is one int64 sort —
    ``np.unique(axis=0)``'s structured-dtype argsort profiled ~10x
    slower on the DP's tables.
    """
    if sigs.shape[0] == 0:
        return sigs, costs, np.empty(0, dtype=np.int64)
    keys = _encode_rows(sigs)
    if keys is None:  # pragma: no cover - astronomically large capacities
        uniq, inverse = np.unique(sigs, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        order = np.lexsort((np.arange(costs.size), costs, inverse))
        sorted_inv = inverse[order]
        first = np.concatenate([[True], sorted_inv[1:] != sorted_inv[:-1]])
        winners = order[first]
        return uniq, costs[winners], winners
    order = np.lexsort((np.arange(costs.size), costs, keys))
    sorted_keys = keys[order]
    first = np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
    winners = order[first]
    return sigs[winners], costs[winners], winners


def _project(
    table: _Table, w: float, deltas: np.ndarray, h: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All (cut-level, signature) projections of a child's state table.

    Returns (psigs, pcosts, origin_state, cut_level) after per-signature
    deduplication.  Infinite edges keep only payment-free projections.
    """
    sigs, costs = table.sigs, table.costs
    m = costs.size
    infinite = math.isinf(w)
    blocks_sig: List[np.ndarray] = []
    blocks_cost: List[np.ndarray] = []
    blocks_orig: List[np.ndarray] = []
    blocks_j: List[np.ndarray] = []
    extra = np.zeros(m)
    valid = np.ones(m, dtype=bool)
    arange = np.arange(m, dtype=np.int64)
    for j in range(h, -1, -1):
        psig = sigs.copy()
        if j < h:
            psig[:, j:] = 0
        rows = valid if infinite else slice(None)
        blocks_sig.append(psig[rows])
        blocks_cost.append((costs + extra)[rows])
        blocks_orig.append(arange[rows])
        blocks_j.append(np.full(int(np.count_nonzero(valid)) if infinite else m, j,
                                dtype=np.int64))
        if j > 0:
            pays = sigs[:, j - 1] > 0
            if infinite:
                # A row that would pay on an uncuttable edge is invalid at
                # this and every smaller cut level.
                valid = valid & ~pays
            else:
                extra = extra + np.where(pays, w * deltas[j], 0.0)
    psigs = np.vstack(blocks_sig)
    pcosts = np.concatenate(blocks_cost)
    porig = np.concatenate(blocks_orig)
    pj = np.concatenate(blocks_j)
    uniq, min_costs, winners = _dedupe_min(psigs, pcosts)
    return uniq, min_costs, porig[winners], pj[winners]


def _dominance_prune(
    sigs: np.ndarray,
    costs: np.ndarray,
    beam_width: Optional[int],
) -> np.ndarray:
    """Indices of surviving states (dominance + optional beam).

    States are scanned in ascending (cost, signature) order; a state
    survives unless a previously kept signature is ≤ it componentwise.
    Because survivors are scanned cheapest-first, the kept signatures
    form an antichain — for ``h ≤ 2`` that is a monotone staircase, so
    dominance queries become binary searches (O(m log m) total) instead
    of the generic O(m · kept) scan.  Under beam truncation the
    most-closed state (minimal component sum) is always re-inserted —
    see the module docstring.
    """
    m = costs.size
    h = sigs.shape[1]
    if m <= 1:
        return np.arange(m, dtype=np.int64)
    order = np.lexsort(tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (costs,))

    kept_idx: List[int] = []
    truncated = False
    if h == 1:
        # Survivor iff its signature is a new minimum.
        best = np.iinfo(np.int64).max
        for pos in order:
            s = int(sigs[pos, 0])
            if s >= best:
                continue
            best = s
            kept_idx.append(int(pos))
            if beam_width is not None and len(kept_idx) >= beam_width:
                truncated = True
                break
    elif h == 2:
        # Maintain the Pareto frontier of kept signatures as a staircase
        # (xs strictly increasing, ys strictly decreasing): (a, b) is
        # dominated iff the frontier point with the largest x <= a has
        # y <= b.  Kept states themselves need not be an antichain (a
        # later, more expensive state may be componentwise smaller), so
        # insertion evicts frontier points the new signature covers.
        import bisect

        xs: List[int] = []
        ys: List[int] = []
        for pos in order:
            a, b = int(sigs[pos, 0]), int(sigs[pos, 1])
            k = bisect.bisect_right(xs, a)
            if k > 0 and ys[k - 1] <= b:
                continue
            # Evict frontier points (x >= a, y >= b): anything they would
            # dominate in the future, (a, b) dominates too.
            end = k
            while end < len(xs) and ys[end] >= b:
                end += 1
            del xs[k:end]
            del ys[k:end]
            xs.insert(k, a)
            ys.insert(k, b)
            kept_idx.append(int(pos))
            if beam_width is not None and len(kept_idx) >= beam_width:
                truncated = True
                break
    else:
        kept_rows = np.empty((m, h), dtype=sigs.dtype)
        n_kept = 0
        for pos in order:
            sig = sigs[pos]
            if n_kept and bool(np.all(kept_rows[:n_kept] <= sig, axis=1).any()):
                continue
            kept_rows[n_kept] = sig
            kept_idx.append(int(pos))
            n_kept += 1
            if beam_width is not None and n_kept >= beam_width:
                truncated = True
                break
    if truncated:
        sums = sigs.sum(axis=1)
        flex = np.lexsort(
            tuple(sigs[:, i] for i in range(h - 1, -1, -1)) + (sums,)
        )[0]
        if int(flex) not in kept_idx:
            kept_idx.append(int(flex))
    return np.asarray(kept_idx, dtype=np.int64)


# Cap on the pa-block x pb cross-product materialised at once (entries).
_MERGE_CHUNK = 4_000_000


def solve_rhgpt(
    bt: BinaryTree,
    caps: Sequence[int],
    deltas: Sequence[float],
    beam_width: Optional[int] = None,
    stats: Optional[DPStats] = None,
) -> TreeSolution:
    """Run the signature DP and reconstruct an optimal nice solution.

    Parameters
    ----------
    bt:
        Binarized decomposition tree with quantized leaf demands.
    caps:
        Quantized capacities for levels ``1..h`` (``caps[i]`` is
        ``C'(i+1)``), non-increasing in ``i``.
    deltas:
        ``deltas[k] = cm(k−1) − cm(k)`` for ``k = 1..h`` (index 0
        unused); non-negative.
    beam_width:
        Optional cap on states kept per node (exact when ``None``).
    stats:
        Optional counter object filled during the run.

    Returns
    -------
    TreeSolution
        Optimal relaxed solution (level collections 1..h) with its
        edge-cut cost.

    Raises
    ------
    SolverError
        If no feasible state survives at the root (cannot happen when the
        demand grid admitted the instance — signals a bug).
    """
    h = len(caps)
    if len(deltas) != h + 1:
        raise SolverError(f"need h+1 = {h + 1} deltas, got {len(deltas)}")
    if any(d < 0 for d in deltas):
        raise SolverError(f"deltas must be non-negative, got {list(deltas)}")
    caps_arr = np.asarray(caps, dtype=np.int64)
    if np.any(caps_arr[:-1] < caps_arr[1:]):
        raise SolverError(f"capacities must be non-increasing, got {list(caps)}")
    deltas_arr = np.asarray(deltas, dtype=np.float64)

    # Track counters even when the caller passed no collector, so the
    # metrics registry sees every solve.
    own_stats = stats if stats is not None else DPStats()
    t0 = time.perf_counter()

    post = bt.postorder()
    tables: List[Optional[_Table]] = [None] * bt.n_nodes
    neg1 = np.full(1, -1, dtype=np.int64)

    for node in post:
        if bt.is_leaf(node):
            d = int(bt.demand[node])
            if d > int(caps_arr.min()):
                raise SolverError(
                    f"leaf demand {d} exceeds capacities {list(caps)} — the "
                    "demand grid should have rejected this instance"
                )
            tables[node] = _Table(
                sigs=np.full((1, h), d, dtype=np.int64),
                costs=np.zeros(1),
                ia=neg1.copy(),
                ja=neg1.copy(),
                ib=neg1.copy(),
                jb=neg1.copy(),
            )
        else:
            a, b = int(bt.left[node]), int(bt.right[node])
            ta, tb = tables[a], tables[b]
            assert ta is not None and tb is not None
            pa_sig, pa_cost, pa_orig, pa_j = _project(
                ta, float(bt.up_weight[a]), deltas_arr, h
            )
            pb_sig, pb_cost, pb_orig, pb_j = _project(
                tb, float(bt.up_weight[b]), deltas_arr, h
            )
            na, nb = pa_cost.size, pb_cost.size
            own_stats.merges += na * nb
            # Chunked outer merge to bound peak memory on exact runs.
            block = max(1, _MERGE_CHUNK // max(1, nb * h))
            cand_sigs: List[np.ndarray] = []
            cand_costs: List[np.ndarray] = []
            cand_pa: List[np.ndarray] = []
            cand_pb: List[np.ndarray] = []
            for start in range(0, na, block):
                stop = min(na, start + block)
                sums = pa_sig[start:stop, None, :] + pb_sig[None, :, :]
                feas = (sums <= caps_arr).all(axis=2)
                if not feas.any():
                    continue
                ii, jj = np.nonzero(feas)
                cand_sigs.append(sums[ii, jj])
                cand_costs.append(pa_cost[start:stop][ii] + pb_cost[jj])
                cand_pa.append(ii + start)
                cand_pb.append(jj)
            if not cand_sigs:
                raise SolverError(
                    "no feasible merged state — capacities too tight for "
                    "this tree (grid admission should prevent this)"
                )
            all_sigs = np.vstack(cand_sigs)
            all_costs = np.concatenate(cand_costs)
            all_pa = np.concatenate(cand_pa)
            all_pb = np.concatenate(cand_pb)
            uniq, min_costs, winners = _dedupe_min(all_sigs, all_costs)
            keep = _dominance_prune(uniq, min_costs, beam_width)
            win = winners[keep]
            tables[node] = _Table(
                sigs=uniq[keep],
                costs=min_costs[keep],
                ia=pa_orig[all_pa[win]],
                ja=pa_j[all_pa[win]],
                ib=pb_orig[all_pb[win]],
                jb=pb_j[all_pb[win]],
            )
        own_stats.nodes += 1
        size = tables[node].size  # type: ignore[union-attr]
        own_stats.states_total += size
        own_stats.states_max = max(own_stats.states_max, size)

    root_table = tables[bt.root]
    assert root_table is not None
    # Deterministic winner: min cost, ties by lexicographically smallest sig.
    order = np.lexsort(
        tuple(root_table.sigs[:, i] for i in range(h - 1, -1, -1))
        + (root_table.costs,)
    )
    best = int(order[0])
    solution = _rebuild(bt, tables, best, h)
    solution.cost = float(root_table.costs[best])
    _publish_dp_metrics(own_stats, time.perf_counter() - t0)
    return solution


def _rebuild(
    bt: BinaryTree,
    tables: List[Optional[_Table]],
    root_state: int,
    h: int,
) -> TreeSolution:
    """Reconstruct the level collections from the stored back-pointers.

    Two iterative passes (deep trees must not hit the recursion limit):
    a pre-order descent assigning each node its chosen state index, then
    a reverse sweep maintaining per-node active-set vertex lists and
    closing sets where the chosen cut levels dictate.
    """
    state_of: dict[int, int] = {bt.root: root_state}
    preorder: List[int] = []
    stack = [bt.root]
    while stack:
        v = stack.pop()
        preorder.append(v)
        if bt.is_leaf(v):
            continue
        t = tables[v]
        assert t is not None
        s = state_of[v]
        a, b = int(bt.left[v]), int(bt.right[v])
        state_of[a] = int(t.ia[s])
        state_of[b] = int(t.ib[s])
        stack.append(a)
        stack.append(b)

    closed: List[List[LevelSet]] = [[] for _ in range(h)]
    active: dict[int, List[List[int]]] = {}
    for v in reversed(preorder):
        if bt.is_leaf(v):
            active[v] = [[int(bt.vertex[v])] for _ in range(h)]
            continue
        t = tables[v]
        assert t is not None
        s = state_of[v]
        a, b = int(bt.left[v]), int(bt.right[v])
        ta, tb = tables[a], tables[b]
        assert ta is not None and tb is not None
        parts_spec = (
            (a, ta.sigs[int(t.ia[s])], int(t.ja[s])),
            (b, tb.sigs[int(t.ib[s])], int(t.jb[s])),
        )
        act: List[List[int]] = []
        for i in range(h):
            level = i + 1
            merged: List[int] = []
            for child, sigc, jc in parts_spec:
                child_active = active[child][i]
                if level <= jc:
                    merged.extend(child_active)
                elif sigc[i] > 0:
                    closed[i].append(LevelSet(np.asarray(child_active), int(sigc[i])))
                elif child_active:
                    raise SolverError(
                        "active set non-empty but signature component is 0 "
                        "(positive quantized demands should prevent this)"
                    )
            act.append(merged)
        active[v] = act
        del active[a], active[b]

    root_t = tables[bt.root]
    assert root_t is not None
    root_sig = root_t.sigs[root_state]
    for i in range(h):
        root_active = active[bt.root][i]
        if root_sig[i] > 0:
            closed[i].append(LevelSet(np.asarray(root_active), int(root_sig[i])))
        elif root_active:
            raise SolverError("root active set inconsistent with its signature")
    return TreeSolution(levels=closed, cost=0.0)
