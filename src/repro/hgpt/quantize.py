"""Demand quantization (the Hochbaum–Shmoys rounding step, Section 3).

The DP of Theorem 4 is pseudo-polynomial in the *total quantized demand*
``D``, so demands must live on a coarse integer grid.  The paper scales by
``ε/n`` and eats a ``(1+ε)`` capacity violation; we expose the grid as a
first-class object so the resolution/violation trade-off is explicit and
measurable (experiment E7).

Rounding scheme (slightly different from the paper's floor, see below):

* ``unit`` — grid cell size in demand units.
* quantized demand  ``d'(v) = max(1, ceil(d(v) / unit))``,
* quantized capacity ``C'(j) = floor((1 + ε_cap) · CP(j) / unit)``.

Rounding demands *up* (vs. the paper's floor) keeps every quantized
demand strictly positive, which lets the DP use ``D = 0  ⇔  no active
set`` without a special case for zero-demand leaves.  The accounting is
the same as the paper's:

* any solution feasible with *real* capacities stays feasible on the grid
  provided ``n · unit ≤ ε_cap · CP(h)`` (each vertex rounds up by less
  than one unit, and a level-``j`` node hosts at most ``n`` vertices), so
  the DP optimum lower-bounds the true optimum; and
* any grid-feasible solution has real load at most
  ``unit · C'(j) ≤ (1 + ε_cap) · CP(j)`` — the ``(1 + ε)`` factor of
  Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InfeasibleError, InvalidInputError
from repro.hierarchy.hierarchy import Hierarchy

__all__ = ["DemandGrid"]


@dataclass(frozen=True)
class DemandGrid:
    """An integer demand grid tied to a hierarchy.

    Attributes
    ----------
    hierarchy:
        The hierarchy whose capacities the grid discretises.
    unit:
        Size of one grid cell in demand units.
    epsilon:
        Capacity slack ``ε_cap`` baked into the quantized capacities.
    caps:
        Quantized capacity per level, ``caps[j] = C'(j)``,
        ``j = 0 .. h``.
    """

    hierarchy: Hierarchy
    unit: float
    epsilon: float
    caps: tuple

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_epsilon(cls, hierarchy: Hierarchy, n: int, epsilon: float) -> "DemandGrid":
        """Paper-faithful grid: ``unit = ε · CP(h) / n``.

        Guarantees the lower-bound direction for any demand vector of
        length ``n``; the DP then costs ``O(n · D^{3h+2})`` with
        ``D ≈ n / ε`` — use only for small instances (E1/E3 do).
        """
        if n < 1:
            raise InvalidInputError(f"n must be >= 1, got {n}")
        if epsilon <= 0:
            raise InvalidInputError(f"epsilon must be > 0, got {epsilon}")
        unit = epsilon * hierarchy.capacity(hierarchy.h) / n
        return cls._build(hierarchy, unit, epsilon)

    @classmethod
    def from_budget(
        cls,
        hierarchy: Hierarchy,
        demands: Sequence[float],
        budget: int,
        slack: float = 0.25,
    ) -> "DemandGrid":
        """Engineering grid: choose ``unit`` so total quantized demand ≈ ``budget``.

        Unlike :meth:`from_epsilon`, the capacity slack is *decoupled*
        from the rounding error: capacities get ``(1 + slack)`` headroom
        regardless of the unit.  When ``slack`` is below the worst-case
        rounding error ``n · unit / CP(h)`` (reported by
        :meth:`rounding_epsilon`), the DP may fail to contain the true
        optimum — solutions stay *valid* (soundness never depends on the
        grid), only the optimality lower bound weakens.  E7 sweeps this
        trade-off.
        """
        d = np.asarray(demands, dtype=np.float64)
        if budget < max(1, d.size):
            raise InvalidInputError(
                f"budget must be >= n = {d.size} (every vertex costs >= 1 cell)"
            )
        if d.size == 0:
            raise InvalidInputError("demands must be non-empty")
        if d.min() <= 0:
            raise InvalidInputError("demands must be > 0")
        if slack <= 0:
            raise InvalidInputError(f"slack must be > 0, got {slack}")
        unit = float(d.sum()) / budget
        return cls._build(hierarchy, unit, slack)

    @classmethod
    def _build(cls, hierarchy: Hierarchy, unit: float, epsilon: float) -> "DemandGrid":
        if unit <= 0:
            raise InvalidInputError(f"unit must be > 0, got {unit}")
        caps = tuple(
            int(np.floor((1.0 + epsilon) * hierarchy.capacity(j) / unit + 1e-9))
            for j in range(hierarchy.h + 1)
        )
        return cls(hierarchy, unit, epsilon, caps)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def quantize(self, demands: Sequence[float]) -> np.ndarray:
        """Quantize a real demand vector to positive grid cells.

        Raises :class:`InfeasibleError` if any single vertex cannot fit on
        a leaf even with the ``(1 + ε)`` slack, or if the total demand
        exceeds the root capacity (no assignment can exist).
        """
        d = np.asarray(demands, dtype=np.float64)
        if d.size and (d.min() <= 0 or not np.all(np.isfinite(d))):
            raise InvalidInputError("demands must be finite and > 0")
        q = np.maximum(1, np.ceil(d / self.unit - 1e-12)).astype(np.int64)
        h = self.hierarchy.h
        if q.size and q.max() > self.caps[h]:
            worst = int(np.argmax(q))
            raise InfeasibleError(
                f"vertex {worst} demand {d[worst]:.4g} exceeds leaf capacity "
                f"{self.hierarchy.capacity(h):.4g} even with (1+eps) slack"
            )
        if int(q.sum()) > self.caps[0]:
            raise InfeasibleError(
                f"total quantized demand {int(q.sum())} exceeds root capacity "
                f"{self.caps[0]} — instance is infeasible on this grid"
            )
        return q

    def dequantize_load(self, cells: int) -> float:
        """Upper bound on the real demand represented by ``cells`` grid cells."""
        return cells * self.unit

    def violation_bound(self, level: int) -> float:
        """Real-capacity violation guaranteed at ``level`` by grid feasibility:
        ``(1 + ε)``."""
        self.hierarchy._check_level(level)
        return 1.0 + self.epsilon

    def rounding_epsilon(self, n: int) -> float:
        """Worst-case rounding error for ``n`` vertices: ``n · unit / CP(h)``.

        The DP's optimum lower-bounds the true optimum whenever
        ``epsilon >= rounding_epsilon(n)`` (always true for
        :meth:`from_epsilon` grids).
        """
        return n * self.unit / self.hierarchy.capacity(self.hierarchy.h)

    @property
    def total_cells(self) -> int:
        """Root-level quantized capacity ``C'(0)`` (the DP's ``D`` bound)."""
        return int(self.caps[0])
