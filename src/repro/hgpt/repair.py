"""Theorem 5: converting relaxed solutions into hierarchy placements.

A RHGPT solution may refine a level-``j`` set into arbitrarily many
level-``(j+1)`` sets, but the hierarchy node only has ``DEG(j)``
children.  Theorem 5 repairs this top-down: the level-``(j+1)`` sets
refining each group are re-merged into at most ``DEG(j)`` *bins*, at the
price of violating level-``(j+1)`` capacity by a factor ``(2 + j)``
(= ``1 + (j+1)``, the paper's ``(1 + j)`` at level ``j``).

Feasibility of the greedy merge is the paper's pigeonhole: by induction
the group's total real demand is at most ``(1+j)(1+ε)·CP(j)``, every item
is a grid-feasible set of real demand at most ``(1+ε)·CP(j+1)``, and the
least-loaded of ``DEG(j)`` bins holds at most ``(1+j)(1+ε)·CP(j+1)``, so
placing each item there keeps every bin at or below
``(2+j)(1+ε)·CP(j+1)``.  The final bound is *asserted at runtime* — a
violation would mean a bug, not bad input.

Merging sets only removes cut requirements between them, so the tree-side
cost never increases (cut subadditivity); the returned placement's true
Eq. (1) cost is measured directly by the caller anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SolverError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.hgpt.quantize import DemandGrid
from repro.hgpt.solution import TreeSolution

__all__ = ["repair_to_placement", "RepairReport"]


@dataclass
class RepairReport:
    """Diagnostics of one repair run.

    Attributes
    ----------
    merges_per_level:
        How many set-merges each level required (0 = the relaxed solution
        already respected the fan-out bound there).
    violation_per_level:
        Realised load / ``CP(j)`` per level ``1..h`` after repair.
    bound_per_level:
        The guaranteed bound ``(1 + j)(1 + ε)`` per level ``1..h``.
    """

    merges_per_level: List[int]
    violation_per_level: List[float]
    bound_per_level: List[float]


def repair_to_placement(
    graph: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    solution: TreeSolution,
    grid: DemandGrid,
) -> tuple[Placement, RepairReport]:
    """Repack a relaxed solution and assign it to hierarchy nodes.

    Parameters
    ----------
    graph, hierarchy, demands:
        The HGP instance.
    solution:
        RHGPT solution whose level collections partition ``V(G)``.
    grid:
        The demand grid the solution was solved on (supplies ``ε``).

    Returns
    -------
    (Placement, RepairReport)
        The placement (every vertex gets a leaf) plus violation
        diagnostics.

    Raises
    ------
    SolverError
        If the pigeonhole bound would be violated (internal bug) or the
        solution's collections are structurally inconsistent.
    """
    d = np.asarray(demands, dtype=np.float64)
    n = graph.n
    h = hierarchy.h
    if solution.h != h:
        raise SolverError(
            f"solution height {solution.h} does not match hierarchy height {h}"
        )
    eps = grid.epsilon

    # --- index the laminar structure --------------------------------
    # children_of[j][set_idx] = indices of level-(j+1) sets inside it.
    children_of: List[Dict[int, List[int]]] = []
    for j in range(1, h):
        owner = np.full(n, -1, dtype=np.int64)
        for idx, s in enumerate(solution.sets_at(j)):
            owner[s.vertices] = idx
        kids: Dict[int, List[int]] = {}
        for idx, s in enumerate(solution.sets_at(j + 1)):
            owners = np.unique(owner[s.vertices])
            if owners.size != 1 or owners[0] < 0:
                raise SolverError(
                    f"level-{j + 1} set {idx} is not nested in a level-{j} set"
                )
            kids.setdefault(int(owners[0]), []).append(idx)
        children_of.append(kids)

    set_demand = [
        np.asarray([float(d[s.vertices].sum()) for s in solution.sets_at(j)])
        for j in range(1, h + 1)
    ]

    # --- top-down greedy re-merging ----------------------------------
    # A "group" at level j is a list of level-j set indices destined for
    # one level-j H-node.  Level 0 starts with the single implicit root
    # group holding every level-1 set.
    leaf_of = np.full(n, -1, dtype=np.int64)
    merges = [0] * h
    # Each work item: (level j, H-node index at level j, member level-j set ids).
    # Start one level down: pack level-1 sets into DEG(0) bins under the root.
    pending: List[tuple[int, int, List[int]]] = []

    def pack(level_j: int, node_idx: int, items: List[int]) -> List[List[int]]:
        """Merge level-(j+1) items into <= DEG(j) bins (least-loaded greedy)."""
        deg = hierarchy.degrees[level_j]
        demands_j1 = set_demand[level_j]  # level (j+1) demands: index j of list
        order = sorted(items, key=lambda i: -demands_j1[i])
        bins: List[List[int]] = [[] for _ in range(deg)]
        loads = np.zeros(deg)
        cap_next = hierarchy.capacity(level_j + 1)
        bound = (2 + level_j) * (1 + eps) * cap_next
        for item in order:
            b = int(np.argmin(loads))
            bins[b].append(item)
            loads[b] += demands_j1[item]
            if loads[b] > bound * (1 + 1e-9) + 1e-12:
                raise SolverError(
                    f"repair pigeonhole violated at level {level_j + 1}: "
                    f"load {loads[b]:.6g} > bound {bound:.6g}"
                )
        merges[level_j] += sum(max(0, len(b) - 1) for b in bins)
        return [b for b in bins]

    top_items = list(range(len(solution.sets_at(1))))
    for b_idx, bin_items in enumerate(pack(0, 0, top_items)):
        if bin_items:
            pending.append((1, b_idx, bin_items))

    while pending:
        level_j, node_idx, members = pending.pop()
        if level_j == h:
            for sid in members:
                leaf_of[solution.sets_at(h)[sid].vertices] = node_idx
            continue
        # Pool the children of all merged member sets and re-pack them.
        items: List[int] = []
        for sid in members:
            items.extend(children_of[level_j - 1].get(sid, []))
        child_nodes = hierarchy.children(level_j, node_idx)
        for b_idx, bin_items in enumerate(pack(level_j, node_idx, items)):
            if bin_items:
                pending.append((level_j + 1, int(child_nodes[b_idx]), bin_items))

    if (leaf_of < 0).any():
        raise SolverError("repair failed to place every vertex")

    placement = Placement(graph, hierarchy, d, leaf_of, meta={"repaired": True})
    report = RepairReport(
        merges_per_level=merges,
        violation_per_level=[placement.level_violation(j) for j in range(1, h + 1)],
        bound_per_level=[(1 + j) * (1 + eps) for j in range(1, h + 1)],
    )
    for j in range(h):
        if report.violation_per_level[j] > report.bound_per_level[j] * (1 + 1e-9):
            raise SolverError(
                f"level-{j + 1} violation {report.violation_per_level[j]:.6g} "
                f"exceeds Theorem 1 bound {report.bound_per_level[j]:.6g}"
            )
    return placement, report
