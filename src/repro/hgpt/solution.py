"""Solution objects for (R)HGPT: laminar families of level sets.

Definition 3 / Definition 4 of the paper describe a solution as a family
of collections ``S^(0), …, S^(h)``: the level-``j`` collection partitions
the leaves into sets of quantized demand at most ``C'(j)``, and each
level-``j`` set is a union of level-``(j+1)`` sets (a laminar family).
``S^(0)`` is always the single all-leaves set and is kept implicit.

:class:`TreeSolution` stores the reconstructed family together with the
DP's cost; :meth:`TreeSolution.validate` re-checks every Definition-4
property from scratch (used in tests and after the Theorem-5 repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import SolverError

__all__ = ["LevelSet", "TreeSolution"]


@dataclass
class LevelSet:
    """One set of a level collection.

    Attributes
    ----------
    vertices:
        Sorted ``G``-vertex ids in the set.
    qdemand:
        Total quantized demand of the set (as accounted by the DP).
    """

    vertices: np.ndarray
    qdemand: int

    def __post_init__(self) -> None:
        self.vertices = np.sort(np.asarray(self.vertices, dtype=np.int64))

    @property
    def size(self) -> int:
        """Number of vertices."""
        return int(self.vertices.size)


@dataclass
class TreeSolution:
    """A (relaxed) HGPT solution: level collections 1..h plus its DP cost.

    ``levels[i]`` holds the Level-``(i+1)`` collection.  The Level-0
    collection (the single all-leaves set) is implicit.
    """

    levels: List[List[LevelSet]]
    cost: float
    meta: dict = field(default_factory=dict)

    @property
    def h(self) -> int:
        """Hierarchy height this solution was built for."""
        return len(self.levels)

    def sets_at(self, level: int) -> List[LevelSet]:
        """Level-``level`` collection (``1 <= level <= h``)."""
        if not (1 <= level <= self.h):
            raise SolverError(f"level must be in [1, {self.h}], got {level}")
        return self.levels[level - 1]

    def validate(
        self,
        n: int,
        caps: Sequence[int],
        qdemands: np.ndarray,
        max_sets: Sequence[int] | None = None,
        cap_factor: Sequence[float] | None = None,
    ) -> None:
        """Re-verify the Definition 4 properties from raw data.

        Parameters
        ----------
        n:
            Number of leaves (graph vertices).
        caps:
            Quantized capacity per level ``1..h`` (``caps[i]`` for level
            ``i+1``).
        qdemands:
            Quantized demand per vertex.
        max_sets:
            Optional per-level bound on how many child sets may refine one
            parent set (``DEG(j)``; Definition 3's property 4).  ``None``
            skips the check (RHGPT drops it).
        cap_factor:
            Optional per-level multiplicative slack on ``caps`` (the
            Theorem 5 repair legitimately violates level ``j`` by
            ``1 + j``).

        Raises
        ------
        SolverError
            On any violated property.
        """
        q = np.asarray(qdemands, dtype=np.int64)
        factors = list(cap_factor) if cap_factor is not None else [1.0] * self.h
        # Property 2: each level partitions the leaves.
        for i, collection in enumerate(self.levels):
            seen = np.zeros(n, dtype=bool)
            for s in collection:
                if s.size == 0:
                    raise SolverError(f"empty set in level-{i + 1} collection")
                if seen[s.vertices].any():
                    raise SolverError(f"level-{i + 1} sets are not disjoint")
                seen[s.vertices] = True
                true_q = int(q[s.vertices].sum())
                if true_q != s.qdemand:
                    raise SolverError(
                        f"level-{i + 1} set qdemand mismatch: stored {s.qdemand}, "
                        f"actual {true_q}"
                    )
                # Property 3: capacity (with any declared slack).
                limit = factors[i] * caps[i]
                if true_q > limit + 1e-9:
                    raise SolverError(
                        f"level-{i + 1} set demand {true_q} exceeds cap "
                        f"{caps[i]} x {factors[i]:.3f}"
                    )
            if not seen.all():
                raise SolverError(f"level-{i + 1} sets do not cover all leaves")
        # Property 4 (laminarity + optional refinement bound).
        for i in range(self.h - 1):
            owner = np.full(n, -1, dtype=np.int64)
            for idx, s in enumerate(self.levels[i]):
                owner[s.vertices] = idx
            counts = np.zeros(len(self.levels[i]), dtype=np.int64)
            for s in self.levels[i + 1]:
                owners = np.unique(owner[s.vertices])
                if owners.size != 1:
                    raise SolverError(
                        f"level-{i + 2} set straddles multiple level-{i + 1} sets"
                    )
                counts[owners[0]] += 1
            if max_sets is not None:
                limit = max_sets[i]
                if counts.size and counts.max() > limit:
                    raise SolverError(
                        f"a level-{i + 1} set refines into {int(counts.max())} "
                        f"level-{i + 2} sets (> DEG = {limit})"
                    )

    def n_sets(self) -> List[int]:
        """Number of sets per level (diagnostic)."""
        return [len(c) for c in self.levels]
