"""Problem model: hierarchy trees, placements, costs, mirror functions."""

from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.hierarchy.mirror import check_laminar, eq3_cost, mirror_sets
from repro.hierarchy.report import (
    placement_from_json,
    placement_to_json,
    render_placement,
)
from repro.hierarchy.pin_script import (
    leaf_cpu_map,
    to_cpuset_config,
    to_taskset_script,
)

__all__ = [
    "Hierarchy",
    "Placement",
    "check_laminar",
    "eq3_cost",
    "mirror_sets",
    "placement_from_json",
    "placement_to_json",
    "render_placement",
    "leaf_cpu_map",
    "to_cpuset_config",
    "to_taskset_script",
]
