"""The hierarchy tree ``H`` of the HGP problem (paper Section 1).

``H`` is a rooted tree of height ``h`` that is *regular at each level*:
every node at level ``j`` (root = level 0) has exactly ``DEG(j)``
children.  Its ``k = Π_j DEG(j)`` leaves are processors of capacity 1
(configurable), and each level ``j`` carries a *cost multiplier*
``cm(j)``, non-increasing in ``j``: an edge of ``G`` whose endpoints land
in leaves with lowest common ancestor at level ``j`` costs
``cm(j) · w(e)``.

Indexing scheme
---------------
Nodes at level ``j`` are numbered ``0 .. count(j) − 1`` where
``count(j) = Π_{j' < j} DEG(j')``.  Node ``(j, i)`` has children
``(j+1, i·DEG(j) + c)`` for ``c < DEG(j)``.  A leaf id ``l`` therefore
decomposes into mixed-radix digits — its child-index path from the root —
and the LCA level of two leaves is the length of their common digit
prefix.  All per-edge LCA computations are vectorised over numpy arrays
of leaf ids (the hot path of Eq. (1) evaluation).
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Tuple

import numpy as np

from repro.errors import InvalidInputError

__all__ = ["Hierarchy"]


class Hierarchy:
    """Immutable regular hierarchy tree with per-level cost multipliers.

    Parameters
    ----------
    degrees:
        ``[DEG(0), …, DEG(h−1)]`` — children per node at each level; the
        height is ``h = len(degrees)``.
    cost_multipliers:
        ``[cm(0), …, cm(h)]`` — ``h + 1`` non-increasing, non-negative
        values.  ``cm(h)`` is the cost of co-located endpoints (usually
        0; Lemma 1 reduces the general case to ``cm(h) = 0``).
    leaf_capacity:
        Capacity of every leaf (paper normalises to 1).

    Examples
    --------
    A 2-socket, 4-cores-per-socket server where cross-socket traffic costs
    10, cross-core-same-socket traffic costs 3, and co-located traffic is
    free::

        H = Hierarchy(degrees=[2, 4], cost_multipliers=[10.0, 3.0, 0.0])
    """

    __slots__ = ("degrees", "cm", "leaf_capacity", "h", "k", "_suffix_prod")

    def __init__(
        self,
        degrees: Sequence[int],
        cost_multipliers: Sequence[float],
        leaf_capacity: float = 1.0,
    ):
        degrees = list(int(d) for d in degrees)
        cm = [float(c) for c in cost_multipliers]
        if not degrees:
            raise InvalidInputError("hierarchy needs height >= 1 (non-empty degrees)")
        if any(d < 1 for d in degrees):
            raise InvalidInputError(f"all degrees must be >= 1, got {degrees}")
        if len(cm) != len(degrees) + 1:
            raise InvalidInputError(
                f"need h+1 = {len(degrees) + 1} cost multipliers, got {len(cm)}"
            )
        if any(c < 0 for c in cm):
            raise InvalidInputError(f"cost multipliers must be >= 0, got {cm}")
        if any(cm[i] < cm[i + 1] for i in range(len(cm) - 1)):
            raise InvalidInputError(
                f"cost multipliers must be non-increasing, got {cm}"
            )
        if leaf_capacity <= 0:
            raise InvalidInputError(f"leaf capacity must be > 0, got {leaf_capacity}")
        self.degrees: Tuple[int, ...] = tuple(degrees)
        self.cm: Tuple[float, ...] = tuple(cm)
        self.leaf_capacity = float(leaf_capacity)
        self.h = len(degrees)
        k = 1
        for d in degrees:
            k *= d
        self.k = k
        # _suffix_prod[j] = Π_{j' >= j} DEG(j') = number of leaves under a
        # level-j node; _suffix_prod[h] = 1.
        sp = [1] * (self.h + 1)
        for j in range(self.h - 1, -1, -1):
            sp[j] = sp[j + 1] * degrees[j]
        self._suffix_prod = tuple(sp)

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------

    def count(self, level: int) -> int:
        """Number of nodes at ``level`` (level 0 = root, level h = leaves)."""
        self._check_level(level)
        return self.k // self._suffix_prod[level]

    def capacity(self, level: int) -> float:
        """``CP(level)``: total leaf capacity under one level-``level`` node."""
        self._check_level(level)
        return self._suffix_prod[level] * self.leaf_capacity

    def leaves_under(self, level: int, node: int) -> np.ndarray:
        """Leaf ids in the subtree of node ``(level, node)``."""
        self._check_node(level, node)
        width = self._suffix_prod[level]
        return np.arange(node * width, (node + 1) * width, dtype=np.int64)

    def ancestor(self, leaf: int | np.ndarray, level: int) -> np.ndarray | int:
        """Index of the level-``level`` ancestor of ``leaf`` (vectorised)."""
        self._check_level(level)
        width = self._suffix_prod[level]
        result = np.asarray(leaf, dtype=np.int64) // width
        return result if result.ndim else int(result)

    def children(self, level: int, node: int) -> np.ndarray:
        """Indices of the children (at ``level + 1``) of node ``(level, node)``."""
        self._check_node(level, node)
        if level >= self.h:
            raise InvalidInputError("leaves have no children")
        d = self.degrees[level]
        return np.arange(node * d, (node + 1) * d, dtype=np.int64)

    def parent(self, level: int, node: int) -> int:
        """Index of the parent (at ``level − 1``) of node ``(level, node)``."""
        self._check_node(level, node)
        if level <= 0:
            raise InvalidInputError("the root has no parent")
        return node // self.degrees[level - 1]

    def lca_level(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
        """Level of the lowest common ancestor of two leaves (vectorised).

        Equal leaves have LCA level ``h`` (they share the leaf itself), so
        co-located edges cost ``cm(h)``.
        """
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a_arr, b_arr).shape, dtype=np.int64)
        # Deepest level at which the ancestors coincide, scanning bottom-up.
        for level in range(self.h, 0, -1):
            width = self._suffix_prod[level]
            same = (a_arr // width) == (b_arr // width)
            out = np.where(same & (out == 0), level, out)
        # Leaves under different root children keep 0 (the root).
        result = out
        return result if result.ndim else int(result)

    def pair_cost_multiplier(
        self, a: np.ndarray | int, b: np.ndarray | int
    ) -> np.ndarray | float:
        """``cm(LCA(a, b))`` for leaf arrays (the Eq. (1) kernel)."""
        levels = np.asarray(self.lca_level(a, b))
        cm = np.asarray(self.cm)
        result = cm[levels]
        return result if result.ndim else float(result)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------

    def normalized(self) -> Tuple["Hierarchy", float]:
        """Shift multipliers so ``cm(h) = 0`` (Lemma 1).

        Returns the normalised hierarchy and the offset ``cm(h)``; for any
        placement, ``cost_general = cost_normalized + offset · W`` where
        ``W`` is the total edge weight of ``G``.
        """
        offset = self.cm[-1]
        if offset == 0:
            return self, 0.0
        cm = tuple(c - offset for c in self.cm)
        return (
            Hierarchy(self.degrees, cm, leaf_capacity=self.leaf_capacity),
            offset,
        )

    def flat(self) -> "Hierarchy":
        """The ``h = 1`` flattening with the same leaves and ``cm(0)``.

        This is the hierarchy a *k-BGP* solver sees: all leaves equidistant.
        """
        return Hierarchy([self.k], [self.cm[0], self.cm[-1]], self.leaf_capacity)

    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Stable content hash of the hierarchy (32-char blake2b hex).

        Hashes the level degrees, cost multipliers and leaf capacity —
        the full identity of ``H``.  Used by the incremental-solve layer
        as part of subtree-table cache keys (hierarchies are immutable,
        so the value is computed on demand without memoisation).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(np.asarray(self.degrees, dtype=np.int64).tobytes())
        h.update(np.asarray(self.cm, dtype=np.float64).tobytes())
        h.update(np.float64(self.leaf_capacity).tobytes())
        return h.hexdigest()

    @property
    def total_capacity(self) -> float:
        """Aggregate capacity ``k · leaf_capacity``."""
        return self.k * self.leaf_capacity

    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self.h):
            raise InvalidInputError(f"level must be in [0, {self.h}], got {level}")

    def _check_node(self, level: int, node: int) -> None:
        self._check_level(level)
        if not (0 <= node < self.count(level)):
            raise InvalidInputError(
                f"node {node} out of range at level {level} (count {self.count(level)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hierarchy(degrees={list(self.degrees)}, cm={list(self.cm)}, "
            f"leaf_capacity={self.leaf_capacity})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hierarchy):
            return NotImplemented
        return (
            self.degrees == other.degrees
            and self.cm == other.cm
            and self.leaf_capacity == other.leaf_capacity
        )

    def __hash__(self) -> int:
        return hash((self.degrees, self.cm, self.leaf_capacity))
