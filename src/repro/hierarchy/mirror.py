"""Mirror functions (paper Section 1.2 / 2) and the Eq. (3) cost rewrite.

For a placement ``p : V(G) → LEAVES(H)``, the *mirror function*
``P : V(H) → 2^{V(G)}`` maps every H-node ``a`` to the set of task
vertices placed in ``a``'s subtree (Eq. 2).  Lemma 2 shows the Eq. (1)
cost equals

    ``Σ_{j=1..h} Σ_{a at level j} w(CUT(P(a))) · (cm(j−1) − cm(j)) / 2``

where ``CUT`` here is the *boundary* edge set in ``G`` (Section 2's
definition).  This module materialises mirror functions, validates their
laminarity, and implements the Eq. (3) evaluation — the equality with
Eq. (1) is exercised by ``tests/hierarchy/test_mirror.py`` (a direct
check of Lemma 2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement

__all__ = ["mirror_sets", "eq3_cost", "check_laminar"]


def mirror_sets(placement: Placement) -> Dict[Tuple[int, int], np.ndarray]:
    """Materialise the mirror function of a placement.

    Returns a dict keyed by ``(level, node_index)`` whose values are
    sorted arrays of task-vertex ids; empty H-subtrees are omitted.
    """
    hier = placement.hierarchy
    leaf_of = placement.leaf_of
    out: Dict[Tuple[int, int], np.ndarray] = {}
    for level in range(hier.h + 1):
        nodes = np.asarray(hier.ancestor(leaf_of, level))
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        boundaries = np.nonzero(np.diff(sorted_nodes))[0] + 1
        chunks = np.split(order, boundaries)
        for chunk in chunks:
            if chunk.size:
                out[(level, int(nodes[chunk[0]]))] = np.sort(chunk)
    return out


def eq3_cost(placement: Placement) -> float:
    """Evaluate the Eq. (3) mirror-function cost of a placement.

    Requires normalised multipliers (``cm(h) = 0``) for Lemma 2's equality
    with Eq. (1); for general multipliers the two differ by exactly
    ``cm(h) · W`` (see :meth:`repro.hierarchy.Hierarchy.normalized`).
    """
    hier = placement.hierarchy
    g = placement.graph
    total = 0.0
    mirrors = mirror_sets(placement)
    for (level, _node), verts in mirrors.items():
        if level == 0:
            continue
        delta = (hier.cm[level - 1] - hier.cm[level]) / 2.0
        if delta == 0.0:
            continue
        total += g.cut_weight(verts) * delta
    return total


def check_laminar(
    hier: Hierarchy, mirrors: Dict[Tuple[int, int], np.ndarray], n: int
) -> None:
    """Validate the structural properties of a mirror function.

    Checks (raising :class:`InvalidInputError` on failure):

    1. per level, the non-empty sets are pairwise disjoint and their
       union is ``{0, …, n−1}`` (Definition 3, property 2);
    2. each level-(j+1) set is contained in its parent's level-j set
       (the family is laminar).
    """
    for level in range(hier.h + 1):
        seen = np.zeros(n, dtype=bool)
        for (lv, node), verts in mirrors.items():
            if lv != level:
                continue
            if seen[verts].any():
                raise InvalidInputError(
                    f"level-{level} mirror sets are not disjoint (node {node})"
                )
            seen[verts] = True
        if not seen.all():
            raise InvalidInputError(
                f"level-{level} mirror sets do not cover all {n} vertices"
            )
    for (level, node), verts in mirrors.items():
        if level == 0:
            continue
        parent = node // hier.degrees[level - 1]
        parent_set = mirrors.get((level - 1, parent))
        if parent_set is None or not np.isin(verts, parent_set).all():
            raise InvalidInputError(
                f"mirror set of ({level}, {node}) is not contained in its parent's"
            )
