"""Placements: assignments ``p : V(G) → LEAVES(H)`` and their diagnostics.

A :class:`Placement` bundles the task graph, the hierarchy, the demand
vector and the leaf assignment, and knows how to audit itself: per-leaf
loads, the worst capacity-violation factor (the β of a bicriteria
guarantee), and the Eq. (1) communication cost (the α side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """An assignment of every task vertex to a hierarchy leaf.

    Attributes
    ----------
    graph:
        The task graph ``G``.
    hierarchy:
        The hierarchy tree ``H``.
    demands:
        Per-vertex demand vector, shape ``(n,)``, entries in
        ``(0, leaf_capacity]``.
    leaf_of:
        Integer vector, shape ``(n,)``: the leaf id hosting each vertex.
    meta:
        Free-form provenance (solver name, parameters, timings).
    """

    graph: Graph
    hierarchy: Hierarchy
    demands: np.ndarray
    leaf_of: np.ndarray
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        demands = np.asarray(self.demands, dtype=np.float64)
        leaf_of = np.asarray(self.leaf_of, dtype=np.int64)
        object.__setattr__(self, "demands", demands)
        object.__setattr__(self, "leaf_of", leaf_of)
        n = self.graph.n
        if demands.shape != (n,):
            raise InvalidInputError(f"demands must have shape ({n},), got {demands.shape}")
        if leaf_of.shape != (n,):
            raise InvalidInputError(f"leaf_of must have shape ({n},), got {leaf_of.shape}")
        if n and (demands.min() <= 0 or not np.all(np.isfinite(demands))):
            raise InvalidInputError("demands must be finite and > 0")
        if n and (leaf_of.min() < 0 or leaf_of.max() >= self.hierarchy.k):
            raise InvalidInputError(
                f"leaf ids must lie in [0, {self.hierarchy.k}), got range "
                f"[{leaf_of.min()}, {leaf_of.max()}]"
            )

    # ------------------------------------------------------------------
    # cost (Eq. 1)
    # ------------------------------------------------------------------

    def cost(self) -> float:
        """Eq. (1) communication cost: ``Σ_e cm(LCA(p(u), p(v))) · w(e)``.

        Fully vectorised: one LCA-level pass over the canonical edge
        arrays, one fancy-indexed multiplier lookup, one dot product.
        """
        g, hier = self.graph, self.hierarchy
        if g.m == 0:
            return 0.0
        mult = hier.pair_cost_multiplier(self.leaf_of[g.edges_u], self.leaf_of[g.edges_v])
        return float(np.dot(np.asarray(mult), g.edges_w))

    def level_cut_costs(self) -> np.ndarray:
        """Cost decomposition by LCA level: entry ``j`` is the weight of
        edges whose endpoints meet at level ``j`` times ``cm(j)``.

        Summing the vector reproduces :meth:`cost`; the benchmark tables
        use it to show *where* each algorithm pays.
        """
        g, hier = self.graph, self.hierarchy
        out = np.zeros(hier.h + 1)
        if g.m == 0:
            return out
        levels = np.asarray(
            hier.lca_level(self.leaf_of[g.edges_u], self.leaf_of[g.edges_v])
        )
        cm = np.asarray(hier.cm)
        np.add.at(out, levels, cm[levels] * g.edges_w)
        return out

    # ------------------------------------------------------------------
    # load / feasibility diagnostics
    # ------------------------------------------------------------------

    def leaf_loads(self) -> np.ndarray:
        """Total demand assigned to each leaf, shape ``(k,)``."""
        loads = np.zeros(self.hierarchy.k)
        np.add.at(loads, self.leaf_of, self.demands)
        return loads

    def level_loads(self, level: int) -> np.ndarray:
        """Total demand under each level-``level`` H-node."""
        hier = self.hierarchy
        loads = np.zeros(hier.count(level))
        nodes = np.asarray(hier.ancestor(self.leaf_of, level))
        np.add.at(loads, nodes, self.demands)
        return loads

    def max_violation(self) -> float:
        """Worst load / capacity ratio over *all* hierarchy nodes.

        ``≤ 1`` means fully feasible; the paper's guarantee bounds this by
        ``(1 + ε)(1 + h)``.  Checking every level (not just leaves)
        matters because the Theorem 5 repair spreads violation across
        levels — level ``j`` is only guaranteed ``(1 + j)``.
        """
        worst = 0.0
        for level in range(self.hierarchy.h + 1):
            cap = self.hierarchy.capacity(level)
            loads = self.level_loads(level)
            if loads.size:
                worst = max(worst, float(loads.max()) / cap)
        return worst

    def level_violation(self, level: int) -> float:
        """Worst load / capacity ratio at one hierarchy level."""
        cap = self.hierarchy.capacity(level)
        loads = self.level_loads(level)
        return float(loads.max()) / cap if loads.size else 0.0

    def is_feasible(self, slack: float = 1e-9) -> bool:
        """Whether no hierarchy node is overloaded (up to ``slack``)."""
        return self.max_violation() <= 1.0 + slack

    # ------------------------------------------------------------------

    def with_meta(self, **meta: object) -> "Placement":
        """Copy with extra provenance merged into ``meta``."""
        merged = dict(self.meta)
        merged.update(meta)
        return Placement(self.graph, self.hierarchy, self.demands, self.leaf_of, merged)

    def summary(self) -> str:
        """One-line audit string used by examples and the bench harness."""
        return (
            f"cost={self.cost():.4f} max_violation={self.max_violation():.3f} "
            f"leaves_used={int(np.unique(self.leaf_of).size)}/{self.hierarchy.k}"
        )
