"""Human-readable placement reports and JSON serialization.

``render_placement`` draws the hierarchy as an ASCII tree with per-node
loads, capacities and hosted tasks — the operator-facing artifact of a
pinning decision (what an admin would check before applying taskset
masks).  ``placement_to_json`` / ``placement_from_json`` round-trip a
placement (with the hierarchy and demand vector, not the graph, which
callers keep separately) so pinning decisions can be shipped between
processes.
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement

__all__ = ["render_placement", "placement_to_json", "placement_from_json"]

_LEVEL_NAMES = {
    0: "root",
    1: "group",
    2: "subgroup",
}


def render_placement(placement: Placement, max_tasks_shown: int = 12) -> str:
    """ASCII tree of the hierarchy annotated with loads and tasks.

    Parameters
    ----------
    placement:
        The placement to render.
    max_tasks_shown:
        Leaf task lists longer than this are elided.

    Returns
    -------
    str
        Multi-line drawing; overloaded nodes are marked with ``!``.
    """
    hier = placement.hierarchy
    loads = [placement.level_loads(j) for j in range(hier.h + 1)]
    lines: List[str] = []

    def describe(level: int, node: int) -> str:
        load = float(loads[level][node])
        cap = hier.capacity(level)
        flag = " !OVERLOAD" if load > cap * (1 + 1e-9) else ""
        label = f"L{level}.{node}"
        body = f"{label}: load {load:.3f} / cap {cap:.3f}{flag}"
        if level == hier.h:
            tasks = np.nonzero(placement.leaf_of == node)[0]
            shown = tasks[:max_tasks_shown].tolist()
            ellipsis = "…" if tasks.size > max_tasks_shown else ""
            body += f"  tasks={shown}{ellipsis}"
        return body

    def walk(level: int, node: int, prefix: str, is_last: bool) -> None:
        connector = "" if level == 0 else ("└─ " if is_last else "├─ ")
        lines.append(prefix + connector + describe(level, node))
        if level == hier.h:
            return
        child_prefix = prefix if level == 0 else prefix + ("   " if is_last else "│  ")
        kids = hier.children(level, node)
        for i, child in enumerate(kids):
            walk(level + 1, int(child), child_prefix, i == len(kids) - 1)

    walk(0, 0, "", True)
    lines.append(
        f"total cost {placement.cost():.4f}; worst violation "
        f"{placement.max_violation():.3f}"
    )
    return "\n".join(lines)


def placement_to_json(placement: Placement) -> str:
    """Serialize a placement (hierarchy + demands + assignment + meta).

    The graph is intentionally excluded — it is typically large, owned by
    the caller, and needed again at load time anyway (see
    :func:`placement_from_json`).
    """
    hier = placement.hierarchy
    payload = {
        "format": "repro-placement-v1",
        "hierarchy": {
            "degrees": list(hier.degrees),
            "cost_multipliers": list(hier.cm),
            "leaf_capacity": hier.leaf_capacity,
        },
        "demands": placement.demands.tolist(),
        "leaf_of": placement.leaf_of.tolist(),
        "meta": {k: v for k, v in placement.meta.items() if _jsonable(v)},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def placement_from_json(text: str, graph: Graph) -> Placement:
    """Inverse of :func:`placement_to_json`; the caller supplies the graph."""
    payload = json.loads(text)
    if payload.get("format") != "repro-placement-v1":
        raise InvalidInputError(
            f"unsupported placement format {payload.get('format')!r}"
        )
    h = payload["hierarchy"]
    hier = Hierarchy(
        h["degrees"], h["cost_multipliers"], leaf_capacity=h["leaf_capacity"]
    )
    return Placement(
        graph,
        hier,
        np.asarray(payload["demands"], dtype=np.float64),
        np.asarray(payload["leaf_of"], dtype=np.int64),
        meta=dict(payload.get("meta", {})),
    )


def _jsonable(value: object) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False
