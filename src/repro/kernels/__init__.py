"""Pluggable hot-path kernels behind a backend seam (ROADMAP item 3).

Profiling (the PR 7 sampling profiler) puts the remaining solve time in
three pure-python/numpy hot loops: Dinic's level-BFS / blocking-flow DFS
(:mod:`repro.flow.maxflow`, driven ``n − 1`` times per Gomory–Hu build),
the RHGPT tiled merge + dominance prune (:mod:`repro.hgpt.dp`), and the
spectral Laplacian matvec plus CSR heavy-edge matching feeding the
multilevel front-end.  This package factors those loops out behind a
narrow ABI over flat ndarrays so they can be swapped for JIT/native
implementations without touching the algorithms:

``dinic_bfs_levels``
    Level-graph BFS over a paired-arc residual network.
``dinic_blocking_flow``
    One blocking-flow phase (explicit-stack DFS with iteration
    pointers); mutates the residual capacities in place.
``dp_tile_merge``
    One tile of the DP cross-product merge: pair costs, budget mask,
    signature sums, capacity feasibility.
``dp_dominance_prune``
    The dominance scan over a pre-sorted state table (+ optional beam).
``csr_matvec``
    ``y = A @ x`` for a CSR matrix given as raw arrays.
``heavy_edge_match``
    Proposal-round heavy-edge matching over CSR adjacency.

Backends
--------
``python``
    The reference implementations, *extracted* (not rewritten) from the
    original modules.  Always available.
``numba``
    ``@njit(cache=True)`` ports, soft-gated on ``import numba``: when
    numba is missing the registry logs one line and falls back to
    ``python`` — never an error.  A future C-extension backend registers
    through the same seam.

**Bit-identical outputs across backends are the contract** — every
kernel returns (and mutates) exactly the same arrays on every backend,
enforced by the hypothesis equivalence suite in
``tests/kernels/test_backends.py``.  Floating-point accumulation order
is therefore part of each kernel's spec.

Selection
---------
Explicit config wins, then the environment, then auto-detection:

1. ``KernelConfig(backend="python"|"numba")`` (or the CLI flag
   ``repro solve --kernel-backend``) selects that backend; a missing
   numba still falls back to python with a one-time log line.
2. ``backend="auto"`` consults ``REPRO_KERNEL_BACKEND`` when set.
3. Otherwise: numba when importable, else python.

The resolved backend is scoped with :func:`use_backend` (the engine
wraps each run), stamped into run reports as ``kernel_backend``, and
every dispatch increments ``repro_kernel_dispatch_total{kernel,backend}``.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import InvalidInputError

__all__ = [
    "KernelConfig",
    "KernelBackend",
    "KERNEL_NAMES",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "get_backend",
    "use_backend",
    "dinic_bfs_levels",
    "dinic_blocking_flow",
    "dp_tile_merge",
    "dp_dominance_prune",
    "csr_matvec",
    "heavy_edge_match",
]

#: The six entry points every backend must provide.
KERNEL_NAMES = (
    "dinic_bfs_levels",
    "dinic_blocking_flow",
    "dp_tile_merge",
    "dp_dominance_prune",
    "csr_matvec",
    "heavy_edge_match",
)

#: Environment override consulted by ``backend="auto"``.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_log = logging.getLogger("repro.kernels")


@dataclass(frozen=True)
class KernelConfig:
    """Hot-path kernel selection (the ``kernel`` field of ``SolverConfig``).

    Attributes
    ----------
    backend:
        ``"auto"`` (default) — ``REPRO_KERNEL_BACKEND`` when set, else
        numba when importable, else the pure-python reference.
        ``"python"`` / ``"numba"`` pin the backend explicitly; a pinned
        backend whose runtime dependency is missing falls back to python
        with a one-time log line.  All backends return bit-identical
        results — this knob trades wall-clock only, never outputs.
    """

    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "python", "numba"):
            raise InvalidInputError(
                f"kernel backend must be 'auto', 'python' or 'numba', "
                f"got {self.backend!r}"
            )


class KernelBackend:
    """A named implementation of the six-kernel ABI.

    Thin namespace object: attribute per kernel, plus ``name`` (what run
    reports and the dispatch metric record).
    """

    __slots__ = ("name",) + KERNEL_NAMES

    def __init__(self, name: str, **kernels: Callable) -> None:
        missing = set(KERNEL_NAMES) - set(kernels)
        extra = set(kernels) - set(KERNEL_NAMES)
        if missing or extra:
            raise InvalidInputError(
                f"backend {name!r} kernel set mismatch: "
                f"missing {sorted(missing)}, unexpected {sorted(extra)}"
            )
        self.name = name
        for kernel_name, fn in kernels.items():
            setattr(self, kernel_name, fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelBackend({self.name!r})"


#: Registered factories, in registration order (python first = the
#: auto-detect fallback of last resort).  A factory returns ``None``
#: when its runtime dependency is unavailable.
_FACTORIES: Dict[str, Callable[[], Optional[KernelBackend]]] = {}

#: Instantiated backends (``None`` cached for unavailable ones).
_INSTANCES: Dict[str, Optional[KernelBackend]] = {}

#: ``use_backend`` scope stack; empty = process default.
_ACTIVE: List[KernelBackend] = []

#: Cached auto-resolved default, keyed by the env value it saw.
_DEFAULT: Optional[Tuple[str, KernelBackend]] = None

#: One-time-log guard (fallback + unknown-env warnings).
_WARNED: Set[str] = set()


def register_backend(
    name: str, factory: Callable[[], Optional[KernelBackend]]
) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily (first resolution) and may return
    ``None`` to signal "dependency missing" — resolution then falls back
    to python.  Registering an existing name replaces it (and drops any
    cached instance), which is how a future C extension slots in.
    """
    global _DEFAULT
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _DEFAULT = None


def available_backends() -> List[str]:
    """Names of registered backends whose dependencies import, in
    registration order."""
    return [name for name in _FACTORIES if _instantiate(name) is not None]


def _instantiate(name: str) -> Optional[KernelBackend]:
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def _warn_once(key: str, message: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        _log.warning(message)


def resolve_backend(choice: str = "auto") -> KernelBackend:
    """Resolve a backend name (or ``"auto"``) to a usable backend.

    Precedence: an explicit ``choice`` wins; ``"auto"`` consults
    ``REPRO_KERNEL_BACKEND``, then prefers numba when importable, then
    python.  An explicitly chosen backend whose dependency is missing
    falls back to python with a one-time log line; an *unknown* explicit
    name raises (config typos should not silently change performance).
    """
    if choice is None:
        choice = "auto"
    if choice == "auto":
        env = os.environ.get(ENV_VAR, "").strip().lower()
        if env and env != "auto":
            if env in _FACTORIES:
                choice = env
            else:
                _warn_once(
                    f"env:{env}",
                    f"{ENV_VAR}={env!r} names no registered kernel backend "
                    f"(registered: {sorted(_FACTORIES)}); auto-detecting",
                )
    if choice == "auto":
        for name in ("numba", "python"):
            backend = _instantiate(name) if name in _FACTORIES else None
            if backend is not None:
                return backend
        raise InvalidInputError("no kernel backend available")  # pragma: no cover
    if choice not in _FACTORIES:
        raise InvalidInputError(
            f"unknown kernel backend {choice!r} "
            f"(registered: {sorted(_FACTORIES)})"
        )
    backend = _instantiate(choice)
    if backend is None:
        _warn_once(
            f"fallback:{choice}",
            f"kernel backend {choice!r} unavailable "
            "(dependency not importable); falling back to 'python'",
        )
        fallback = _instantiate("python")
        assert fallback is not None
        return fallback
    return backend


def get_backend() -> KernelBackend:
    """The active backend: innermost :func:`use_backend` scope, else the
    (cached) auto-resolved process default."""
    if _ACTIVE:
        return _ACTIVE[-1]
    global _DEFAULT
    env = os.environ.get(ENV_VAR, "")
    if _DEFAULT is None or _DEFAULT[0] != env:
        _DEFAULT = (env, resolve_backend("auto"))
    return _DEFAULT[1]


@contextmanager
def use_backend(choice: str = "auto"):
    """Scope the active backend (re-entrant; yields the resolved backend).

    The engine wraps each run in this so every kernel dispatched below —
    including inside cached helpers that never see the config — uses the
    run's configured backend.
    """
    backend = resolve_backend(choice)
    _ACTIVE.append(backend)
    try:
        yield backend
    finally:
        _ACTIVE.pop()


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

#: Cached ``repro_kernel_dispatch_total`` children keyed (kernel, backend)
#: — the labels() find-or-create lookup is off the hot path after the
#: first dispatch of each pair.  The cache is tied to one registry
#: ``(object, generation)`` pair and flushed whenever either changes, so
#: a test-side ``reset()`` cannot leave it holding orphaned children.
_DISPATCH: Dict[Tuple[str, str], object] = {}
_DISPATCH_KEY: Optional[Tuple[object, int]] = None


def _dispatch_child(kernel: str, backend: str):
    global _DISPATCH_KEY
    # Imported lazily: this package sits below every hot-path module
    # (flow, dp, spectral, contraction import it at module level), so an
    # import-time metrics dependency would cycle through repro.obs ->
    # repro.core -> ... -> those same modules.
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if _DISPATCH_KEY is None or (
        _DISPATCH_KEY[0] is not registry or _DISPATCH_KEY[1] != registry.generation
    ):
        _DISPATCH.clear()
        _DISPATCH_KEY = (registry, registry.generation)
    key = (kernel, backend)
    child = _DISPATCH.get(key)
    if child is None:
        child = registry.counter(
            "repro_kernel_dispatch_total",
            "Hot-path kernel invocations by kernel name and backend",
            labelnames=("kernel", "backend"),
        ).labels(kernel=kernel, backend=backend)
        _DISPATCH[key] = child
    return child


def dinic_bfs_levels(heads, caps, arc_indptr, arc_ids, s, *, backend=None):
    """BFS levels of the residual level graph (``-1`` = unreachable)."""
    b = backend if backend is not None else get_backend()
    _dispatch_child("dinic_bfs_levels", b.name).inc()
    return b.dinic_bfs_levels(heads, caps, arc_indptr, arc_ids, s)


def dinic_blocking_flow(
    heads, caps, arc_indptr, arc_ids, level, s, t, *, backend=None
):
    """One Dinic phase: saturate the level graph, return the flow pushed.

    Mutates ``caps`` (residual capacities) and ``level`` (dead ends are
    marked ``-1``) in place.
    """
    b = backend if backend is not None else get_backend()
    _dispatch_child("dinic_blocking_flow", b.name).inc()
    return b.dinic_blocking_flow(heads, caps, arc_indptr, arc_ids, level, s, t)


def dp_tile_merge(
    pa_sig, pa_cost, pb_sig, pb_cost, caps, start, stop, budget, *, backend=None
):
    """One DP merge tile over cross-product ranks ``[start, stop)``.

    Returns ``(sums, costs, ii, jj, rank, n_ok)`` — the capacity-feasible
    pairs (in ascending rank order) and the count of pairs that survived
    the ``budget`` mask (feasible or not), for the caller's pruning
    stats.
    """
    b = backend if backend is not None else get_backend()
    _dispatch_child("dp_tile_merge", b.name).inc()
    return b.dp_tile_merge(
        pa_sig, pa_cost, pb_sig, pb_cost, caps, start, stop, budget
    )


def dp_dominance_prune(sigs, costs, order, beam_width, *, backend=None):
    """Dominance scan over states pre-sorted by ``order``.

    ``beam_width < 0`` disables the beam.  Returns ``(kept, truncated)``
    — surviving row indices in scan order, and whether the beam fired
    (the caller re-inserts the most-closed state).
    """
    b = backend if backend is not None else get_backend()
    _dispatch_child("dp_dominance_prune", b.name).inc()
    return b.dp_dominance_prune(sigs, costs, order, beam_width)


def csr_matvec(indptr, indices, data, x, *, backend=None):
    """``y = A @ x`` for the CSR matrix ``(data, indices, indptr)``."""
    b = backend if backend is not None else get_backend()
    _dispatch_child("csr_matvec", b.name).inc()
    return b.csr_matvec(indptr, indices, data, x)


def heavy_edge_match(
    indptr, indices, weights, tie, fits, rounds, *, backend=None
):
    """Proposal-round heavy-edge matching over CSR adjacency.

    ``tie`` is the per-vertex random priority, ``fits`` the per-CSR-entry
    eligibility mask (weight caps).  Returns ``match[v]`` = partner or
    ``-1``.
    """
    b = backend if backend is not None else get_backend()
    _dispatch_child("heavy_edge_match", b.name).inc()
    return b.heavy_edge_match(indptr, indices, weights, tie, fits, rounds)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------


def _python_factory() -> Optional[KernelBackend]:
    from repro.kernels import python_backend as impl

    return KernelBackend(
        "python", **{name: getattr(impl, name) for name in KERNEL_NAMES}
    )


def _numba_factory() -> Optional[KernelBackend]:
    # Import lazily so python-only environments never touch numba at all.
    from repro.kernels import numba_backend as impl

    if not impl.NUMBA_AVAILABLE:
        return None
    return KernelBackend(
        "numba", **{name: getattr(impl, name) for name in KERNEL_NAMES}
    )


register_backend("python", _python_factory)
register_backend("numba", _numba_factory)
