"""Numba JIT backend for the kernel ABI.

``@njit(cache=True)`` ports of the python reference kernels, written to
preserve floating-point accumulation order exactly (no ``fastmath``, no
reassociation) so outputs stay bit-identical to the python backend —
the registry contract, enforced by ``tests/kernels/test_backends.py``.

Soft-gated: importing this module never raises.  When numba is not
installed ``NUMBA_AVAILABLE`` is ``False``, the decorators degrade to
no-ops, and the registry factory declines to build the backend (the
resolver then falls back to python with a one-time log line).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: ARG001 - signature-compatible stub
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


__all__ = [
    "NUMBA_AVAILABLE",
    "dinic_bfs_levels",
    "dinic_blocking_flow",
    "dp_tile_merge",
    "dp_dominance_prune",
    "csr_matvec",
    "heavy_edge_match",
]


@njit(cache=True)
def dinic_bfs_levels(heads, caps, arc_indptr, arc_ids, s):
    n = arc_indptr.shape[0] - 1
    level = np.full(n, -1, np.int64)
    level[s] = 0
    queue = np.empty(n, np.int64)
    queue[0] = s
    qn = 1
    qi = 0
    while qi < qn:
        v = queue[qi]
        qi += 1
        for p in range(arc_indptr[v], arc_indptr[v + 1]):
            a = arc_ids[p]
            u = heads[a]
            if caps[a] > 1e-12 and level[u] < 0:
                level[u] = level[v] + 1
                queue[qn] = u
                qn += 1
    return level


@njit(cache=True)
def dinic_blocking_flow(heads, caps, arc_indptr, arc_ids, level, s, t):
    n = arc_indptr.shape[0] - 1
    it = np.zeros(n, np.int64)
    # A level-graph path visits strictly increasing levels, so n arcs
    # bound its length.
    path = np.empty(n, np.int64)
    total = 0.0
    while True:
        plen = 0
        v = s
        pushed = 0.0
        done = False
        while not done:
            if v == t:
                if plen > 0:
                    bottleneck = np.inf
                    for p in range(plen):
                        c = caps[path[p]]
                        if c < bottleneck:
                            bottleneck = c
                    for p in range(plen):
                        a = path[p]
                        caps[a] -= bottleneck
                        caps[a ^ 1] += bottleneck
                    pushed = bottleneck
                done = True
                break
            advanced = False
            base = arc_indptr[v]
            deg = arc_indptr[v + 1] - base
            while it[v] < deg:
                a = arc_ids[base + it[v]]
                u = heads[a]
                if caps[a] > 1e-12 and level[u] == level[v] + 1:
                    path[plen] = a
                    plen += 1
                    v = u
                    advanced = True
                    break
                it[v] += 1
            if advanced:
                continue
            level[v] = -1
            if plen == 0:
                done = True
                break
            plen -= 1
            a = path[plen]
            v = heads[a ^ 1]
            it[v] += 1
        if pushed <= 1e-12:
            break
        total += pushed
    return total


@njit(cache=True)
def dp_tile_merge(pa_sig, pa_cost, pb_sig, pb_cost, caps, start, stop, budget):
    nb = pb_cost.shape[0]
    h = caps.shape[0]
    m = stop - start
    sums = np.empty((m, h), np.int64)
    costs = np.empty(m, np.float64)
    ii = np.empty(m, np.int64)
    jj = np.empty(m, np.int64)
    rank = np.empty(m, np.int64)
    n_ok = 0
    n_f = 0
    for k in range(start, stop):
        i = k // nb
        j = k - i * nb
        c = pa_cost[i] + pb_cost[j]
        if c > budget:
            continue
        n_ok += 1
        feasible = True
        for q in range(h):
            sv = pa_sig[i, q] + pb_sig[j, q]
            sums[n_f, q] = sv
            if sv > caps[q]:
                feasible = False
        if not feasible:
            continue
        costs[n_f] = c
        ii[n_f] = i
        jj[n_f] = j
        rank[n_f] = k
        n_f += 1
    return (
        sums[:n_f].copy(),
        costs[:n_f].copy(),
        ii[:n_f].copy(),
        jj[:n_f].copy(),
        rank[:n_f].copy(),
        n_ok,
    )


@njit(cache=True)
def dp_dominance_prune(sigs, costs, order, beam_width):
    # Generic sequential scan: equivalent to the python backend's
    # specialised h==1 / h==2 / blocked h>=3 branches because all three
    # keep exactly the states no previously kept signature dominates,
    # in the same scan order.
    m = order.shape[0]
    h = sigs.shape[1]
    kept = np.empty(m, np.int64)
    kept_rows = np.empty((m, h), np.int64)
    n_kept = 0
    truncated = False
    for oi in range(m):
        pos = order[oi]
        dominated = False
        for r in range(n_kept):
            below = True
            for q in range(h):
                if kept_rows[r, q] > sigs[pos, q]:
                    below = False
                    break
            if below:
                dominated = True
                break
        if dominated:
            continue
        for q in range(h):
            kept_rows[n_kept, q] = sigs[pos, q]
        kept[n_kept] = pos
        n_kept += 1
        if beam_width >= 0 and n_kept >= beam_width:
            truncated = True
            break
    return kept[:n_kept].copy(), truncated


@njit(cache=True)
def csr_matvec(indptr, indices, data, x):
    # Sequential per-row accumulation in index order — the same op order
    # as scipy's CSR matvec, so results match the python backend bitwise.
    n = indptr.shape[0] - 1
    y = np.empty(n, np.float64)
    for i in range(n):
        acc = 0.0
        for p in range(indptr[i], indptr[i + 1]):
            acc += data[p] * x[indices[p]]
        y[i] = acc
    return y


@njit(cache=True)
def heavy_edge_match(indptr, indices, weights, tie, fits, rounds):
    # Per-vertex best-eligible scan: (max weight, min neighbour tie) is
    # exactly the first entry of the python backend's lexsorted segment.
    n = indptr.shape[0] - 1
    match = np.full(n, -1, np.int64)
    proposal = np.empty(n, np.int64)
    for _ in range(rounds):
        any_free = False
        for v in range(n):
            if match[v] < 0:
                any_free = True
                break
        if not any_free:
            break
        for v in range(n):
            best = -1
            best_w = 0.0
            best_t = 0
            if match[v] < 0:
                for p in range(indptr[v], indptr[v + 1]):
                    if not fits[p]:
                        continue
                    u = indices[p]
                    if match[u] >= 0:
                        continue
                    w = weights[p]
                    tu = tie[u]
                    if best < 0 or w > best_w or (w == best_w and tu < best_t):
                        best = u
                        best_w = w
                        best_t = tu
            proposal[v] = best
        matched = False
        for v in range(n):
            u = proposal[v]
            if u > v and proposal[u] == v:
                match[v] = u
                match[u] = v
                matched = True
        if not matched:
            break
    return match
