"""Pure-python/numpy reference backend for the kernel ABI.

These are the original hot-loop implementations *extracted* from
:mod:`repro.flow.maxflow`, :mod:`repro.hgpt.dp`,
:mod:`repro.graph.spectral` and :mod:`repro.decomposition.contraction`
— not rewrites.  They define the bit-exact contract every other backend
must match (``tests/kernels/test_backends.py``), so changes here are
semantic changes to the solver.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "dinic_bfs_levels",
    "dinic_blocking_flow",
    "dp_tile_merge",
    "dp_dominance_prune",
    "csr_matvec",
    "heavy_edge_match",
]


# ----------------------------------------------------------------------
# Dinic (from repro.flow.maxflow)
# ----------------------------------------------------------------------


def dinic_bfs_levels(
    heads: np.ndarray,
    caps: np.ndarray,
    arc_indptr: np.ndarray,
    arc_ids: np.ndarray,
    s: int,
) -> np.ndarray:
    """Level-graph BFS from ``s`` over arcs with residual capacity."""
    n = arc_indptr.shape[0] - 1
    level = np.full(n, -1, dtype=np.int64)
    level[s] = 0
    queue = [s]
    qi = 0
    while qi < len(queue):
        v = queue[qi]
        qi += 1
        for a in arc_ids[arc_indptr[v]:arc_indptr[v + 1]]:
            u = heads[a]
            if caps[a] > 1e-12 and level[u] < 0:
                level[u] = level[v] + 1
                queue.append(int(u))
    return level


def dinic_blocking_flow(
    heads: np.ndarray,
    caps: np.ndarray,
    arc_indptr: np.ndarray,
    arc_ids: np.ndarray,
    level: np.ndarray,
    s: int,
    t: int,
) -> float:
    """One blocking-flow phase; mutates ``caps`` and ``level`` in place."""
    n = arc_indptr.shape[0] - 1
    it = [0] * n
    total = 0.0
    inf = float("inf")
    while True:
        pushed = _dfs_push(heads, caps, arc_indptr, arc_ids, level, it, s, t, inf)
        if pushed <= 1e-12:
            break
        total += pushed
    return total


def _dfs_push(
    heads: np.ndarray,
    caps: np.ndarray,
    arc_indptr: np.ndarray,
    arc_ids: np.ndarray,
    level: np.ndarray,
    it: List[int],
    s: int,
    t: int,
    limit: float,
) -> float:
    """One augmenting path in the level graph (explicit stack DFS)."""
    path: List[int] = []  # arc ids along the current path
    v = s
    while True:
        if v == t:
            bottleneck = min(limit, min(caps[a] for a in path)) if path else 0.0
            for a in path:
                caps[a] -= bottleneck
                caps[a ^ 1] += bottleneck
            return bottleneck
        advanced = False
        base = int(arc_indptr[v])
        deg = int(arc_indptr[v + 1]) - base
        while it[v] < deg:
            a = int(arc_ids[base + it[v]])
            u = int(heads[a])
            if caps[a] > 1e-12 and level[u] == level[v] + 1:
                path.append(a)
                v = u
                advanced = True
                break
            it[v] += 1
        if advanced:
            continue
        # Dead end: retreat.
        level[v] = -1
        if not path:
            return 0.0
        a = path.pop()
        v = int(heads[a ^ 1])
        it[v] += 1


# ----------------------------------------------------------------------
# DP merge + dominance (from repro.hgpt.dp)
# ----------------------------------------------------------------------


def dp_tile_merge(
    pa_sig: np.ndarray,
    pa_cost: np.ndarray,
    pb_sig: np.ndarray,
    pb_cost: np.ndarray,
    caps: np.ndarray,
    start: int,
    stop: int,
    budget: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """One tile of the cross-product merge (see the dispatch docstring)."""
    nb = pb_cost.size
    idx = np.arange(start, stop, dtype=np.int64)
    ii = idx // nb
    jj = idx - ii * nb
    costs = pa_cost[ii] + pb_cost[jj]
    if budget < math.inf:
        ok = costs <= budget
        n_ok = int(np.count_nonzero(ok))
        if n_ok < idx.size:
            ii, jj, costs, idx = ii[ok], jj[ok], costs[ok], idx[ok]
    else:
        n_ok = int(idx.size)
    if n_ok == 0:
        empty = np.empty(0, dtype=np.int64)
        return (
            np.empty((0, caps.size), dtype=pa_sig.dtype),
            np.empty(0, dtype=np.float64),
            empty,
            empty,
            empty.copy(),
            0,
        )
    sums = pa_sig[ii] + pb_sig[jj]
    feas = (sums <= caps).all(axis=1)
    return sums[feas], costs[feas], ii[feas], jj[feas], idx[feas], n_ok


#: Candidate rows per vectorised dominance block (h >= 3 scan).
_DOM_BLOCK = 256


def dp_dominance_prune(
    sigs: np.ndarray,
    costs: np.ndarray,
    order: np.ndarray,
    beam_width: int,
) -> Tuple[np.ndarray, bool]:
    """Dominance scan over ``order``-sorted states (``beam_width < 0`` =
    no beam).  Returns kept row indices (scan order) and the beam flag.

    A state survives unless a previously kept signature is ≤ it
    componentwise.  Because survivors are scanned cheapest-first, the
    kept signatures form an antichain — for ``h ≤ 2`` that is a monotone
    staircase, so dominance queries become binary searches (O(m log m)
    total) instead of the generic O(m · kept) scan.  For ``h ≥ 3`` the
    scan is blocked: a whole block is checked against every previously
    kept signature in one vectorised comparison, and only rows that
    survive it (final survivors plus rows dominated solely inside their
    own block — transitivity guarantees nothing else slips through)
    reach the sequential pass, which then compares against block-local
    keeps only.
    """
    m = costs.size
    h = sigs.shape[1]
    beam = None if beam_width < 0 else int(beam_width)
    kept_idx: List[int] = []
    truncated = False
    if h == 1:
        # Survivor iff its signature is a new minimum.
        best = np.iinfo(np.int64).max
        for pos in order:
            s = int(sigs[pos, 0])
            if s >= best:
                continue
            best = s
            kept_idx.append(int(pos))
            if beam is not None and len(kept_idx) >= beam:
                truncated = True
                break
    elif h == 2:
        # Maintain the Pareto frontier of kept signatures as a staircase
        # (xs strictly increasing, ys strictly decreasing): (a, b) is
        # dominated iff the frontier point with the largest x <= a has
        # y <= b.  Kept states themselves need not be an antichain (a
        # later, more expensive state may be componentwise smaller), so
        # insertion evicts frontier points the new signature covers.
        xs: List[int] = []
        ys: List[int] = []
        for pos in order:
            a, b = int(sigs[pos, 0]), int(sigs[pos, 1])
            k = bisect.bisect_right(xs, a)
            if k > 0 and ys[k - 1] <= b:
                continue
            # Evict frontier points (x >= a, y >= b): anything they would
            # dominate in the future, (a, b) dominates too.
            end = k
            while end < len(xs) and ys[end] >= b:
                end += 1
            del xs[k:end]
            del ys[k:end]
            xs.insert(k, a)
            ys.insert(k, b)
            kept_idx.append(int(pos))
            if beam is not None and len(kept_idx) >= beam:
                truncated = True
                break
    else:
        sorted_sigs = sigs[order]
        kept_rows = np.empty((m, h), dtype=sigs.dtype)
        n_kept = 0
        for s in range(0, m, _DOM_BLOCK):
            block = sorted_sigs[s:s + _DOM_BLOCK]
            if n_kept:
                # One comparison of the whole block against every kept
                # signature; (h, kept, block) accumulation keeps the
                # temporary two-dimensional.
                dom = np.ones((n_kept, block.shape[0]), dtype=bool)
                for i in range(h):
                    dom &= kept_rows[:n_kept, i, None] <= block[None, :, i]
                survivors = np.nonzero(~dom.any(axis=0))[0]
            else:
                survivors = np.arange(block.shape[0])
            block_start = n_kept
            for t in survivors:
                sig = block[t]
                if n_kept > block_start and bool(
                    np.all(kept_rows[block_start:n_kept] <= sig, axis=1).any()
                ):
                    continue
                kept_rows[n_kept] = sig
                kept_idx.append(int(order[s + t]))
                n_kept += 1
                if beam is not None and n_kept >= beam:
                    truncated = True
                    break
            if truncated:
                break
    return np.asarray(kept_idx, dtype=np.int64), truncated


# ----------------------------------------------------------------------
# CSR matvec (from repro.graph.spectral's power iteration)
# ----------------------------------------------------------------------

#: One-slot wrapper cache: the power iteration multiplies the same
#: Laplacian thousands of times, so rebuilding the scipy view per call
#: would dominate.  Strong references to the arrays keep the id() key
#: from being recycled while the entry lives.
_MATVEC_CACHE: List[tuple] = []


def csr_matvec(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """``A @ x`` via scipy's CSR kernel — arithmetic (and accumulation
    order) identical to the pre-seam ``lap @ x``."""
    key = (id(indptr), id(indices), id(data))
    if _MATVEC_CACHE and _MATVEC_CACHE[0][0] == key:
        mat = _MATVEC_CACHE[0][4]
    else:
        n = indptr.shape[0] - 1
        mat = sp.csr_matrix((data, indices, indptr), shape=(n, n))
        _MATVEC_CACHE[:] = [(key, indptr, indices, data, mat)]
    return mat @ x


# ----------------------------------------------------------------------
# heavy-edge matching (from repro.decomposition.contraction)
# ----------------------------------------------------------------------


def heavy_edge_match(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    tie: np.ndarray,
    fits: np.ndarray,
    rounds: int,
) -> np.ndarray:
    """Proposal rounds over CSR adjacency (see the dispatch docstring)."""
    n = indptr.shape[0] - 1
    match = np.full(n, -1, dtype=np.int64)
    deg = np.diff(indptr)
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    # Static per-call entry order: within each vertex's CSR segment,
    # heaviest edge first, then lowest random priority of the neighbour.
    order = np.lexsort((tie[indices], -weights, owner))
    nbr = indices[order]
    fits = fits[order]
    n_entries = nbr.size
    entry_pos = np.arange(n_entries, dtype=np.int64)
    seg_start = indptr[:-1]
    nonempty = deg > 0
    ids = np.arange(n, dtype=np.int64)
    for _ in range(rounds):
        free = match < 0
        if not free.any():
            break
        elig = fits & free[nbr]
        # First eligible entry per CSR segment (min position, reduceat
        # over the non-empty segments only; an empty reduce is invalid).
        pos = np.where(elig, entry_pos, n_entries)
        first = np.full(n, n_entries, dtype=np.int64)
        if nonempty.any():
            first[nonempty] = np.minimum.reduceat(pos, seg_start[nonempty])
        proposal = np.full(n, -1, dtype=np.int64)
        has = free & (first < n_entries)
        proposal[has] = nbr[first[has]]
        # Conflict resolution: only mutual proposals match this round.
        target = np.where(proposal >= 0, proposal, 0)
        mutual = (proposal >= 0) & (proposal[target] == ids)
        if not mutual.any():
            break
        match[mutual] = proposal[mutual]
    return match
