"""Multilevel coarsen–solve–refine front-end.

Scales the Theorem-1 pipeline to million-vertex instances: vectorised
heavy-edge-matching coarsening (:mod:`repro.multilevel.coarsen`), the
unchanged staged engine on the coarsest graph, and hierarchy-aware FM
refinement on the way back up (:mod:`repro.multilevel.frontend`).

Configured by :class:`repro.core.config.MultilevelConfig` (re-exported
here); enable via ``SolverConfig(multilevel=MultilevelConfig(enabled=True))``
or ``repro solve --multilevel``.
"""

from repro.core.config import MultilevelConfig
from repro.multilevel.coarsen import (
    CoarsenStats,
    CoarseningHierarchy,
    coarsen_graph,
)
from repro.multilevel.frontend import MultilevelResult, solve_multilevel

__all__ = [
    "MultilevelConfig",
    "CoarsenStats",
    "CoarseningHierarchy",
    "coarsen_graph",
    "MultilevelResult",
    "solve_multilevel",
]
