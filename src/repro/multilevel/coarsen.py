"""Vectorised coarsening for the multilevel front-end.

Builds the level stack the coarsen–solve–refine scheme walks: iterated
heavy-edge matching (the vectorised kernel in
:mod:`repro.decomposition.contraction`) contracts the graph towards
``target_n`` supervertices while summing per-vertex demands and merged
edge weights, capping every supervertex's demand at the hierarchy's leaf
capacity so **each coarse level remains a feasible HGP instance** — the
coarsest graph feeds straight into the staged engine.

Progress per level is monitored: when a matching round shrinks the graph
by less than ``stall_ratio`` (disconnected remnants, demand caps binding
everywhere), coarsening stops and the stall is recorded in
:class:`CoarsenStats` instead of looping forever.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np

from repro.decomposition.contraction import (
    aggregate_unmatched,
    heavy_edge_matching,
    matching_labels,
    two_hop_matching,
)
from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["CoarsenStats", "CoarseningHierarchy", "coarsen_graph"]


@dataclass(frozen=True)
class CoarsenStats:
    """Diagnostics of one coarsening run.

    Attributes
    ----------
    levels:
        Number of graphs in the hierarchy, including the finest.
    n_fine, n_coarsest, m_coarsest:
        Vertex count of the input, and vertex/edge counts of the
        coarsest graph.
    shrink_factor:
        ``n_fine / n_coarsest`` — how much the whole stack shrank.
    level_shrinks:
        Per-level ``n_coarse / n_fine`` ratios (one entry per contraction).
    stalled:
        Whether coarsening stopped above ``target_n`` because a matching
        round made no (or too little) progress.
    """

    levels: int
    n_fine: int
    n_coarsest: int
    m_coarsest: int
    shrink_factor: float
    level_shrinks: tuple
    stalled: bool

    def to_dict(self) -> dict:
        """JSON-ready flat view (``level_shrinks`` as a list)."""
        out = asdict(self)
        out["level_shrinks"] = list(self.level_shrinks)
        return out


@dataclass
class CoarseningHierarchy:
    """The level stack: graphs, summed demands, and level-to-level maps.

    ``graphs[0]`` is the input; ``maps[i]`` sends level-``i`` vertices to
    level-``i+1`` supervertices; ``demands[i]`` are the per-supervertex
    demand sums at level ``i`` (conserved exactly across levels).
    """

    graphs: List[Graph]
    demands: List[np.ndarray]
    maps: List[np.ndarray]
    stats: CoarsenStats

    @property
    def coarsest(self) -> Graph:
        """The deepest (smallest) graph in the stack."""
        return self.graphs[-1]

    def compose(self) -> np.ndarray:
        """Fine→coarsest labelling: the composition of all level maps."""
        labels = np.arange(self.graphs[0].n, dtype=np.int64)
        for mp in self.maps:
            labels = mp[labels]
        return labels

    def project(self, coarse_labels: np.ndarray) -> np.ndarray:
        """Pull a coarsest-level labelling back to the finest level."""
        coarse_labels = np.asarray(coarse_labels, dtype=np.int64)
        if coarse_labels.shape != (self.coarsest.n,):
            raise InvalidInputError(
                f"labels must have shape ({self.coarsest.n},), got "
                f"{coarse_labels.shape}"
            )
        return coarse_labels[self.compose()]


def coarsen_graph(
    g: Graph,
    demands: np.ndarray,
    *,
    target_n: int,
    max_weight: Optional[float] = None,
    rng: SeedLike = None,
    max_levels: int = 64,
    stall_ratio: float = 0.98,
    rounds: int = 8,
) -> CoarseningHierarchy:
    """Coarsen ``g`` towards ``target_n`` supervertices.

    Parameters
    ----------
    g:
        Input graph (level 0).
    demands:
        Per-vertex demands, summed into supervertices at every level.
    target_n:
        Stop once the current level has at most this many vertices.
    max_weight:
        Cap on a merged supervertex's demand (pass the hierarchy's leaf
        capacity so coarse instances stay feasible); ``None`` = no cap.
    rng:
        Seed or generator — the only randomness is the matching's
        tie-break priority, so the whole hierarchy is bit-deterministic
        given a seed.
    max_levels:
        Hard cap on contraction levels.
    stall_ratio:
        Stop when a level shrinks by less than this factor.
    rounds:
        Proposal rounds per matching.
    """
    if target_n < 1:
        raise InvalidInputError(f"target_n must be >= 1, got {target_n}")
    d0 = np.asarray(demands, dtype=np.float64)
    if d0.shape != (g.n,):
        raise InvalidInputError(f"demands must have shape ({g.n},), got {d0.shape}")
    rng = ensure_rng(rng)
    graphs: List[Graph] = [g]
    dems: List[np.ndarray] = [d0]
    maps: List[np.ndarray] = []
    shrinks: List[float] = []
    stalled = False
    while graphs[-1].n > target_n and len(maps) < max_levels:
        cur, d = graphs[-1], dems[-1]
        match = heavy_edge_matching(
            cur, rng, vertex_weights=d, max_weight=max_weight, rounds=rounds
        )
        labels = matching_labels(match)
        n_super = int(labels.max()) + 1 if labels.size else 0
        if n_super >= cur.n * stall_ratio:
            # Matching stalled (hubs match one spoke per level): fall
            # back to many-to-one aggregation of the unmatched vertices.
            labels = aggregate_unmatched(
                cur, match, vertex_weights=d, max_weight=max_weight
            )
            n_super = int(labels.max()) + 1 if labels.size else 0
        if n_super >= cur.n * stall_ratio:
            # Still stalled — the hub cluster rides the demand cap, so
            # joiners are rejected.  Pair the leftover spokes with each
            # other through their common hub (cap-aware 2-hop matching),
            # then aggregate whatever remains.
            match = two_hop_matching(
                cur, match, vertex_weights=d, max_weight=max_weight
            )
            labels = aggregate_unmatched(
                cur, match, vertex_weights=d, max_weight=max_weight
            )
            n_super = int(labels.max()) + 1 if labels.size else 0
        if n_super >= cur.n * stall_ratio:
            stalled = True
            break
        graphs.append(cur.contract(labels))
        dems.append(np.bincount(labels, weights=d, minlength=n_super))
        maps.append(labels)
        shrinks.append(n_super / cur.n)
    coarsest = graphs[-1]
    stats = CoarsenStats(
        levels=len(graphs),
        n_fine=g.n,
        n_coarsest=coarsest.n,
        m_coarsest=coarsest.m,
        shrink_factor=g.n / max(1, coarsest.n),
        level_shrinks=tuple(shrinks),
        stalled=stalled or coarsest.n > target_n,
    )
    return CoarseningHierarchy(graphs, dems, maps, stats)
