"""The coarsen–solve–refine front-end for million-vertex instances.

:func:`solve_multilevel` is the scaling layer on top of the staged
engine: it coarsens the task graph to a DP-friendly size
(:mod:`repro.multilevel.coarsen`), runs the **unchanged** Theorem-1
pipeline on the coarsest instance — so the solver cache, worker pool,
resilience policy and telemetry all apply exactly as in a flat solve —
and projects the coarse placement back up the level stack, running
hierarchy-aware FM refinement
(:func:`repro.baselines.fm.fm_refine_hierarchy`) at every level.

Feasibility is preserved by construction: coarsening caps merged
supervertex demand at the hierarchy's leaf capacity, so the coarsest
instance passes :func:`repro.core.engine.validate_instance` whenever the
fine instance does, and projection assigns each fine vertex its
supervertex's leaf, conserving per-leaf load exactly.

Telemetry: the front-end opens ``coarsen`` / ``coarse_solve`` /
``uncoarsen`` spans on one shared collector, so the engine's five stage
spans nest under ``coarse_solve`` and ``repro report show`` displays the
per-level refinement spans (``level_0`` … adjacent to the engine tree).
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

import repro.kernels as kernels
from repro.baselines.fm import HierarchyRefineStats, fm_refine_hierarchy
from repro.cache import resolve_cache, seed_token
from repro.core.config import MultilevelConfig, SolverConfig
from repro.core.engine import (
    EngineResult,
    incremental_enabled,
    run_pipeline,
    validate_instance,
)
from repro.core.telemetry import MemberFailure, RunReport, Telemetry
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.multilevel.coarsen import CoarseningHierarchy, coarsen_graph
from repro.obs.logging import NULL_LOGGER, StructuredLogger, new_run_id
from repro.obs.metrics import get_registry

__all__ = ["MultilevelResult", "solve_multilevel"]


class MultilevelResult:
    """Return value of :func:`solve_multilevel`.

    Attributes
    ----------
    placement:
        The final fine-level placement (projected + refined).
    coarse:
        The :class:`repro.core.engine.EngineResult` of the coarsest
        solve — cache hits, ensemble diagnostics and degradation status
        live here.
    levels:
        The coarsening hierarchy (graphs, demands, maps, stats).
    refine_stats:
        One :class:`repro.baselines.fm.HierarchyRefineStats` per
        uncoarsening level, coarsest-to-finest order.
    telemetry:
        The shared collector covering coarsening, the engine run and
        refinement.
    """

    def __init__(
        self,
        placement: Placement,
        coarse: EngineResult,
        levels: CoarseningHierarchy,
        refine_stats: List[HierarchyRefineStats],
        telemetry: Telemetry,
        config: SolverConfig,
        run_id: Optional[str] = None,
    ):
        self.placement = placement
        self.coarse = coarse
        self.levels = levels
        self.refine_stats = refine_stats
        self.telemetry = telemetry
        self.config = config
        self.run_id = run_id

    @property
    def cost(self) -> float:
        """True Eq. (1) cost of the final placement."""
        return self.placement.cost()

    @property
    def failures(self) -> List[MemberFailure]:
        """Terminal member failures of the coarse solve."""
        return self.coarse.failures

    @property
    def degraded(self) -> bool:
        """Whether the coarse solve lost ensemble members."""
        return self.coarse.degraded

    def stats_dict(self) -> dict:
        """JSON-ready multilevel summary (stamped into report meta)."""
        return {
            "coarsen": self.levels.stats.to_dict(),
            "coarse_cost": self.coarse.cost,
            "refine_moves": int(sum(s.moves for s in self.refine_stats)),
            "refine_gain": float(sum(s.gain for s in self.refine_stats)),
        }

    def report(self, **meta: object) -> RunReport:
        """Freeze the whole front-end run into one :class:`RunReport`."""
        if self.run_id is not None:
            meta.setdefault("run_id", self.run_id)
        if self.coarse.kernel_backend is not None:
            meta.setdefault("kernel_backend", self.coarse.kernel_backend)
        if self.coarse.incremental is not None:
            meta.setdefault("incremental", self.coarse.incremental)
        meta.setdefault("multilevel", self.stats_dict())
        return self.telemetry.report(
            config=self.config.describe(), cost=self.cost, **meta
        )


def solve_multilevel(
    g: Graph,
    hierarchy: Hierarchy,
    demands: Sequence[float],
    config: SolverConfig = SolverConfig(),
    *,
    telemetry: Optional[Telemetry] = None,
    path: str = "multilevel",
    run_id: Optional[str] = None,
    logger: Optional[StructuredLogger] = None,
) -> MultilevelResult:
    """Coarsen–solve–refine on one HGP instance.

    Parameters
    ----------
    g, hierarchy, demands:
        The instance (validated exactly as the flat path does).
    config:
        Engine knobs; ``config.multilevel`` steers coarsening depth and
        refinement (``enabled`` is ignored here — calling this function
        *is* the opt-in).  The coarse solve runs this very configuration
        with ``multilevel.enabled`` cleared.
    telemetry:
        Shared collector (``None`` = fresh one rooted at ``path``).
    run_id:
        Correlation id reused for the embedded engine run (``None`` =
        fresh id), so the front-end report and the engine's logs line up.
    logger:
        Structured logger (``None`` = silent).
    """
    ml: MultilevelConfig = config.multilevel
    d = np.asarray(demands, dtype=np.float64)
    validate_instance(g, hierarchy, d)
    tel = telemetry if telemetry is not None else Telemetry(path)
    log = logger if logger is not None else NULL_LOGGER
    if run_id is None:
        run_id = new_run_id()
    log = log.bind(run_id=run_id)
    registry = get_registry()
    registry.counter(
        "repro_multilevel_runs_total", "Multilevel front-end solves started."
    ).inc()

    # Profile the whole front-end (coarsen + solve + refine), not just
    # the embedded engine run: the session wraps everything below and
    # profile.enabled is cleared on the inner config so run_pipeline
    # does not start a second, nested profiler.
    prof_cfg = getattr(config, "profile", None)
    profile_session = None
    if prof_cfg is not None and prof_cfg.enabled:
        from repro.obs.profile import ProfileSession

        profile_session = ProfileSession(prof_cfg, tel).start()

    # Coarsening runs the heavy_edge_match kernel, so it honours the
    # configured backend; the embedded run_pipeline scopes itself.
    #
    # Incremental runs add a content-addressed ``coarsening`` cache tier:
    # the full level stack is keyed by graph digest + demands + every
    # coarsening knob, so a reoptimize on an unchanged graph (or one
    # revisited during churn) skips re-coarsening outright.  After a
    # local delta the digest changes and coarsening reruns — the dirty
    # region then resolves at the *coarse solve* instead, whose DP memo
    # reloads every coarse subtree the delta left clean.  Cached level
    # stacks are immutable build outputs, so warm and cold runs project
    # identical placements.
    kcfg = getattr(config, "kernel", None)
    coarsen_cache = None
    coarsen_parts = None
    if incremental_enabled(config):
        seed_parts = seed_token(config.seed)
        if seed_parts is not None:
            coarsen_cache = resolve_cache(config.cache)
            coarsen_parts = (
                g.digest(),
                d,
                int(ml.coarsen_to),
                float(hierarchy.leaf_capacity),
                seed_parts,
                int(ml.max_levels),
                float(ml.stall_ratio),
                int(ml.match_rounds),
            )
    with tel.span("coarsen"), kernels.use_backend(
        kcfg.backend if kcfg is not None else "auto"
    ):
        levels = None
        if coarsen_cache is not None:
            hit, levels = coarsen_cache.lookup("coarsening", coarsen_parts)
            if hit and isinstance(levels, CoarseningHierarchy):
                tel.counter("coarsen_cache_hits", 1)
            else:
                levels = None
        if levels is None:
            levels = coarsen_graph(
                g,
                d,
                target_n=ml.coarsen_to,
                max_weight=hierarchy.leaf_capacity,
                rng=config.seed,
                max_levels=ml.max_levels,
                stall_ratio=ml.stall_ratio,
                rounds=ml.match_rounds,
            )
            if coarsen_cache is not None:
                coarsen_cache.store("coarsening", coarsen_parts, levels)
                tel.counter("coarsen_cache_misses", 1)
        st = levels.stats
        tel.counter("levels", st.levels)
        tel.counter("coarsest_n", st.n_coarsest)
        tel.counter("coarsest_m", st.m_coarsest)
        tel.counter("shrink_factor", st.shrink_factor)
        if st.stalled:
            tel.counter("stalled")
    registry.gauge(
        "repro_multilevel_levels", "Levels in the last coarsening hierarchy."
    ).set(st.levels)
    registry.gauge(
        "repro_multilevel_shrink_factor",
        "Fine-over-coarsest vertex ratio of the last coarsening.",
    ).set(st.shrink_factor)
    log.info(
        "multilevel.coarsened",
        levels=st.levels,
        n_coarsest=st.n_coarsest,
        shrink_factor=round(st.shrink_factor, 3),
        stalled=st.stalled,
    )

    # The coarsest instance goes through the unchanged engine path, so
    # cache / pool / resilience / telemetry behave exactly as in a flat
    # solve.  Sharing ``tel`` nests the engine's stage spans under
    # ``coarse_solve``.
    inner_cfg = replace(config, multilevel=replace(ml, enabled=False))
    if profile_session is not None:
        inner_cfg = replace(
            inner_cfg, profile=replace(inner_cfg.profile, enabled=False)
        )
    with tel.span("coarse_solve"):
        coarse = run_pipeline(
            levels.coarsest,
            hierarchy,
            levels.demands[-1],
            inner_cfg,
            telemetry=tel,
            run_id=run_id,
            logger=log,
        )

    leaf = coarse.placement.leaf_of
    refine_stats: List[HierarchyRefineStats] = []
    moves_total = 0
    gain_total = 0.0
    with tel.span("uncoarsen"):
        for i in range(len(levels.maps) - 1, -1, -1):
            leaf = leaf[levels.maps[i]]
            with tel.span(f"level_{i}"):
                leaf, stats = fm_refine_hierarchy(
                    levels.graphs[i],
                    hierarchy,
                    levels.demands[i],
                    leaf,
                    max_passes=ml.refine_passes,
                )
                refine_stats.append(stats)
                moves_total += stats.moves
                gain_total += stats.gain
                tel.counter("n", levels.graphs[i].n)
                tel.counter("moves", stats.moves)
                tel.counter("gain", stats.gain)
    registry.counter(
        "repro_multilevel_refine_moves_total",
        "Vertex moves applied by multilevel uncoarsening refinement.",
    ).inc(moves_total)
    registry.counter(
        "repro_multilevel_refine_gain_total",
        "Eq. (1) cost reduction won by uncoarsening refinement.",
    ).inc(gain_total)
    log.info(
        "multilevel.refined",
        levels=len(levels.maps),
        moves=moves_total,
        gain=round(gain_total, 6),
    )

    placement = Placement(
        g,
        hierarchy,
        d,
        leaf,
        meta={
            "solver": "hgp_multilevel",
            "config": config.describe(),
            "coarsen": st.to_dict(),
            "coarse_cost": coarse.cost,
            "refine_moves": moves_total,
            "refine_gain": gain_total,
        },
    )
    if profile_session is not None:
        # Stamp before the report below is written so persisted reports
        # carry the profile (RunReport schema v3).
        tel.profile = profile_session.finish()
    result = MultilevelResult(
        placement, coarse, levels, refine_stats, tel, config, run_id=run_id
    )
    report_dir = os.environ.get("REPRO_RUN_REPORT_DIR")
    if report_dir:
        # Overwrite the engine's coarse-only report (same path + run_id)
        # with the full front-end report including refinement spans.
        out = Path(report_dir)
        out.mkdir(parents=True, exist_ok=True)
        target = out / f"{tel.path}_{run_id}.json"
        target.write_text(result.report().to_json() + "\n")
    return result
