"""Observability: metrics, structured logging, trace export, report tooling.

Turns the engine's write-only telemetry into operator-facing artifacts:

* :mod:`repro.obs.metrics` — process-local counters / gauges / bounded
  histograms with Prometheus text exposition; the DP, flow and online
  hot paths publish here.
* :mod:`repro.obs.logging` — JSON-lines structured logging with a
  per-run correlation id that survives process-pool hops.
* :mod:`repro.obs.trace` — run reports → Chrome trace-event JSON with
  reconstructed per-worker lanes (view in Perfetto).
* :mod:`repro.obs.report` — pretty rendering and regression-gating
  diffs behind the ``repro report`` CLI family.
* :mod:`repro.obs.profile` — continuous sampling profiler with
  telemetry-span attribution, collapsed-stack output, and per-stage
  RSS/CPU/tracemalloc deltas (``repro solve --profile``).
* :mod:`repro.obs.exporter` — embedded ``/metrics`` + ``/healthz`` +
  ``/debug/profile`` HTTP endpoint (``repro solve --metrics-port``).

See ``docs/observability.md`` for the metrics catalog and workflows.
"""

from repro.obs.exporter import MetricsExporter, maybe_start_from_env, start_exporter
from repro.obs.logging import (
    ListSink,
    NULL_LOGGER,
    StructuredLogger,
    human_sink,
    jsonl_sink,
    new_run_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    snapshot_delta,
)
from repro.obs.profile import (
    ProfileConfig,
    ProfileSession,
    SamplingProfiler,
    StageResourceMonitor,
)
from repro.obs.report import (
    ReportDiff,
    StageDelta,
    diff_reports,
    load_report,
    render_report,
)
from repro.obs.trace import report_to_trace, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "snapshot_delta",
    "ProfileConfig",
    "ProfileSession",
    "SamplingProfiler",
    "StageResourceMonitor",
    "MetricsExporter",
    "start_exporter",
    "maybe_start_from_env",
    "StructuredLogger",
    "ListSink",
    "NULL_LOGGER",
    "new_run_id",
    "jsonl_sink",
    "human_sink",
    "report_to_trace",
    "write_trace",
    "load_report",
    "render_report",
    "diff_reports",
    "ReportDiff",
    "StageDelta",
]
