"""Observability: metrics, structured logging, trace export, report tooling.

Turns the engine's write-only telemetry into operator-facing artifacts:

* :mod:`repro.obs.metrics` — process-local counters / gauges / bounded
  histograms with Prometheus text exposition; the DP, flow and online
  hot paths publish here.
* :mod:`repro.obs.logging` — JSON-lines structured logging with a
  per-run correlation id that survives process-pool hops.
* :mod:`repro.obs.trace` — run reports → Chrome trace-event JSON with
  reconstructed per-worker lanes (view in Perfetto).
* :mod:`repro.obs.report` — pretty rendering and regression-gating
  diffs behind the ``repro report`` CLI family.

See ``docs/observability.md`` for the metrics catalog and workflows.
"""

from repro.obs.logging import (
    ListSink,
    NULL_LOGGER,
    StructuredLogger,
    human_sink,
    jsonl_sink,
    new_run_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.report import (
    ReportDiff,
    StageDelta,
    diff_reports,
    load_report,
    render_report,
)
from repro.obs.trace import report_to_trace, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "StructuredLogger",
    "ListSink",
    "NULL_LOGGER",
    "new_run_id",
    "jsonl_sink",
    "human_sink",
    "report_to_trace",
    "write_trace",
    "load_report",
    "render_report",
    "diff_reports",
    "ReportDiff",
    "StageDelta",
]
