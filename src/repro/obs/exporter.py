"""Embedded Prometheus scrape endpoint (dependency-free, stdlib only).

The third piece of the live-introspection layer: a
``http.server.ThreadingHTTPServer`` on a daemon thread that exposes the
process's :class:`~repro.obs.metrics.MetricsRegistry` while a solve is
running — this is the scrape surface a future ``repro.serve`` mounts
unchanged.  Endpoints:

``GET /metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``) of every
    registered family, via the registry's existing ``render()``.  With
    cross-process aggregation in the engine, the totals here include
    worker-side increments.
``GET /healthz``
    Liveness: ``200 ok``.
``GET /debug/profile?seconds=N``
    Runs an ad-hoc :class:`~repro.obs.profile.SamplingProfiler` for
    ``N`` seconds (default 2, capped at 60) and returns the
    collapsed-stack profile as text — flamegraph a live process with
    ``curl … | flamegraph.pl``.

Usage::

    from repro.obs.exporter import start_exporter
    exporter = start_exporter(port=9091)   # port=0 picks a free one
    print(exporter.url)                    # http://127.0.0.1:9091
    ...
    exporter.stop()

``repro solve --metrics-port N`` wires this around the CLI solve, and
:func:`maybe_start_from_env` lets benchmark drivers opt in via the
``REPRO_METRICS_PORT`` environment variable without any code changes.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["MetricsExporter", "start_exporter", "maybe_start_from_env"]

#: Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Upper bound on ad-hoc ``/debug/profile`` durations (seconds).
MAX_PROFILE_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one exporter (via server attributes)."""

    server_version = "repro-exporter/1.0"

    # The registry and scrape counter hang off the server object so one
    # handler class serves any number of exporters.

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTP API
        pass  # silent: scrape-per-second pollutes solver stderr

    def _respond(self, status: int, body: str, content_type: str = CONTENT_TYPE):
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 - BaseHTTP API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        registry: MetricsRegistry = self.server.registry
        if route == "/metrics":
            self.server.count_scrape("metrics")
            self._respond(200, registry.render())
        elif route == "/healthz":
            self.server.count_scrape("healthz")
            self._respond(200, "ok\n")
        elif route == "/debug/profile":
            self.server.count_scrape("profile")
            self._respond(200, self._profile(parsed.query))
        else:
            self._respond(404, f"no such endpoint: {route}\n")

    def _profile(self, query: str) -> str:
        from repro.obs.profile import SamplingProfiler

        params = parse_qs(query)
        try:
            seconds = float(params.get("seconds", ["2"])[0])
        except ValueError:
            seconds = 2.0
        seconds = min(max(seconds, 0.1), MAX_PROFILE_SECONDS)
        try:
            hz = float(params.get("hz", ["97"])[0])
        except ValueError:
            hz = 97.0
        profiler = SamplingProfiler(hz=min(max(hz, 1.0), 1000.0))
        profiler.start()
        threading.Event().wait(seconds)
        profiler.stop()
        return profiler.collapsed()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr, registry: MetricsRegistry):
        super().__init__(addr, _Handler)
        self.registry = registry
        self._scrapes = registry.counter(
            "repro_exporter_scrapes_total",
            "HTTP requests served by the embedded /metrics exporter.",
            labelnames=("endpoint",),
        )

    def count_scrape(self, endpoint: str) -> None:
        self._scrapes.inc(endpoint=endpoint)


class MetricsExporter:
    """A running scrape endpoint; create via :func:`start_exporter`."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry if registry is not None else get_registry()
        self._server = _Server((host, port), self.registry)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-exporter:{self.port}",
            daemon=True,
        )
        self._thread.start()
        # Exporter threads must die before the atexit pool shutdown and
        # spool sweep: a scrape (or /debug/profile) racing interpreter
        # teardown otherwise reads registries and stacks mid-demolition.
        from repro.core.pool import register_shutdown_hook

        self._hook_name = f"exporter:{id(self)}"
        register_shutdown_hook(self._hook_name, self.stop)

    @property
    def url(self) -> str:
        """Base URL of the running exporter."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread is None:
            return
        from repro.core.pool import unregister_shutdown_hook

        unregister_shutdown_hook(self._hook_name)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_exporter(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsExporter:
    """Start an exporter on ``host:port`` (``port=0`` = OS-assigned)."""
    return MetricsExporter(port=port, host=host, registry=registry)


def maybe_start_from_env(
    var: str = "REPRO_METRICS_PORT",
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MetricsExporter]:
    """Start an exporter if ``$REPRO_METRICS_PORT`` names a port.

    Lets benchmark drivers and soak runs become scrapeable with zero
    code: ``REPRO_METRICS_PORT=9091 python benchmarks/bench_e18….py``.
    Returns ``None`` (and stays silent) when the variable is unset or
    unparsable; raises ``OSError`` only if the port is actually taken.
    """
    import os

    raw = os.environ.get(var)
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        return None
    return start_exporter(port=port, registry=registry)
