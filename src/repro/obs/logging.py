"""Structured JSON-lines logging with per-run correlation ids.

Every engine run gets a :func:`new_run_id`; the id rides in
:class:`repro.core.engine.RunContext`, is stamped on every log record
the run emits, travels to process-pool workers with their job args and
comes back attached to their records — so one ``grep run_id`` over a
JSON-lines log reconstructs a run end-to-end even across processes.

Records are plain dicts (``ts``, ``level``, ``event``, ``run_id`` when
bound, plus free-form fields) fanned out to *sinks* — callables taking
the record.  Three stock sinks cover the CLI flags:

* :func:`jsonl_sink` — one JSON object per line to a stream or path
  (``repro solve --log-json PATH``).
* :func:`human_sink` — terse ``HH:MM:SS level event k=v`` lines
  (``repro solve --verbose``, written to stderr).
* :class:`ListSink` — in-memory capture for tests.
"""

from __future__ import annotations

import json
import sys
import time
import uuid
from typing import Callable, Dict, IO, List, Optional, Union

__all__ = [
    "LEVELS",
    "new_run_id",
    "StructuredLogger",
    "NULL_LOGGER",
    "ListSink",
    "jsonl_sink",
    "human_sink",
]

#: Recognised record levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")

Sink = Callable[[Dict[str, object]], None]


def new_run_id() -> str:
    """Fresh 12-hex-digit correlation id (unique per run, not per seed)."""
    return uuid.uuid4().hex[:12]


def jsonl_sink(target: Union[str, IO[str]]) -> Sink:
    """Sink writing one compact JSON object per record line.

    ``target`` may be an open text stream or a path (opened in append
    mode, line-buffered where the platform allows).
    """
    if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
        stream: IO[str] = open(target, "a", encoding="utf-8")
    else:
        stream = target

    def sink(record: Dict[str, object]) -> None:
        stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        stream.flush()

    return sink


def human_sink(stream: Optional[IO[str]] = None, min_level: str = "info") -> Sink:
    """Sink rendering terse human-readable lines (for ``--verbose``)."""
    out = stream if stream is not None else sys.stderr
    threshold = LEVELS.index(min_level)

    def sink(record: Dict[str, object]) -> None:
        level = str(record.get("level", "info"))
        if LEVELS.index(level) < threshold:
            return
        ts = time.strftime("%H:%M:%S", time.localtime(float(record.get("ts", 0.0))))
        fields = " ".join(
            f"{k}={record[k]}"
            for k in sorted(record)
            if k not in ("ts", "level", "event")
        )
        out.write(f"{ts} {level:<7s} {record.get('event')} {fields}".rstrip() + "\n")

    return sink


class ListSink:
    """Callable sink collecting records in memory (test helper)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def __call__(self, record: Dict[str, object]) -> None:
        self.records.append(record)


class StructuredLogger:
    """Fan-out structured logger with bound fields.

    Parameters
    ----------
    sinks:
        Callables receiving each record dict (see module docstring).
    run_id:
        Correlation id stamped on every record (``None`` = unbound; the
        engine binds one per run via :meth:`bind`).
    min_level:
        Records below this level are dropped before reaching any sink.
    """

    def __init__(
        self,
        sinks: Optional[List[Sink]] = None,
        run_id: Optional[str] = None,
        min_level: str = "debug",
        **bound: object,
    ):
        if min_level not in LEVELS:
            raise ValueError(f"unknown level {min_level!r}; choose from {LEVELS}")
        self.sinks: List[Sink] = list(sinks or [])
        self.run_id = run_id
        self.min_level = min_level
        self.bound = dict(bound)

    @property
    def enabled(self) -> bool:
        """Whether any sink is attached (guards hot-path field building)."""
        return bool(self.sinks)

    def bind(self, run_id: Optional[str] = None, **fields: object) -> "StructuredLogger":
        """Child logger sharing sinks, with extra bound fields / run id."""
        merged = dict(self.bound)
        merged.update(fields)
        return StructuredLogger(
            sinks=self.sinks,
            run_id=run_id if run_id is not None else self.run_id,
            min_level=self.min_level,
            **merged,
        )

    def log(self, event: str, level: str = "info", **fields: object) -> None:
        """Emit one record to every sink (no-op without sinks)."""
        if not self.sinks:
            return
        if LEVELS.index(level) < LEVELS.index(self.min_level):
            return
        record: Dict[str, object] = {"ts": time.time(), "level": level, "event": event}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        record.update(self.bound)
        record.update(fields)
        self.emit(record)

    def emit(self, record: Dict[str, object]) -> None:
        """Forward an already-built record verbatim (worker replay path)."""
        for sink in self.sinks:
            sink(record)

    def debug(self, event: str, **fields: object) -> None:
        """Emit at ``debug`` level."""
        self.log(event, level="debug", **fields)

    def info(self, event: str, **fields: object) -> None:
        """Emit at ``info`` level."""
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: object) -> None:
        """Emit at ``warning`` level."""
        self.log(event, level="warning", **fields)


#: Shared sink-less logger: every call is a cheap no-op.
NULL_LOGGER = StructuredLogger()
