"""Process-local metrics registry with Prometheus text exposition.

Three metric kinds, all thread-safe and dependency-free:

* :class:`Counter` — monotonically increasing totals (DP solves, flow
  calls, online arrivals/migrations, …).
* :class:`Gauge` — last-written values (live task count, loads).
* :class:`Histogram` — bounded cumulative-bucket distributions for
  latencies and size counters (``reoptimize()`` seconds, DP states per
  solve).  Bucket edges are fixed at registration; observations above
  the last edge land in the implicit ``+Inf`` bucket.

All families support Prometheus-style labels: ``family.labels(k=v)``
returns (find-or-create) the child series for that label combination.
:meth:`MetricsRegistry.render` emits the classic text exposition format
(``# HELP`` / ``# TYPE`` / sample lines), suitable for a ``/metrics``
endpoint or for dumping next to a run report.

The library instruments its hot paths against the default registry
(:func:`get_registry`): the signature DP, the flow substrate and the
online placer all publish here.  Metrics are *process-local*, but the
registry supports **cross-process aggregation**: a pool worker calls
:meth:`MetricsRegistry.snapshot` before and after a job, computes the
picklable per-job delta with :func:`snapshot_delta`, ships it back with
the job result, and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot` — counters sum, gauges are
last-write-wins, histograms add bucket-wise.  The engine does exactly
this for ensemble members solved in pool workers, so ``repro_dp_*`` /
``repro_flow_*`` totals in the parent registry are accurate for
parallel runs too.  Merging can optionally tag the merged series with a
``process`` label (the worker pid) to keep per-worker series apart.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "snapshot_delta",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]

#: Default bucket edges for latency histograms (seconds, exponential).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket edges for size/count histograms (powers of four).
DEFAULT_SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Default bucket edges for byte-sized histograms (4 KiB .. 1 GiB).
DEFAULT_BYTE_BUCKETS = (
    4096, 16384, 65536, 262144, 1048576, 4194304,
    16777216, 67108864, 268435456, 1073741824,
)


def _format_value(v: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Family:
    """Base class: one named metric family with labelled child series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def labels(self, **labelvalues: str):
        """Find-or-create the child series for this label combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple((k, str(labelvalues[k])) for k in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self):
        """The unlabelled series (only valid when the family has no labels)."""
        if self.labelnames:
            raise ValueError(f"{self.name}: labelled family needs .labels(...)")
        return self.labels()

    def _child_for_key(self, key: Tuple[Tuple[str, str], ...]):
        """Find-or-create a child by raw label-key tuple.

        Unlike :meth:`labels` this does **not** validate the key against
        ``labelnames`` — it is the merge path's backdoor that lets
        :meth:`MetricsRegistry.merge_snapshot` append a ``process``
        label to series shipped back from pool workers without
        re-registering every family with an extra label name.
        """
        key = tuple((str(k), str(v)) for k, v in key)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> List[str]:
        """Prometheus text-format lines for this family."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, child in self._series():
            lines.extend(self._render_child(key, child))
        return lines

    def _render_child(self, key, child) -> List[str]:  # pragma: no cover
        raise NotImplementedError


class _CounterValue:
    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += float(amount)


class Counter(_Family):
    """Monotonically increasing total (optionally labelled)."""

    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0, **labelvalues: str) -> None:
        """Increment the (labelled) series by ``amount`` (must be >= 0)."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        child.inc(amount)

    def value(self, **labelvalues: str) -> float:
        """Current total of the (labelled) series."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        return child.value

    def _render_child(self, key, child) -> List[str]:
        return [f"{self.name}{_format_labels(key)} {_format_value(child.value)}"]


class _GaugeValue:
    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += float(amount)


class Gauge(_Family):
    """Last-written value (can go up and down)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float, **labelvalues: str) -> None:
        """Set the (labelled) series to ``value``."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        child.set(value)

    def inc(self, amount: float = 1.0, **labelvalues: str) -> None:
        """Add ``amount`` (may be negative) to the (labelled) series."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        child.inc(amount)

    def value(self, **labelvalues: str) -> float:
        """Current value of the (labelled) series."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        return child.value

    def _render_child(self, key, child) -> List[str]:
        return [f"{self.name}{_format_labels(key)} {_format_value(child.value)}"]


class _HistogramValue:
    __slots__ = ("_lock", "edges", "bucket_counts", "sum", "count")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        from bisect import bisect_left

        idx = bisect_left(self.edges, value)
        with self._lock:
            self.bucket_counts[idx] += 1
            self.sum += float(value)
            self.count += 1

    def cumulative(self) -> List[int]:
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def add_counts(self, bucket_counts: Sequence[int], sum: float, count: int) -> None:
        """Fold another series' raw buckets into this one (merge path)."""
        if len(bucket_counts) != len(self.bucket_counts):
            raise ValueError(
                f"bucket mismatch: {len(bucket_counts)} vs {len(self.bucket_counts)}"
            )
        with self._lock:
            for i, c in enumerate(bucket_counts):
                self.bucket_counts[i] += int(c)
            self.sum += float(sum)
            self.count += int(count)


class Histogram(_Family):
    """Bounded cumulative-bucket distribution (Prometheus semantics).

    ``buckets`` are the finite upper edges; an observation lands in the
    first bucket whose edge is >= the value (``le`` semantics), with an
    implicit ``+Inf`` bucket catching the overflow.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"{name}: need at least one bucket edge")
        if len(set(edges)) != len(edges):
            raise ValueError(f"{name}: duplicate bucket edges {edges}")
        self.buckets = edges

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float, **labelvalues: str) -> None:
        """Record one observation in the (labelled) series."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        child.observe(value)

    def snapshot(self, **labelvalues: str) -> Dict[str, object]:
        """Dict view: per-edge cumulative counts plus sum/count."""
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        cum = child.cumulative()
        return {
            "buckets": {
                **{edge: cum[i] for i, edge in enumerate(self.buckets)},
                float("inf"): cum[-1],
            },
            "sum": child.sum,
            "count": child.count,
        }

    def quantile(self, q: float, **labelvalues: str) -> float:
        """Estimate the ``q``-quantile (0..1) of the (labelled) series.

        Classic bucketed estimator: find the bucket holding the target
        rank, then interpolate linearly within its edges.  The first
        bucket interpolates from 0.0; ranks landing in the implicit
        ``+Inf`` overflow bucket clamp to the last finite edge (there is
        no upper bound to interpolate toward).  Returns ``nan`` when the
        series has no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        child = self.labels(**labelvalues) if labelvalues else self._default_child()
        cum = child.cumulative()
        total = cum[-1]
        if total == 0:
            return float("nan")
        rank = q * total
        for i, edge in enumerate(self.buckets):
            if cum[i] >= rank:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                below = 0 if i == 0 else cum[i - 1]
                in_bucket = cum[i] - below
                if in_bucket == 0:  # pragma: no cover - cum[i] >= rank > below
                    return float(edge)
                frac = (rank - below) / in_bucket
                return float(lo + (edge - lo) * min(max(frac, 0.0), 1.0))
        return float(self.buckets[-1])

    def _render_child(self, key, child) -> List[str]:
        lines = []
        cum = child.cumulative()
        for i, edge in enumerate(self.buckets):
            labels = key + (("le", _format_value(edge)),)
            lines.append(f"{self.name}_bucket{_format_labels(labels)} {cum[i]}")
        labels = key + (("le", "+Inf"),)
        lines.append(f"{self.name}_bucket{_format_labels(labels)} {cum[-1]}")
        lines.append(f"{self.name}_sum{_format_labels(key)} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{_format_labels(key)} {child.count}")
        return lines


class MetricsRegistry:
    """Named collection of metric families with text exposition.

    Registration is idempotent: asking for an existing name returns the
    existing family (so instrumented modules can declare their metrics
    at call sites without import-order coupling); re-registering under a
    different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        #: Bumped by :meth:`reset` so modules that hoist family handles
        #: out of their hot paths can cheaply detect stale caches.
        self.generation = 0

    def _register(self, cls, name: str, help: str, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = cls(name, help, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Find-or-create the counter family ``name``."""
        return self._register(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Find-or-create the gauge family ``name``."""
        return self._register(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Find-or-create the histogram family ``name``."""
        return self._register(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Family]:
        """The family called ``name`` (``None`` if never registered)."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def render(self) -> str:
        """Prometheus text exposition of every family."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every family (tests; never called by library code)."""
        with self._lock:
            self._families.clear()
            self.generation += 1

    def snapshot(self) -> Dict[str, object]:
        """Picklable point-in-time dump of every family and series.

        The format is plain lists/dicts/floats so it survives both
        pickling across the pool boundary and a round-trip through JSON
        (label keys become lists of ``[name, value]`` pairs)::

            {"pid": 1234, "families": [
                {"name": ..., "kind": "counter"|"gauge"|"histogram",
                 "help": ..., "labelnames": [...],
                 "buckets": [...],            # histograms only
                 "series": [[[["k","v"], ...], value_or_hist_dict], ...]},
            ]}

        Counter/gauge series carry a float; histogram series carry
        ``{"bucket_counts": [...], "sum": ..., "count": ...}`` (raw
        per-bucket counts, *not* cumulative).
        """
        fams: List[Dict[str, object]] = []
        for family in self.families():
            entry: Dict[str, object] = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            series = []
            for key, child in family._series():
                if isinstance(family, Histogram):
                    value: object = {
                        "bucket_counts": list(child.bucket_counts),
                        "sum": float(child.sum),
                        "count": int(child.count),
                    }
                else:
                    value = float(child.value)
                series.append([[list(kv) for kv in key], value])
            entry["series"] = series
            fams.append(entry)
        return {"pid": os.getpid(), "families": fams}

    def merge_snapshot(
        self, delta: Dict[str, object], process: Optional[str] = None
    ) -> int:
        """Fold a snapshot/delta (from another process) into this registry.

        Counters sum, gauges are last-write-wins, histograms add
        bucket-wise.  Families and series absent here are created on the
        fly with the shipped help/labelnames/buckets.  When ``process``
        is given, every merged series additionally carries a
        ``process="<value>"`` label, keeping per-worker series apart
        (aggregate by summing over the label, as Prometheus would).

        Histogram series whose bucket layout disagrees with the
        registered family are skipped — merging them would corrupt the
        distribution.  Returns the number of series merged.
        """
        merged = 0
        for entry in delta.get("families", ()):
            name = str(entry["name"])
            kind = entry.get("kind", "untyped")
            help_ = str(entry.get("help", ""))
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "counter":
                family: _Family = self.counter(name, help_, labelnames=labelnames)
            elif kind == "gauge":
                family = self.gauge(name, help_, labelnames=labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    name,
                    help_,
                    labelnames=labelnames,
                    buckets=entry.get("buckets", DEFAULT_LATENCY_BUCKETS),
                )
            else:
                continue
            for raw_key, value in entry.get("series", ()):
                key = tuple((str(k), str(v)) for k, v in raw_key)
                if process is not None:
                    key = key + (("process", str(process)),)
                if isinstance(family, Histogram):
                    counts = list(value.get("bucket_counts", ()))
                    if len(counts) != len(family.buckets) + 1:
                        continue
                    child = family._child_for_key(key)
                    child.add_counts(counts, value.get("sum", 0.0),
                                     value.get("count", 0))
                elif isinstance(family, Counter):
                    family._child_for_key(key).inc(float(value))
                else:
                    family._child_for_key(key).set(float(value))
                merged += 1
        return merged


def snapshot_delta(
    current: Dict[str, object], base: Dict[str, object]
) -> Dict[str, object]:
    """The picklable difference ``current - base`` of two snapshots.

    This is what a pool worker ships home: counters become the amount
    added since ``base``, histograms the per-bucket observations added,
    and gauges travel only if their value changed (last-write
    semantics — the delta carries the *new* value, not a difference).
    Series and families with no activity are dropped, so the common
    case (a member solve touching a handful of DP/flow series) is a
    small dict.
    """

    def _index(snap: Dict[str, object]) -> Dict[str, Dict[tuple, object]]:
        out: Dict[str, Dict[tuple, object]] = {}
        for entry in snap.get("families", ()):
            series = {
                tuple((str(k), str(v)) for k, v in raw_key): value
                for raw_key, value in entry.get("series", ())
            }
            out[str(entry["name"])] = series
        return out

    base_idx = _index(base)
    fams: List[Dict[str, object]] = []
    for entry in current.get("families", ()):
        name = str(entry["name"])
        kind = entry.get("kind", "untyped")
        old = base_idx.get(name, {})
        series = []
        for raw_key, value in entry.get("series", ()):
            key = tuple((str(k), str(v)) for k, v in raw_key)
            prev = old.get(key)
            if kind == "counter":
                diff = float(value) - (float(prev) if prev is not None else 0.0)
                if diff > 0:
                    series.append([[list(kv) for kv in key], diff])
            elif kind == "gauge":
                if prev is None or float(prev) != float(value):
                    series.append([[list(kv) for kv in key], float(value)])
            elif kind == "histogram":
                pc = prev or {"bucket_counts": (), "sum": 0.0, "count": 0}
                old_counts = list(pc.get("bucket_counts", ()))
                new_counts = list(value.get("bucket_counts", ()))
                if len(old_counts) != len(new_counts):
                    old_counts = [0] * len(new_counts)
                dcounts = [n - o for n, o in zip(new_counts, old_counts)]
                dcount = int(value.get("count", 0)) - int(pc.get("count", 0))
                if dcount > 0 or any(dcounts):
                    series.append([
                        [list(kv) for kv in key],
                        {
                            "bucket_counts": dcounts,
                            "sum": float(value.get("sum", 0.0))
                            - float(pc.get("sum", 0.0)),
                            "count": dcount,
                        },
                    ])
        if series:
            fams.append({
                "name": name,
                "kind": kind,
                "help": entry.get("help", ""),
                "labelnames": list(entry.get("labelnames", ())),
                **({"buckets": list(entry["buckets"])} if "buckets" in entry else {}),
                "series": series,
            })
    return {"pid": current.get("pid"), "families": fams}


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the library instruments against."""
    return _DEFAULT_REGISTRY
