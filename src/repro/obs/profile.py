"""Continuous sampling profiler with telemetry-span attribution.

The flight-recorder half of the live-introspection layer: a daemon
thread walks ``sys._current_frames()`` at a configurable rate (default
97 Hz — prime, so it does not phase-lock with periodic work) and counts
``(active span, call stack)`` pairs.  Attribution comes from
:func:`repro.core.telemetry.active_spans`: whatever telemetry span the
sampled thread is inside becomes a synthetic root frame
(``span:dp;repro.hgpt.dp.solve;…``), so flamegraphs separate the DP
from flow from coarsening without any code changes in the hot paths.

Everything is stdlib: no py-spy, no perf, no signals — safe to leave on
in production at single-digit-percent overhead (the sampler sleeps
``1/hz`` between passes and each pass is a few dict operations per live
thread).

Three public pieces:

* :class:`ProfileConfig` — the knobs, embedded in
  :class:`repro.core.config.SolverConfig` and steered by
  ``repro solve --profile/--profile-hz/--profile-mem``.
* :class:`SamplingProfiler` — start/stop flight recorder with
  collapsed-stack (flamegraph-compatible) and JSON summaries.  Also
  used ad hoc by the ``/debug/profile?seconds=N`` exporter endpoint.
* :class:`StageResourceMonitor` — a telemetry span observer recording
  per-stage RSS / CPU-time deltas and (opt-in) ``tracemalloc``
  allocation deltas.

:class:`ProfileSession` bundles the two around one engine run and
produces the ``profile`` payload of ``RunReport`` schema v3.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter as _TallyCounter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.telemetry import Telemetry, active_spans
from repro.errors import InvalidInputError

__all__ = [
    "ProfileConfig",
    "SamplingProfiler",
    "StageResourceMonitor",
    "ProfileSession",
    "rss_bytes",
]

#: Frames deeper than this are truncated (keeps pathological recursion
#: from bloating sample keys; flamegraphs past 128 frames are unreadable
#: anyway).
_MAX_STACK_DEPTH = 128

#: Collapsed-stack lines kept inside run reports (the full set still
#: goes to ``--profile PATH``); reports should stay human-sized.
_REPORT_COLLAPSED_LINES = 200


@dataclass(frozen=True)
class ProfileConfig:
    """Knobs of the continuous profiler (``repro solve --profile``).

    Attributes
    ----------
    enabled:
        Run the sampling profiler + stage resource monitor around the
        solve and stamp the results into the run report (schema v3).
    hz:
        Sampling rate.  The default 97 Hz is prime (avoids phase-locking
        with periodic work) and keeps overhead well under 5%.
    memory:
        Also track per-stage ``tracemalloc`` allocation deltas.  Adds
        noticeable overhead (tracemalloc instruments every allocation) —
        off by default.
    path:
        Write the full collapsed-stack profile to this file after the
        run (flamegraph.pl / speedscope / inferno compatible).  ``None``
        keeps the (truncated) collapsed stacks in the report only.
    """

    enabled: bool = False
    hz: float = 97.0
    memory: bool = False
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0.1 <= self.hz <= 10_000):
            raise InvalidInputError(
                f"profile hz must be in [0.1, 10000], got {self.hz}"
            )


def rss_bytes() -> int:
    """Current resident-set size in bytes (0 when unavailable).

    Reads ``/proc/self/statm`` on Linux; falls back to
    ``resource.getrusage`` (peak, not current — close enough for stage
    deltas) elsewhere.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        ru = resource.getrusage(resource.RUSAGE_SELF)
        scale = 1024 if sys.platform != "darwin" else 1
        return int(ru.ru_maxrss) * scale
    except Exception:
        return 0


#: ``(module-prefix, function)`` pairs whose innermost frame marks a
#: thread as parked off-CPU (condition waits, selector polls, queue
#: gets).  Unattributed threads parked here are skipped: a warm process
#: pool keeps executor-manager and queue-feeder threads alive between
#: runs, and tallying their permanent waits would drown the actual
#: solve in ``-`` samples.
_IDLE_WAITS = frozenset(
    {
        ("threading", "wait"),
        ("threading", "_wait_for_tstate_lock"),
        ("selectors", "select"),
        ("selectors", "poll"),
        ("queue", "get"),
        ("multiprocessing.connection", "wait"),
        ("multiprocessing.connection", "poll"),
        ("multiprocessing.connection", "_poll"),
        ("socketserver", "serve_forever"),
    }
)


def _is_idle_wait(frame) -> bool:
    """True when ``frame`` (a thread's innermost frame) is an idle park."""
    module = frame.f_globals.get("__name__", "")
    return (module, frame.f_code.co_name) in _IDLE_WAITS


def _frame_label(frame) -> str:
    """``module.function`` label for one stack frame (no spaces)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if not module:
        module = os.path.basename(code.co_filename)
    return f"{module}.{code.co_name}".replace(" ", "_").replace(";", ",")


class SamplingProfiler:
    """Stdlib sampling flight-recorder over ``sys._current_frames``.

    Samples every live thread (except the sampler itself) at ``hz`` and
    tallies ``(span, stack)`` pairs, where ``span`` is the innermost
    open telemetry span of the sampled thread (``-`` when it is not
    inside one).  Unattributed threads parked in an idle wait (executor
    manager/feeder threads of a warm process pool, mostly) are skipped
    so they cannot drown the solve in permanent ``-`` samples; a thread
    inside a span is always tallied, blocked or not, matching wall-clock
    span accounting.  Start/stop are idempotent; the sampler thread is a
    daemon, so a crashed run never hangs on it.
    """

    def __init__(self, hz: float = 97.0):
        if hz <= 0:
            raise InvalidInputError(f"hz must be > 0, got {hz}")
        self.hz = float(hz)
        self._samples: _TallyCounter = _TallyCounter()
        self._span_samples: _TallyCounter = _TallyCounter()
        self._ticks = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._wall_seconds = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Launch the sampler thread (no-op when already running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        with self._lock:
            empty = not self._samples
        if empty:
            # The run finished inside one sampling period (a fully warm
            # cache can do that), so no tick caught a busy thread.  Take
            # one forced sample of the stopping thread so a profiled run
            # always yields a non-empty collapsed profile.
            self._sample_once(-1, force=True)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampler loop ---------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        next_at = time.perf_counter() + interval
        while not self._stop.is_set():
            self._sample_once(me)
            delay = next_at - time.perf_counter()
            next_at += interval
            if delay > 0:
                self._stop.wait(delay)
            else:
                # We are behind schedule (GIL contention, slow pass);
                # resynchronise instead of busy-spinning to catch up.
                next_at = time.perf_counter() + interval

    def _sample_once(self, sampler_ident: int, force: bool = False) -> None:
        frames = sys._current_frames()
        spans = active_spans()
        # Our own observability threads (this sampler, exporter accept
        # loops) would otherwise dominate idle profiles with
        # selector-wait stacks; skip anything named "repro-…".
        infra = {
            t.ident
            for t in threading.enumerate()
            if t.name.startswith("repro-") and t.ident is not None
        }
        tallies: List[Tuple[Tuple[str, Tuple[str, ...]], int]] = []
        for ident, frame in frames.items():
            if ident == sampler_ident or ident in infra:
                continue
            span = spans.get(ident)
            if span is None and _is_idle_wait(frame) and not force:
                continue
            stack: List[str] = []
            f = frame
            while f is not None and len(stack) < _MAX_STACK_DEPTH:
                stack.append(_frame_label(f))
                f = f.f_back
            stack.reverse()
            tallies.append(((span or "-", tuple(stack)), 1))
        with self._lock:
            self._ticks += 1
            for key, n in tallies:
                self._samples[key] += n
                self._span_samples[key[0]] += n

    # -- results ------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Total (thread × tick) samples collected so far."""
        with self._lock:
            return sum(self._samples.values())

    def collapsed(self, limit: Optional[int] = None) -> str:
        """Collapsed-stack text: ``span:X;mod.f;mod.g count`` per line.

        Directly consumable by flamegraph.pl, inferno and speedscope.
        Lines are ordered by descending count; ``limit`` truncates.
        """
        with self._lock:
            items = self._samples.most_common(limit)
        lines = []
        for (span, stack), count in items:
            frames = ";".join((f"span:{span}",) + stack)
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def span_shares(self) -> Dict[str, float]:
        """Fraction of samples attributed to each span (sums to 1)."""
        with self._lock:
            total = sum(self._span_samples.values())
            if not total:
                return {}
            return {
                span: count / total
                for span, count in sorted(self._span_samples.items())
            }

    def summary(self) -> dict:
        """JSON-ready summary: rates, per-span sample counts, hot frames."""
        elapsed = self._wall_seconds
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        with self._lock:
            span_samples = dict(sorted(self._span_samples.items()))
            total = sum(self._samples.values())
            hot: _TallyCounter = _TallyCounter()
            for (span, stack), count in self._samples.items():
                if stack:
                    hot[stack[-1]] += count
        return {
            "hz": self.hz,
            "ticks": self._ticks,
            "samples": total,
            "duration_seconds": elapsed,
            "span_samples": span_samples,
            # Lists, not tuples, so the payload is identical before and
            # after a JSON round-trip through a persisted run report.
            "top_frames": [[f, c] for f, c in hot.most_common(25)],
        }


class StageResourceMonitor:
    """Telemetry span observer: per-stage RSS / CPU / allocation deltas.

    Attach to a :class:`~repro.core.telemetry.Telemetry` and every span
    entered afterwards accumulates, per span name, the wall/CPU seconds
    spent inside it and how much the process RSS moved across it.  With
    ``memory=True`` a ``tracemalloc`` trace is started (if not already
    running) and per-stage current/peak allocation deltas are recorded
    too.

    Nested spans are handled per-thread: enter/exit pairs push and pop a
    thread-local bracket stack, so ``dp`` inside ``coarse_solve`` is
    charged to both, exactly like wall-clock span accounting.
    """

    def __init__(self, memory: bool = False):
        self.memory = bool(memory)
        self.stages: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self._brackets: Dict[int, List[tuple]] = {}
        self._we_started_tracemalloc = False
        self._telemetry: Optional[Telemetry] = None

    def attach(self, telemetry: Telemetry) -> "StageResourceMonitor":
        """Start observing ``telemetry`` (and tracemalloc when asked)."""
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._we_started_tracemalloc = True
        self._telemetry = telemetry
        telemetry.add_span_observer(self._on_span)
        return self

    def detach(self) -> None:
        """Stop observing; stop tracemalloc if this monitor started it."""
        if self._telemetry is not None:
            self._telemetry.remove_span_observer(self._on_span)
            self._telemetry = None
        if self._we_started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._we_started_tracemalloc = False

    def _traced(self) -> Tuple[int, int]:
        if not self.memory:
            return (0, 0)
        import tracemalloc

        if not tracemalloc.is_tracing():
            return (0, 0)
        return tracemalloc.get_traced_memory()

    def _on_span(self, event: str, name: str, seconds: float) -> None:
        ident = threading.get_ident()
        if event == "enter":
            cur, _peak = self._traced()
            self._brackets.setdefault(ident, []).append(
                (name, rss_bytes(), time.process_time(), cur)
            )
            return
        stack = self._brackets.get(ident)
        if not stack or stack[-1][0] != name:
            return  # unbalanced (observer attached mid-span); skip
        _name, rss0, cpu0, mem0 = stack.pop()
        if not stack:
            self._brackets.pop(ident, None)
        rss1 = rss_bytes()
        cur, peak = self._traced()
        with self._lock:
            st = self.stages.setdefault(
                name,
                {
                    "count": 0,
                    "wall_seconds": 0.0,
                    "cpu_seconds": 0.0,
                    "rss_delta_bytes": 0,
                    "rss_end_bytes": 0,
                },
            )
            st["count"] += 1
            st["wall_seconds"] += float(seconds)
            st["cpu_seconds"] += time.process_time() - cpu0
            st["rss_delta_bytes"] += rss1 - rss0
            st["rss_end_bytes"] = rss1
            if self.memory:
                st["alloc_delta_bytes"] = (
                    st.get("alloc_delta_bytes", 0) + (cur - mem0)
                )
                st["alloc_peak_bytes"] = max(st.get("alloc_peak_bytes", 0), peak)

    def results(self) -> Dict[str, dict]:
        """Accumulated per-stage resource deltas (stable key order)."""
        with self._lock:
            return {k: dict(v) for k, v in sorted(self.stages.items())}


class ProfileSession:
    """One profiled solve: sampler + stage monitor, producing report v3.

    Usage (what :func:`repro.core.engine.run_pipeline` does)::

        session = ProfileSession(config.profile, telemetry)
        session.start()
        try:
            ...  # the solve
        finally:
            telemetry.profile = session.finish()

    :meth:`finish` stops everything, writes the full collapsed profile
    to ``config.path`` when set, and returns the JSON-ready ``profile``
    payload (sampler summary, truncated collapsed stacks, per-stage
    resources).
    """

    def __init__(self, config: ProfileConfig, telemetry: Telemetry):
        self.config = config
        self.profiler = SamplingProfiler(hz=config.hz)
        self.monitor = StageResourceMonitor(memory=config.memory)
        self._telemetry = telemetry
        self._started = False

    def start(self) -> "ProfileSession":
        """Attach the stage monitor and launch the sampler."""
        if self._started:
            return self
        self.monitor.attach(self._telemetry)
        self.profiler.start()
        self._started = True
        return self

    def finish(self) -> dict:
        """Stop profiling and assemble the report-v3 ``profile`` dict."""
        self.profiler.stop()
        self.monitor.detach()
        self._started = False
        summary = self.profiler.summary()
        collapsed_full = self.profiler.collapsed()
        if self.config.path:
            with open(self.config.path, "w") as fh:
                fh.write(collapsed_full)
        collapsed_lines = collapsed_full.splitlines()
        truncated = len(collapsed_lines) > _REPORT_COLLAPSED_LINES
        payload = {
            **summary,
            "span_shares": self.profiler.span_shares(),
            "collapsed": collapsed_lines[:_REPORT_COLLAPSED_LINES],
            "collapsed_truncated": truncated,
            "memory": self.config.memory,
            "stages": self.monitor.results(),
        }
        if self.config.path:
            payload["collapsed_path"] = str(self.config.path)
        return payload

    def __enter__(self) -> "ProfileSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._started:
            self._telemetry.profile = self.finish()
