"""Run-report analysis: pretty rendering and regression-gating diffs.

The ``repro report`` CLI family is a thin wrapper over two functions:

* :func:`render_report` — human-readable view of one report: the span
  tree with total/self seconds (self time via
  :meth:`repro.core.telemetry.Span.total_child_seconds`), span counters,
  and a per-member summary table.
* :func:`diff_reports` — structured comparison of two reports: cost
  delta plus per-stage (root-child span) time deltas, with
  :meth:`ReportDiff.regressions` implementing the ``--fail-above PCT``
  gate the CLI and ``tools/bench_regress.py`` exit on.

Percentage deltas are relative to the *baseline* (first) report; a
stage absent from the baseline but present in the fresh report counts
as a regression at any threshold (new time appeared from nowhere),
while a stage that disappeared is reported but never gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.core.telemetry import RunReport, Span

__all__ = [
    "load_report",
    "render_report",
    "StageDelta",
    "ReportDiff",
    "diff_reports",
]

#: A stage absent from the baseline gates only when its fresh time
#: exceeds this floor — zero-duration skeleton stages must not trip it.
MIN_NEW_STAGE_SECONDS = 1e-6


def load_report(path: Union[str, Path]) -> RunReport:
    """Read a run report from a JSON file."""
    return RunReport.from_json(Path(path).read_text())


def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    self_seconds = max(0.0, span.seconds - span.total_child_seconds())
    counters = ""
    if span.counters:
        counters = "  [" + ", ".join(
            f"{k}={v:g}" for k, v in sorted(span.counters.items())
        ) + "]"
    lines.append(
        f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}s} "
        f"{span.seconds * 1e3:9.2f} ms  self {self_seconds * 1e3:9.2f} ms  "
        f"({span.count}x){counters}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def _member_latency_line(report: RunReport) -> str:
    """p50/p99 member solve latency via the bucketed histogram estimator.

    The member dp+repair seconds are folded into a
    :class:`repro.obs.metrics.Histogram` with the default latency
    buckets and read back through :meth:`Histogram.quantile` — the same
    estimator a Prometheus ``histogram_quantile`` would apply to the
    live ``repro_dp_seconds`` series, so report numbers and dashboards
    agree about what "p99" means.
    """
    from repro.obs.metrics import Histogram

    hist = Histogram("member_seconds")
    for m in report.members:
        hist.observe(m.dp_seconds + m.repair_seconds)
    p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
    return f"latency (dp+repair): p50 {p50 * 1e3:.1f} ms  p99 {p99 * 1e3:.1f} ms"


def _render_profile(profile: dict, lines: List[str]) -> None:
    """Append the profile section (schema-v3 reports) to ``lines``."""
    lines.append("")
    lines.append(
        f"profile: {profile.get('samples', 0)} samples @ "
        f"{profile.get('hz', 0):g} Hz over "
        f"{profile.get('duration_seconds', 0.0):.2f} s"
    )
    shares = profile.get("span_shares") or {}
    if shares:
        ranked = sorted(shares.items(), key=lambda kv: -kv[1])
        lines.append(
            "  span shares: "
            + "  ".join(f"{name} {share:.0%}" for name, share in ranked)
        )
    stages = profile.get("stages") or {}
    for name, st in stages.items():
        extra = ""
        if "alloc_peak_bytes" in st:
            extra = f"  alloc_peak {st['alloc_peak_bytes'] / 1e6:.1f} MB"
        lines.append(
            f"  {name:<12s} cpu {st.get('cpu_seconds', 0.0) * 1e3:8.1f} ms  "
            f"rss {st.get('rss_delta_bytes', 0) / 1e6:+7.1f} MB{extra}"
        )


def render_report(report: RunReport) -> str:
    """Pretty multi-line rendering of one run report."""
    lines: List[str] = []
    header = f"run report: path={report.path}"
    if report.cost is not None:
        header += f"  cost={report.cost:.6g}"
    run_id = report.meta.get("run_id")
    if run_id:
        header += f"  run_id={run_id}"
    if report.degraded:
        header += "  DEGRADED"
    lines.append(header)
    lines.append("")
    lines.append("spans (total / self / entries):")
    _render_span(report.spans, 1, lines)
    if report.members:
        lines.append("")
        lines.append(
            f"members ({len(report.members)}): "
            "index  method        dp_cost  mapped_cost  dp_ms  repair_ms  "
            "states_max  escalations"
        )
        for m in report.members:
            lines.append(
                f"  {m.index:>5d}  {str(m.method):<12s}  {m.dp_cost:8.4g}  "
                f"{m.mapped_cost:10.4g}  {m.dp_seconds * 1e3:6.1f}  "
                f"{m.repair_seconds * 1e3:8.1f}  {m.dp_states_max:>10d}  "
                f"{m.beam_escalations:>11d}"
            )
        best = min(report.members, key=lambda m: m.mapped_cost)
        lines.append(f"  winner: member {best.index} ({best.method})")
        lines.append("  " + _member_latency_line(report))
    if report.failures:
        lines.append("")
        lines.append(
            f"failed members ({len(report.failures)}): "
            "index  kind     attempts  message"
        )
        for f in report.failures:
            lines.append(
                f"  {f.index:>5d}  {f.kind:<7s}  {f.attempts:>8d}  "
                f"{f.message or '-'}"
            )
    if report.profile:
        _render_profile(report.profile, lines)
    extra_meta = {k: v for k, v in sorted(report.meta.items()) if k != "run_id"}
    if extra_meta:
        lines.append("")
        lines.append("meta: " + json.dumps(extra_meta, sort_keys=True, default=str))
    return "\n".join(lines)


@dataclass
class StageDelta:
    """One stage's time comparison between baseline and fresh reports."""

    name: str
    baseline_seconds: Optional[float]
    fresh_seconds: Optional[float]

    @property
    def delta_pct(self) -> Optional[float]:
        """Relative change in percent (``None`` when undefined).

        Undefined when the stage is missing on either side or the
        baseline is zero seconds.
        """
        if self.baseline_seconds is None or self.fresh_seconds is None:
            return None
        if self.baseline_seconds <= 0.0:
            return None
        return (
            (self.fresh_seconds - self.baseline_seconds)
            / self.baseline_seconds
            * 100.0
        )

    def exceeds(self, threshold_pct: float) -> bool:
        """Whether this stage gates at ``threshold_pct`` percent."""
        if self.baseline_seconds is None and self.fresh_seconds is not None:
            return self.fresh_seconds > MIN_NEW_STAGE_SECONDS
        pct = self.delta_pct
        if pct is None:
            return False
        return pct > threshold_pct


@dataclass
class ReportDiff:
    """Structured two-report comparison (cost + per-stage times)."""

    baseline_cost: Optional[float]
    fresh_cost: Optional[float]
    stages: List[StageDelta] = field(default_factory=list)

    @property
    def cost_delta_pct(self) -> Optional[float]:
        """Relative cost change in percent (``None`` when undefined)."""
        if self.baseline_cost is None or self.fresh_cost is None:
            return None
        if self.baseline_cost == 0.0:
            return None
        return (self.fresh_cost - self.baseline_cost) / abs(self.baseline_cost) * 100.0

    def regressions(self, threshold_pct: float) -> List[str]:
        """Names of gated dimensions exceeding ``threshold_pct`` percent.

        Cost regressions gate on *any* increase beyond the threshold;
        stage times gate via :meth:`StageDelta.exceeds`.
        """
        failed = [s.name for s in self.stages if s.exceeds(threshold_pct)]
        pct = self.cost_delta_pct
        if pct is not None and pct > threshold_pct:
            failed.insert(0, "cost")
        return failed

    def render(self, threshold_pct: Optional[float] = None) -> str:
        """Aligned text table of the comparison (CLI output)."""

        def fmt_secs(v: Optional[float]) -> str:
            return f"{v * 1e3:10.2f}" if v is not None else "         -"

        def fmt_pct(v: Optional[float]) -> str:
            return f"{v:+8.1f}%" if v is not None else "        -"

        lines = ["stage            baseline_ms    fresh_ms     delta"]
        for s in self.stages:
            flag = ""
            if threshold_pct is not None and s.exceeds(threshold_pct):
                flag = "  << REGRESSION"
            lines.append(
                f"{s.name:<14s} {fmt_secs(s.baseline_seconds)}  "
                f"{fmt_secs(s.fresh_seconds)}  {fmt_pct(s.delta_pct)}{flag}"
            )
        cost_line = (
            f"{'cost':<14s} {self.baseline_cost if self.baseline_cost is not None else '-':>11}  "
            f"{self.fresh_cost if self.fresh_cost is not None else '-':>10}  "
            f"{fmt_pct(self.cost_delta_pct)}"
        )
        if (
            threshold_pct is not None
            and self.cost_delta_pct is not None
            and self.cost_delta_pct > threshold_pct
        ):
            cost_line += "  << REGRESSION"
        lines.append(cost_line)
        return "\n".join(lines)


def diff_reports(baseline: RunReport, fresh: RunReport) -> ReportDiff:
    """Compare two run reports stage-by-stage.

    Stages are the root span's direct children (the engine's canonical
    ``trees``/``quantize``/``dp``/``repair``/``refine`` skeleton, plus
    whatever custom stages a caller added), matched by name; baseline
    order first, fresh-only stages appended.
    """
    base_stages = {c.name: c.seconds for c in baseline.spans.children}
    fresh_stages = {c.name: c.seconds for c in fresh.spans.children}
    names = list(base_stages)
    names.extend(n for n in fresh_stages if n not in base_stages)
    stages = [
        StageDelta(
            name=n,
            baseline_seconds=base_stages.get(n),
            fresh_seconds=fresh_stages.get(n),
        )
        for n in names
    ]
    return ReportDiff(
        baseline_cost=baseline.cost,
        fresh_cost=fresh.cost,
        stages=stages,
    )
