"""Export run reports as Chrome trace-event JSON (Perfetto-loadable).

A :class:`repro.core.telemetry.RunReport` stores a *span tree* (named
wall-clock intervals with durations but no absolute start times) and
per-ensemble-member timings.  This module lays both out on a synthetic
timeline and writes the Trace Event Format that ``chrome://tracing``
and https://ui.perfetto.dev consume:

* **Engine lane** (tid 0): the span tree as nested complete events
  (``ph: "X"``).  Children are placed back-to-back from their parent's
  start, and a parent's duration is stretched to cover its children
  when accumulated child time exceeds the parent's own measurement
  (pool runs fold *summed* worker seconds into the parent span, so
  child time can legitimately exceed wall time).
* **Worker lanes** (tid 1..W): one lane per reconstructed pool worker.
  Members are scheduled in index order onto the earliest-free lane
  (the same greedy order ``ProcessPoolExecutor.map`` induces), each
  contributing a ``dp`` then a ``repair`` complete event built from its
  :class:`repro.core.telemetry.MemberRecord` seconds.

Timestamps are microseconds from a synthetic origin; they are exact for
durations and *plausible* for starts — the report does not record
absolute event times, and the exporter never invents overlap within a
lane.  Span counters and member DP statistics ride in each event's
``args`` so Perfetto's selection panel shows them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.telemetry import RunReport, Span

__all__ = ["report_to_trace", "write_trace"]

_PID = 1
_ENGINE_TID = 0


def _span_events(
    span: Span, ts: float, tid: int, events: List[dict]
) -> float:
    """Append complete events for ``span``'s subtree; return its duration (µs).

    Children are laid out sequentially from ``ts``; the returned duration
    is ``max(own seconds, sum of child durations)`` so nesting is always
    valid and timestamps stay monotone.
    """
    child_cursor = ts
    for child in span.children:
        child_cursor += _span_events(child, child_cursor, tid, events)
    dur = max(span.seconds * 1e6, child_cursor - ts)
    args: Dict[str, object] = {"count": span.count}
    args.update(span.counters)
    events.append(
        {
            "name": span.name,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": _PID,
            "tid": tid,
            "args": args,
        }
    )
    return dur


def _member_events(
    report: RunReport, dp_start: float, workers: int, events: List[dict]
) -> None:
    """Schedule member dp/repair events onto ``workers`` reconstructed lanes."""
    free_at = [dp_start] * max(1, workers)
    for member in report.members:
        lane = min(range(len(free_at)), key=lambda i: free_at[i])
        t = free_at[lane]
        tid = lane + 1
        common = {
            "member": member.index,
            "method": member.method,
            "dp_cost": member.dp_cost,
            "mapped_cost": member.mapped_cost,
        }
        events.append(
            {
                "name": f"dp[{member.index}]",
                "ph": "X",
                "ts": t,
                "dur": member.dp_seconds * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": {
                    **common,
                    "dp_nodes": member.dp_nodes,
                    "dp_states_total": member.dp_states_total,
                    "dp_states_max": member.dp_states_max,
                    "dp_merges": member.dp_merges,
                    "beam_escalations": member.beam_escalations,
                },
            }
        )
        t += member.dp_seconds * 1e6
        events.append(
            {
                "name": f"repair[{member.index}]",
                "ph": "X",
                "ts": t,
                "dur": member.repair_seconds * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": common,
            }
        )
        free_at[lane] = t + member.repair_seconds * 1e6


def report_to_trace(report: RunReport, workers: Optional[int] = None) -> dict:
    """Convert a run report to a Chrome trace-event JSON object.

    Parameters
    ----------
    report:
        The run report to lay out.
    workers:
        Worker-lane count for the member schedule.  ``None`` reads
        ``n_jobs`` from the report's config (falling back to 1) — pass
        the real pool size to reconstruct a parallel run's shape.

    Returns
    -------
    dict
        ``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
        {...}}``, JSON-serialisable and loadable by Perfetto.
    """
    if workers is None:
        workers = int((report.config or {}).get("n_jobs", 1) or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _ENGINE_TID,
            "args": {"name": f"repro run ({report.path})"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _ENGINE_TID,
            "args": {"name": "engine"},
        },
    ]
    duration_events: List[dict] = []
    _span_events(report.spans, 0.0, _ENGINE_TID, duration_events)

    if report.members:
        # Members executed inside the engine's "dp"+"repair" window; start
        # the worker lanes where the dp stage starts on the engine lane.
        dp = next((e for e in duration_events if e["name"] == "dp"), None)
        dp_start = float(dp["ts"]) if dp is not None else 0.0
        for lane in range(workers):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": lane + 1,
                    "args": {"name": f"worker-{lane}"},
                }
            )
        _member_events(report, dp_start, workers, duration_events)

    # Emit duration events sorted by (tid, ts) so per-lane timestamps are
    # visibly monotone in the raw JSON as well as in the viewer.
    events.extend(sorted(duration_events, key=lambda e: (e["tid"], e["ts"])))
    meta: Dict[str, object] = {"path": report.path}
    if report.cost is not None:
        meta["cost"] = report.cost
    if report.meta.get("run_id"):
        meta["run_id"] = report.meta["run_id"]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_trace(
    report: RunReport,
    path: Union[str, Path],
    workers: Optional[int] = None,
) -> Path:
    """Write :func:`report_to_trace` output to ``path``; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(report_to_trace(report, workers=workers), indent=2) + "\n")
    return out
