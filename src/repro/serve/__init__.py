"""Placement-as-a-service: the overload-safe async solver front-end.

The paper's §1 motivation — placing streaming operators in a live
datacenter — needs the solver as a *service*, not a script: many
tenants submit placement requests concurrently, and the robustness
envelope (admission control, backpressure, SLO deadlines, coalescing,
graceful drain) is what keeps the solver alive and fair under overload.

Public surface:

* :class:`ServeConfig` — server knobs (queue capacities, aging, SLO
  defaults, drain behaviour) plus the base :class:`~repro.core.config.SolverConfig`
  every request's solve derives from.
* :class:`PlacementServer` — the asyncio HTTP/JSON front-end plus the
  single dispatcher thread that schedules admitted requests onto the
  existing engine/pool; see :mod:`repro.serve.server`.
* :class:`AdmissionQueue` — bounded two-lane priority queue with aging
  (:mod:`repro.serve.admission`).
* :class:`PlacementClient` — stdlib-socket client
  (:mod:`repro.serve.client`).

See ``docs/serving.md`` for the HTTP API, SLO semantics and the
503/504 runbook.
"""

from repro.serve.admission import AdmissionQueue, LANES
from repro.serve.client import PlacementClient, ServeResponse
from repro.serve.protocol import ProtocolError, SolveRequest
from repro.serve.server import PlacementServer, ServeConfig

__all__ = [
    "AdmissionQueue",
    "LANES",
    "PlacementClient",
    "PlacementServer",
    "ProtocolError",
    "ServeConfig",
    "ServeResponse",
    "SolveRequest",
]
