"""Admission control: bounded two-lane priority queue with aging.

The backpressure core of the placement service.  Two lanes
(``interactive`` and ``batch``), each a bounded FIFO:

* **Bounded** — :meth:`AdmissionQueue.offer` returns ``False`` (shed)
  the moment a lane is at capacity.  Nothing ever blocks on the way in,
  so overload turns into fast 503s instead of unbounded queueing —
  queueing delay is capped at ``capacity x service time`` by
  construction.
* **Priority with aging** — :meth:`AdmissionQueue.take` serves the
  interactive lane first, *except* when the oldest batch request has
  waited ``age_promote_s`` or longer, in which case the batch head is
  promoted ahead of interactive traffic.  Interactive latency stays
  bounded under load while batch requests cannot starve: a batch
  request's wait is capped at roughly ``age_promote_s`` plus one
  promotion cycle per queued elder.
* **FIFO within a lane** — arrival order is preserved per lane
  (deques, append right / pop left), so equal-priority tenants are
  served fairly.

The queue is item-agnostic (the server enqueues its job records; the
hypothesis suite enqueues integers) and takes an injectable ``clock``
so the aging invariant is testable with virtual time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import InvalidInputError

__all__ = ["AdmissionQueue", "LANES"]

#: Priority lanes, highest priority first.
LANES = ("interactive", "batch")


class AdmissionQueue:
    """Bounded two-lane admission queue (see module docstring).

    Parameters
    ----------
    capacity:
        Interactive-lane bound (and the batch bound unless overridden).
    batch_capacity:
        Batch-lane bound (``None`` = same as ``capacity``).
    age_promote_s:
        Batch requests older than this are served ahead of interactive
        ones (the anti-starvation knob).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 64,
        batch_capacity: Optional[int] = None,
        age_promote_s: float = 2.0,
        clock=time.monotonic,
    ):
        if capacity < 1:
            raise InvalidInputError(f"capacity must be >= 1, got {capacity}")
        if batch_capacity is not None and batch_capacity < 1:
            raise InvalidInputError(
                f"batch_capacity must be >= 1, got {batch_capacity}"
            )
        if age_promote_s <= 0:
            raise InvalidInputError(
                f"age_promote_s must be > 0, got {age_promote_s}"
            )
        self._cap = {
            "interactive": capacity,
            "batch": capacity if batch_capacity is None else batch_capacity,
        }
        self._age_promote_s = age_promote_s
        self._clock = clock
        self._lanes: Dict[str, Deque[Tuple[float, Any]]] = {
            lane: deque() for lane in LANES
        }
        self._cond = threading.Condition()
        self._closed = False
        # Introspection counters (served by /v1/stats and the metrics).
        self.offered = 0
        self.shed = 0
        self.promotions = 0

    def offer(self, item: Any, lane: str) -> bool:
        """Enqueue ``item``; ``False`` means shed (lane full or closed).

        Never blocks: admission control's whole point is that overload
        is answered immediately, not queued invisibly.
        """
        if lane not in self._cap:
            raise InvalidInputError(f"unknown lane {lane!r}; choose from {LANES}")
        with self._cond:
            self.offered += 1
            if self._closed or len(self._lanes[lane]) >= self._cap[lane]:
                self.shed += 1
                return False
            self._lanes[lane].append((self._clock(), item))
            self._cond.notify()
            return True

    def _select(self) -> Optional[str]:
        """Which lane to serve next (caller holds the lock)."""
        inter = self._lanes["interactive"]
        batch = self._lanes["batch"]
        if batch and (self._clock() - batch[0][0]) >= self._age_promote_s:
            if inter:
                self.promotions += 1
            return "batch"
        if inter:
            return "interactive"
        if batch:
            return "batch"
        return None

    def take(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[str, float, Any]]:
        """Dequeue ``(lane, enqueued_at, item)``; ``None`` on timeout.

        A closed queue still drains: admitted requests are served to
        completion during graceful drain, only *new* offers are shed.
        ``None`` with no timeout means closed-and-empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                lane = self._select()
                if lane is not None:
                    enqueued_at, item = self._lanes[lane].popleft()
                    return lane, enqueued_at, item
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def depth(self, lane: Optional[str] = None) -> int:
        """Queued request count for ``lane`` (or total)."""
        with self._cond:
            if lane is not None:
                return len(self._lanes[lane])
            return sum(len(q) for q in self._lanes.values())

    def capacity(self, lane: str) -> int:
        """Configured bound of ``lane``."""
        return self._cap[lane]

    def close(self) -> None:
        """Stop admitting (offers shed); queued items remain takeable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
