"""Stdlib-socket client for the placement service.

Deliberately primitive: one TCP connection per request (the server is
``Connection: close``), blocking IO, no dependencies — the shape of a
sidecar or test harness, not an SDK.  The request head and body are
sent separately with the ``serve_client`` chaos site between them, so
``REPRO_FAULT_SPEC=serve_slow_client:seconds=N`` turns any caller into
a slow-loris tenant and exercises the server's read-deadline path.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.errors import ReproError

__all__ = ["PlacementClient", "ServeResponse", "ServeUnavailableError"]


def _maybe_inject(site: str, **context) -> None:
    """Env-gated chaos hook (no-op unless ``REPRO_FAULT_SPEC`` is set)."""
    if not os.environ.get("REPRO_FAULT_SPEC"):
        return
    from repro.testing.faults import maybe_inject

    maybe_inject(site, **context)


class ServeUnavailableError(ReproError):
    """The server could not be reached (connection refused/reset)."""


@dataclass
class ServeResponse:
    """One HTTP exchange: status, headers, body (+ JSON view)."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def served_from(self) -> str:
        """``solve`` | ``coalesced`` | ``cache`` | ``shed`` | ``drain``."""
        return self.headers.get("x-repro-served-from", "")

    @property
    def retry_after_s(self) -> Optional[int]:
        raw = self.headers.get("retry-after")
        return None if raw is None else int(raw)


class PlacementClient:
    """Blocking client for one placement server.

    Usage::

        client = PlacementClient("http://127.0.0.1:8787")
        resp = client.solve(
            graph={"n": 4, "edges": [[0, 1, 1.0], [2, 3, 1.0]]},
            hierarchy={"degrees": [2, 2], "cm": [10, 3, 0]},
            demands=[0.5, 0.5, 0.5, 0.5],
            deadline_s=10.0,
        )
        resp.json()["cost"], resp.json()["leaf_of"]
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        if "//" in base_url:
            base_url = base_url.split("//", 1)[1]
        host, _, port = base_url.rstrip("/").partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # raw exchange
    # ------------------------------------------------------------------

    def request(
        self, method: str, path: str, body: bytes = b""
    ) -> ServeResponse:
        """One HTTP exchange on a fresh connection."""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall(head)
                # Chaos site: serve_slow_client stalls *here*, between
                # head and body — the classic slow-loris shape the
                # server's per-read deadline must absorb.
                _maybe_inject("serve_client", path=path)
                if body:
                    sock.sendall(body)
                return self._read_response(sock)
        except OSError as exc:
            raise ServeUnavailableError(
                f"placement server at {self.host}:{self.port} unreachable: {exc}"
            ) from exc

    def _read_response(self, sock: socket.socket) -> ServeResponse:
        buf = b""
        while b"\r\n\r\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ServeUnavailableError(
                    "connection closed before response headers arrived"
                )
            buf += chunk
        head, _, rest = buf.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = rest
        while len(body) < length:
            chunk = sock.recv(65536)
            if not chunk:
                break
            body += chunk
        return ServeResponse(status=status, headers=headers, body=body[:length])

    # ------------------------------------------------------------------
    # typed endpoints
    # ------------------------------------------------------------------

    def solve_raw(self, payload: Dict[str, Any]) -> ServeResponse:
        """``POST /v1/solve`` with a prebuilt request object."""
        return self.request(
            "POST", "/v1/solve", json.dumps(payload).encode("utf-8")
        )

    def solve(
        self,
        graph: Dict[str, Any],
        hierarchy: Dict[str, Any],
        demands: Sequence[float],
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
        allow_partial: bool = False,
        config: Optional[Dict[str, Any]] = None,
        report: bool = False,
    ) -> ServeResponse:
        """Submit one placement request (see ``docs/serving.md``)."""
        payload: Dict[str, Any] = {
            "graph": graph,
            "hierarchy": hierarchy,
            "demands": list(demands),
            "priority": priority,
            "allow_partial": allow_partial,
            "report": report,
        }
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if config:
            payload["config"] = config
        return self.solve_raw(payload)

    def healthz(self) -> ServeResponse:
        """``GET /healthz`` — 200 while serving, 503 once draining."""
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        return self.request("GET", "/metrics").body.decode("utf-8")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — the server's operational snapshot."""
        return self.request("GET", "/v1/stats").json()
