"""Wire protocol of the placement service (JSON bodies, HTTP helpers).

One request shape (``POST /v1/solve``)::

    {
      "graph":     {"n": 12, "edges": [[0, 1, 1.0], ...]},
      "hierarchy": {"degrees": [2, 4], "cm": [10, 3, 0], "leaf_capacity": 1.0},
      "demands":   [0.4, 0.1, ...],
      "priority":  "interactive" | "batch",          # default interactive
      "deadline_s": 5.0,                             # SLO budget (optional)
      "allow_partial": false,                        # admit degraded results
      "report": false,                               # include the run report
      "config": {"seed": 0, "n_trees": 4, ...}       # whitelisted overrides
    }

Responses are canonical JSON (sorted keys, no whitespace) so coalesced
fan-outs and cache hits are *byte-identical* to the leader's response —
the serving layer's bit-identity contract rides on this encoder.

Determinism note: everything that can change the response body is part
of :func:`request_cache_parts` (graph digest, hierarchy, demands,
config overrides, report flag); everything that only changes *failure
behaviour* (deadline, priority, allow_partial) deliberately is not, so
requests differing only in SLO share one in-flight solve.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cache import cache_key
from repro.core.config import SolverConfig
from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy

__all__ = [
    "CONFIG_OVERRIDES",
    "ProtocolError",
    "SolveRequest",
    "build_config",
    "http_response",
    "json_body",
    "parse_solve_request",
    "request_cache_parts",
]

#: ``SolverConfig`` fields a request's ``config`` block may override.
#: A whitelist, not ``replace(**anything)``: server-side resources
#: (``n_jobs``, cache sizing, kernel backend) stay under the operator's
#: control no matter what a tenant sends.
CONFIG_OVERRIDES = (
    "seed",
    "n_trees",
    "beam_width",
    "refine",
    "refine_passes",
    "slack",
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(InvalidInputError):
    """A request body violates the wire contract (client error, 400)."""


@dataclass
class SolveRequest:
    """One parsed placement request."""

    graph: Graph
    hierarchy: Hierarchy
    demands: np.ndarray
    degrees: Tuple[int, ...]
    cm: Tuple[float, ...]
    leaf_capacity: float
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    allow_partial: bool = False
    want_report: bool = False
    overrides: Dict[str, Any] = field(default_factory=dict)


def _require(obj: dict, key: str, where: str):
    if key not in obj:
        raise ProtocolError(f"missing required field {where}.{key}")
    return obj[key]


def parse_solve_request(
    body: bytes, default_priority: str = "interactive"
) -> SolveRequest:
    """Parse and validate a ``POST /v1/solve`` body.

    Raises :class:`ProtocolError` (a client error, mapped to 400) on
    anything malformed; the solver's own ``validate_instance`` still
    runs at solve time for the semantic checks (capacity, ranges).
    """
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request body must be a JSON object")

    gobj = _require(obj, "graph", "$")
    if not isinstance(gobj, dict):
        raise ProtocolError("graph must be an object with n and edges")
    n = int(_require(gobj, "n", "graph"))
    edges = []
    for i, e in enumerate(_require(gobj, "edges", "graph")):
        if len(e) == 2:
            u, v, w = e[0], e[1], 1.0
        elif len(e) == 3:
            u, v, w = e
        else:
            raise ProtocolError(
                f"graph.edges[{i}] must be [u, v] or [u, v, w], got {e!r}"
            )
        edges.append((int(u), int(v), float(w)))
    try:
        graph = Graph(n, edges)
    except InvalidInputError as exc:
        raise ProtocolError(f"invalid graph: {exc}") from exc

    hobj = _require(obj, "hierarchy", "$")
    if not isinstance(hobj, dict):
        raise ProtocolError("hierarchy must be an object with degrees and cm")
    degrees = tuple(int(d) for d in _require(hobj, "degrees", "hierarchy"))
    cm = tuple(float(c) for c in _require(hobj, "cm", "hierarchy"))
    leaf_capacity = float(hobj.get("leaf_capacity", 1.0))
    try:
        hierarchy = Hierarchy(degrees, cm, leaf_capacity=leaf_capacity)
    except InvalidInputError as exc:
        raise ProtocolError(f"invalid hierarchy: {exc}") from exc

    demands = np.asarray(_require(obj, "demands", "$"), dtype=np.float64)
    if demands.ndim != 1 or demands.size != graph.n:
        raise ProtocolError(
            f"demands must be a flat list of {graph.n} floats, got shape "
            f"{demands.shape}"
        )

    priority = str(obj.get("priority", default_priority))
    if priority not in ("interactive", "batch"):
        raise ProtocolError(
            f"priority must be 'interactive' or 'batch', got {priority!r}"
        )

    deadline_s = obj.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ProtocolError(f"deadline_s must be > 0, got {deadline_s}")

    overrides: Dict[str, Any] = {}
    cobj = obj.get("config") or {}
    if not isinstance(cobj, dict):
        raise ProtocolError("config must be an object of solver overrides")
    for key, value in cobj.items():
        if key not in CONFIG_OVERRIDES:
            raise ProtocolError(
                f"config.{key} is not an allowed override; choose from "
                f"{sorted(CONFIG_OVERRIDES)}"
            )
        overrides[key] = value

    return SolveRequest(
        graph=graph,
        hierarchy=hierarchy,
        demands=demands,
        degrees=degrees,
        cm=cm,
        leaf_capacity=leaf_capacity,
        priority=priority,
        deadline_s=deadline_s,
        allow_partial=bool(obj.get("allow_partial", False)),
        want_report=bool(obj.get("report", False)),
        overrides=overrides,
    )


def request_cache_parts(req: SolveRequest) -> Tuple[Any, ...]:
    """The key material identifying a request's *solution*.

    Everything that can change the response body is here; SLO-only
    fields (deadline, priority, allow_partial) are not, so identical
    instances coalesce across tenants with different budgets.
    """
    return (
        req.graph.digest(),
        req.degrees,
        req.cm,
        req.leaf_capacity,
        req.demands,
        tuple(sorted(req.overrides.items())),
        req.want_report,
    )


def request_cache_key(req: SolveRequest) -> str:
    """Content-addressed identity of a request (coalescing/cache key)."""
    return cache_key("serve_request", request_cache_parts(req))


def build_config(
    req: SolveRequest,
    base: SolverConfig,
    budget_s: Optional[float] = None,
) -> SolverConfig:
    """The effective solver config for one request.

    Applies the request's whitelisted overrides to the server's base
    config, then folds the remaining SLO budget into the resilience
    block: ``total_deadline_s`` is clamped to the remaining budget (so
    retries can never outlive the SLO — see
    :class:`repro.core.resilience.ResilienceConfig`), and a missing
    ``member_timeout_s`` is bounded by it too so a single hung pool
    member cannot eat the whole budget silently.
    """
    cfg = base
    if req.overrides:
        try:
            cfg = replace(cfg, **req.overrides)
        except InvalidInputError as exc:
            raise ProtocolError(f"invalid config override: {exc}") from exc
    res = cfg.resilience
    changes: Dict[str, Any] = {}
    if req.allow_partial and not res.allow_partial:
        changes["allow_partial"] = True
    if budget_s is not None:
        budget_s = max(budget_s, 1e-3)
        total = (
            budget_s
            if res.total_deadline_s is None
            else min(res.total_deadline_s, budget_s)
        )
        changes["total_deadline_s"] = total
        changes["member_timeout_s"] = (
            budget_s
            if res.member_timeout_s is None
            else min(res.member_timeout_s, budget_s)
        )
    if changes:
        cfg = replace(cfg, resilience=replace(res, **changes))
    return cfg


def json_body(obj: Any) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace, UTF-8).

    The byte-identity contract of coalescing and the response cache
    rides on this: the same dict always encodes to the same bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def http_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one HTTP/1.1 response (Connection: close framing)."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{k}: {v}" for k, v in headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
