"""The placement server: asyncio front-end + single dispatcher thread.

Architecture (one process, three kinds of thread):

* **IO loop thread** — an :func:`asyncio.start_server` loop accepts
  connections and parses one HTTP request each (``Connection: close``).
  Handlers never solve; they classify the request, claim the coalescing
  key, offer the job to the admission queue and *await* the result
  future.  Slow clients are bounded by ``read_timeout_s`` per read, so
  a slow-loris tenant costs one socket, not a worker.
* **Dispatcher thread** — the only place solves run.  It pops jobs off
  the :class:`~repro.serve.admission.AdmissionQueue` (priority + aging),
  drops requests whose SLO expired while queued (504 without wasting a
  solve), folds the remaining budget into the resilience config
  (``total_deadline_s``), runs :func:`repro.core.engine.run_pipeline`
  — which fans out onto the persistent worker pool exactly like the
  CLI — and resolves the in-flight entry, fanning the serialized
  response to the leader and every coalesced follower byte-identically.
* **Pool workers** — unchanged; crashes/hangs are absorbed by the
  resilience layer (retries, pool restarts) underneath the dispatcher.

Overload behaviour: a full lane sheds with ``503`` + ``Retry-After``;
an expired SLO returns ``504`` (with the degraded report's partial
result when ``allow_partial`` admits one); duplicate concurrent
requests coalesce onto one solve.  ``GET /metrics`` and ``/healthz``
are served from the same port, so the scrape surface needs no separate
exporter.  Graceful drain (SIGTERM or :meth:`PlacementServer.drain`)
stops admitting, finishes queued + in-flight work, then closes the
loop — and is registered as a pool shutdown hook so interpreter exit
tears the stack down in dependency order (serve loop, then pool, then
spool files).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cache import InflightRegistry, get_cache
from repro.core.config import SolverConfig
from repro.core.engine import run_pipeline
from repro.errors import DegradedRunError, InfeasibleError, InvalidInputError
from repro.obs.exporter import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.metrics import get_registry
from repro.serve import protocol
from repro.serve.admission import LANES, AdmissionQueue

__all__ = ["PlacementServer", "ServeConfig"]

#: Response-cache tier: completed serve responses, keyed like requests.
_RESPONSE_KIND = "serve_response"

#: Grace added to a handler's wait past the job deadline, so the
#: dispatcher's specific 504 payload (queue-expired vs solve-truncated)
#: wins over the handler's generic one whenever it arrives at all.
_WAIT_GRACE_S = 2.0


def _maybe_inject(site: str, **context) -> None:
    """Env-gated chaos hook (no-op unless ``REPRO_FAULT_SPEC`` is set)."""
    if not os.environ.get("REPRO_FAULT_SPEC"):
        return
    from repro.testing.faults import maybe_inject

    maybe_inject(site, **context)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`PlacementServer`.

    Attributes
    ----------
    host, port:
        Bind address (``port=0`` = OS-assigned, see ``server.port``).
    queue_capacity:
        Interactive-lane admission bound; offers past it shed with 503.
    batch_queue_capacity:
        Batch-lane bound (``None`` = ``queue_capacity``).
    age_promote_s:
        Anti-starvation knob: batch requests older than this are served
        ahead of interactive traffic.
    default_deadline_s:
        SLO budget applied when a request carries no ``deadline_s``
        (``None`` = unbounded).
    retry_after_s:
        Value of the ``Retry-After`` header on shed/drain 503s.
    read_timeout_s:
        Per-read deadline while parsing a request (slow-loris bound).
    max_body_bytes:
        Request-body cap (413 past it).
    drain_timeout_s:
        How long :meth:`PlacementServer.drain` waits for queued and
        in-flight work before closing anyway.
    cache_responses:
        Store completed 200 responses in the solver cache (tier
        ``serve_response``) so repeat requests skip the queue entirely.
    solver:
        Base :class:`~repro.core.config.SolverConfig` every request
        derives from (requests may override the whitelisted fields in
        :data:`repro.serve.protocol.CONFIG_OVERRIDES`).  Defaults to
        the pool path (``n_jobs=2``): SLO deadlines preempt pool waves
        but cannot preempt a serial in-process solve, so a serving
        config should keep ``n_jobs > 1``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_capacity: int = 64
    batch_queue_capacity: Optional[int] = None
    age_promote_s: float = 2.0
    default_deadline_s: Optional[float] = 30.0
    retry_after_s: int = 1
    read_timeout_s: float = 5.0
    max_body_bytes: int = 16 * 1024 * 1024
    drain_timeout_s: float = 30.0
    cache_responses: bool = True
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(n_jobs=2))


@dataclass
class _Payload:
    """One finished response: what coalescing fans out byte-identically."""

    status: int
    body: bytes


@dataclass
class _Job:
    """One admitted request, queued for the dispatcher."""

    request: protocol.SolveRequest
    key: str
    lane: str
    deadline_at: Optional[float]


class PlacementServer:
    """A running placement service; see the module docstring.

    Usage::

        server = PlacementServer(ServeConfig(port=0)).start()
        print(server.url)       # http://127.0.0.1:<port>
        ...
        server.drain()          # stop admitting, finish, shut down
    """

    def __init__(self, config: ServeConfig = ServeConfig()):
        self.config = config
        self._queue = AdmissionQueue(
            capacity=config.queue_capacity,
            batch_capacity=config.batch_queue_capacity,
            age_promote_s=config.age_promote_s,
        )
        self._inflight = InflightRegistry()
        self._registry = get_registry()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._dispatch_stop = threading.Event()
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._active_conns = 0
        self._started = False
        self.host = config.host
        self.port = config.port
        self._init_metrics()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def _init_metrics(self) -> None:
        reg = self._registry
        self._m_requests = reg.counter(
            "repro_serve_requests_total",
            "Placement requests received, by priority lane",
            labelnames=("lane",),
        )
        self._m_responses = reg.counter(
            "repro_serve_responses_total",
            "Responses sent, by HTTP status code",
            labelnames=("code",),
        )
        self._m_shed = reg.counter(
            "repro_serve_shed_total",
            "Requests shed with 503 by admission control, by lane",
            labelnames=("lane",),
        )
        self._m_timeouts = reg.counter(
            "repro_serve_deadline_timeouts_total",
            "Requests that exceeded their SLO budget, by stage",
            labelnames=("stage",),
        )
        self._m_coalesced = reg.counter(
            "repro_serve_coalesced_total",
            "Requests served by attaching to an identical in-flight solve",
        )
        self._m_cache_hits = reg.counter(
            "repro_serve_response_cache_hits_total",
            "Requests served from the serve_response cache tier",
        )
        self._m_promotions = reg.counter(
            "repro_serve_queue_promotions_total",
            "Batch requests served ahead of interactive traffic by aging",
        )
        self._m_depth = reg.gauge(
            "repro_serve_queue_depth",
            "Requests currently queued, by priority lane",
            labelnames=("lane",),
        )
        self._m_queue_wait = reg.histogram(
            "repro_serve_queue_wait_seconds",
            "Admission-to-dispatch wait per request, by lane",
            labelnames=("lane",),
        )
        self._m_request_seconds = reg.histogram(
            "repro_serve_request_seconds",
            "Parse-to-response wall time per placement request, by lane",
            labelnames=("lane",),
        )
        self._m_solve_seconds = reg.histogram(
            "repro_serve_solve_seconds",
            "Dispatcher solve wall time per leader request",
        )
        self._m_http = reg.counter(
            "repro_serve_http_requests_total",
            "HTTP requests served, by endpoint",
            labelnames=("endpoint",),
        )
        self._m_drains = reg.counter(
            "repro_serve_drains_total",
            "Graceful drains initiated (SIGTERM or explicit)",
        )

    def _update_depth(self) -> None:
        for lane in LANES:
            self._m_depth.set(self._queue.depth(lane), lane=lane)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PlacementServer":
        """Bind, start the IO loop and dispatcher threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._run_loop,
            args=(started,),
            name="repro-serve-loop",
            daemon=True,
        )
        self._loop_thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - bind stall
            raise RuntimeError("serve loop failed to start within 10s")
        if self._loop_error is not None:
            raise self._loop_error
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        # Interpreter exit must tear down serve before the pool/spool
        # sweep (the dispatcher submits to the pool): register with the
        # pool's pre-shutdown hooks, newest first.
        from repro.core.pool import register_shutdown_hook

        register_shutdown_hook(f"serve:{id(self)}", self._atexit_drain)
        return self

    _loop_error: Optional[BaseException] = None

    def _run_loop(self, started: threading.Event) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)

        async def _bind():
            try:
                self._server = await asyncio.start_server(
                    self._handle_conn, self.config.host, self.config.port
                )
                self.host, self.port = self._server.sockets[0].getsockname()[:2]
            except BaseException as exc:  # pragma: no cover - bind failure
                self._loop_error = exc
            finally:
                started.set()

        loop.create_task(_bind())
        loop.run_forever()
        # Loop stopped by drain: cancel whatever handlers remain, then
        # run the loop briefly so cancellations are delivered cleanly.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def initiate_drain(self) -> None:
        """Stop admitting new requests (signal-handler safe, idempotent).

        New solve requests get 503 + ``Retry-After``; queued and
        in-flight requests keep running.  Call :meth:`drain` (or let
        :meth:`serve_forever` return) to finish and close.
        """
        if not self._draining.is_set():
            self._draining.set()
            self._m_drains.inc()
            self._queue.close()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop admitting, finish everything, close.

        ``timeout`` (default ``drain_timeout_s``) bounds the wait for
        queued + in-flight work; the loop is closed regardless after.
        Idempotent — safe to call after an explicit drain *and* again
        from the atexit hook.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        self.initiate_drain()
        with self._lock:
            if self._drained.is_set():
                return
            self._drained.set()
        deadline = time.monotonic() + timeout
        self._dispatch_stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(max(0.1, deadline - time.monotonic()))
        # Give in-flight handlers a moment to write their responses out
        # before the loop goes away.
        while self._active_conns > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        self._stop_loop()
        from repro.core.pool import unregister_shutdown_hook

        unregister_shutdown_hook(f"serve:{id(self)}")

    def _atexit_drain(self) -> None:
        """Pool pre-shutdown hook: bounded drain at interpreter exit."""
        self.drain(timeout=min(5.0, self.config.drain_timeout_s))

    def _stop_loop(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return
        server = self._server
        if server is not None:

            async def _close():
                server.close()
                await server.wait_closed()

            try:
                asyncio.run_coroutine_threadsafe(_close(), loop).result(5.0)
            except Exception:  # pragma: no cover - already closing
                pass
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None

    def serve_forever(self) -> None:
        """Block until a drain is initiated, then finish it and return.

        The CLI wires SIGTERM/SIGINT to :meth:`initiate_drain`, making
        this the whole graceful-shutdown story of ``repro serve``.
        """
        try:
            while not self._draining.is_set():
                time.sleep(0.1)
        except KeyboardInterrupt:
            self.initiate_drain()
        self.drain()

    def __enter__(self) -> "PlacementServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (served as ``GET /v1/stats``)."""
        return {
            "draining": self._draining.is_set(),
            "queue_depth": {lane: self._queue.depth(lane) for lane in LANES},
            "queue_capacity": {
                lane: self._queue.capacity(lane) for lane in LANES
            },
            "offered": self._queue.offered,
            "shed": self._queue.shed,
            "promotions": self._queue.promotions,
            "inflight": self._inflight.inflight(),
            "coalesced_total": self._inflight.coalesced_total,
        }

    # ------------------------------------------------------------------
    # IO loop side
    # ------------------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._active_conns += 1
        try:
            parsed = await self._read_http(reader)
            if parsed is None:
                writer.write(
                    protocol.http_response(
                        408,
                        protocol.json_body({"error": "request read timed out"}),
                    )
                )
            else:
                method, path, headers, body = parsed
                writer.write(await self._route(method, path, headers, body))
            await writer.drain()
        except (
            asyncio.CancelledError,
            ConnectionError,
        ):  # client went away / drain cancelled us
            pass
        except Exception as exc:  # pragma: no cover - handler backstop
            try:
                writer.write(
                    protocol.http_response(
                        500,
                        protocol.json_body(
                            {"error": f"{type(exc).__name__}: {exc}"}
                        ),
                    )
                )
                await writer.drain()
            except Exception:
                pass
        finally:
            self._active_conns -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_http(
        self, reader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.x request; ``None`` on timeout/garbage.

        Every read is individually bounded by ``read_timeout_s``, so a
        slow-loris client (see the ``serve_slow_client`` fault) ties up
        one socket for at most one deadline, never a solver.
        """
        to = self.config.read_timeout_s
        try:
            line = await asyncio.wait_for(reader.readline(), to)
            parts = line.decode("latin-1").split()
            if len(parts) < 2:
                return None
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                raw = await asyncio.wait_for(reader.readline(), to)
                if raw in (b"\r\n", b"\n", b""):
                    break
                key, _, value = raw.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            if length > self.config.max_body_bytes:
                return method, "__too_large__", headers, b""
            body = b""
            if length > 0:
                body = await asyncio.wait_for(reader.readexactly(length), to)
            return method, path, headers, body
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            UnicodeDecodeError,
            ValueError,
        ):
            return None

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> bytes:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "__too_large__":
            return protocol.http_response(
                413, protocol.json_body({"error": "request body too large"})
            )
        if method == "GET" and path == "/metrics":
            self._m_http.inc(endpoint="metrics")
            return protocol.http_response(
                200,
                self._registry.render().encode("utf-8"),
                content_type=METRICS_CONTENT_TYPE,
            )
        if method == "GET" and path == "/healthz":
            self._m_http.inc(endpoint="healthz")
            if self._draining.is_set():
                return protocol.http_response(
                    503, b"draining\n", content_type="text/plain"
                )
            return protocol.http_response(
                200, b"ok\n", content_type="text/plain"
            )
        if method == "GET" and path == "/v1/stats":
            self._m_http.inc(endpoint="stats")
            return protocol.http_response(
                200, protocol.json_body(self.stats())
            )
        if method == "POST" and path == "/v1/solve":
            self._m_http.inc(endpoint="solve")
            return await self._handle_solve(body)
        return protocol.http_response(
            404, protocol.json_body({"error": f"no such endpoint: {path}"})
        )

    async def _handle_solve(self, body: bytes) -> bytes:
        t0 = time.monotonic()
        try:
            req = protocol.parse_solve_request(body)
        except protocol.ProtocolError as exc:
            self._m_responses.inc(code="400")
            return protocol.http_response(
                400, protocol.json_body({"error": str(exc)})
            )
        lane = req.priority
        self._m_requests.inc(lane=lane)
        if self._draining.is_set():
            return self._respond(
                _Payload(
                    503, protocol.json_body({"error": "draining, not admitting"})
                ),
                lane,
                t0,
                served_from="drain",
            )
        deadline_s = (
            req.deadline_s
            if req.deadline_s is not None
            else self.config.default_deadline_s
        )
        deadline_at = None if deadline_s is None else t0 + deadline_s
        key = protocol.request_cache_key(req)

        leader, entry = self._inflight.claim(key)
        if not leader:
            # Coalesced follower: attach to the in-flight solve and fan
            # out its exact response bytes.  Followers bypass admission
            # on purpose — they consume no solve capacity.
            self._m_coalesced.inc()
            payload = await self._await_entry(entry, deadline_at)
            return self._respond(
                payload, lane, t0, served_from="coalesced", key=key
            )

        cached = self._cache_lookup(req, key)
        if cached is not None:
            self._m_cache_hits.inc()
            self._inflight.resolve(key, cached)
            return self._respond(
                cached, lane, t0, served_from="cache", key=key
            )

        job = _Job(request=req, key=key, lane=lane, deadline_at=deadline_at)
        try:
            _maybe_inject("serve_admit", lane=lane)
            admitted = self._queue.offer(job, lane)
        except Exception:
            # The serve_flood fault lands here: treat an admission-path
            # failure exactly like a full queue — shed, don't crash.
            admitted = False
        if not admitted:
            self._m_shed.inc(lane=lane)
            payload = _Payload(
                503,
                protocol.json_body(
                    {
                        "error": "overloaded: admission queue full",
                        "lane": lane,
                    }
                ),
            )
            # Followers of a shed leader shed too (same overload).
            self._inflight.resolve(key, payload)
            return self._respond(payload, lane, t0, served_from="shed", key=key)
        self._update_depth()
        payload = await self._await_entry(entry, deadline_at)
        return self._respond(payload, lane, t0, served_from="solve", key=key)

    async def _await_entry(
        self, entry, deadline_at: Optional[float]
    ) -> _Payload:
        fut = entry.subscribe()
        timeout = (
            None
            if deadline_at is None
            else max(0.0, deadline_at - time.monotonic()) + _WAIT_GRACE_S
        )
        try:
            return await asyncio.wait_for(asyncio.wrap_future(fut), timeout)
        except asyncio.TimeoutError:
            self._m_timeouts.inc(stage="wait")
            return _Payload(
                504,
                protocol.json_body(
                    {
                        "error": "deadline exceeded awaiting the solve",
                        "stage": "wait",
                    }
                ),
            )

    def _respond(
        self,
        payload: _Payload,
        lane: str,
        t0: float,
        served_from: str,
        key: Optional[str] = None,
    ) -> bytes:
        self._m_responses.inc(code=str(payload.status))
        self._m_request_seconds.observe(time.monotonic() - t0, lane=lane)
        headers = [("X-Repro-Served-From", served_from)]
        if key is not None:
            headers.append(("X-Repro-Cache-Key", key))
        if payload.status == 503:
            headers.append(("Retry-After", str(self.config.retry_after_s)))
        return protocol.http_response(
            payload.status, payload.body, headers=tuple(headers)
        )

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        promotions_seen = 0
        while True:
            item = self._queue.take(timeout=0.05)
            if item is None:
                if self._dispatch_stop.is_set() and self._queue.depth() == 0:
                    return
                continue
            lane, enqueued_at, job = item
            self._update_depth()
            if self._queue.promotions > promotions_seen:
                self._m_promotions.inc(self._queue.promotions - promotions_seen)
                promotions_seen = self._queue.promotions
            now = time.monotonic()
            self._m_queue_wait.observe(now - enqueued_at, lane=lane)
            if job.deadline_at is not None and now >= job.deadline_at:
                # SLO expired while queued: answer 504 without burning a
                # solve on a result nobody is waiting for.
                self._m_timeouts.inc(stage="queue")
                self._inflight.resolve(
                    job.key,
                    _Payload(
                        504,
                        protocol.json_body(
                            {
                                "error": "deadline exceeded while queued",
                                "stage": "queue",
                            }
                        ),
                    ),
                )
                continue
            payload = self._solve_job(job)
            if (
                payload.status == 200
                and self.config.cache_responses
            ):
                self._cache_store(job.request, job.key, payload)
            self._inflight.resolve(job.key, payload)

    def _solve_job(self, job: _Job) -> _Payload:
        req = job.request
        budget = (
            None
            if job.deadline_at is None
            else max(1e-3, job.deadline_at - time.monotonic())
        )
        try:
            cfg = protocol.build_config(req, self.config.solver, budget)
        except protocol.ProtocolError as exc:
            return _Payload(400, protocol.json_body({"error": str(exc)}))
        t0 = time.monotonic()
        try:
            result = run_pipeline(
                req.graph, req.hierarchy, req.demands, cfg, path="serve"
            )
        except DegradedRunError as exc:
            kinds = {f.kind for f in exc.failures}
            status = 504 if "timeout" in kinds else 500
            if status == 504:
                self._m_timeouts.inc(stage="solve")
            return _Payload(
                status,
                protocol.json_body(
                    {
                        "error": str(exc)[:300],
                        **({"stage": "solve"} if status == 504 else {}),
                        "failures": [
                            {
                                "index": f.index,
                                "kind": f.kind,
                                "attempts": f.attempts,
                            }
                            for f in exc.failures
                        ],
                    }
                ),
            )
        except (InvalidInputError, InfeasibleError) as exc:
            return _Payload(400, protocol.json_body({"error": str(exc)}))
        except Exception as exc:
            return _Payload(
                500,
                protocol.json_body(
                    {"error": f"{type(exc).__name__}: {exc}"[:300]}
                ),
            )
        self._m_solve_seconds.observe(time.monotonic() - t0)
        # A degraded result that lost members to the deadline is the
        # "504 with a partial report" contract: allow_partial admitted
        # it, the caller learns it is late *and* gets the best effort.
        status = 200
        if result.degraded and any(f.kind == "timeout" for f in result.failures):
            status = 504
            self._m_timeouts.inc(stage="solve")
        body: Dict[str, Any] = {
            "n": req.graph.n,
            "cost": result.cost,
            "degraded": bool(result.degraded),
            "failures": [
                {"index": f.index, "kind": f.kind, "attempts": f.attempts}
                for f in result.failures
            ],
            "leaf_of": result.placement.leaf_of.tolist(),
        }
        if status == 504:
            body["stage"] = "solve"
        if req.want_report:
            body["report"] = result.report(path="serve").to_dict()
        return _Payload(status, protocol.json_body(body))

    # ------------------------------------------------------------------
    # response cache
    # ------------------------------------------------------------------

    def _cache_lookup(
        self, req: protocol.SolveRequest, key: str
    ) -> Optional[_Payload]:
        if not self.config.cache_responses:
            return None
        try:
            hit, value = get_cache().lookup(
                _RESPONSE_KIND, protocol.request_cache_parts(req)
            )
        except Exception:
            return None
        if not hit:
            return None
        status, body = value
        return _Payload(status, body)

    def _cache_store(
        self, req: protocol.SolveRequest, key: str, payload: _Payload
    ) -> None:
        try:
            get_cache().store(
                _RESPONSE_KIND,
                protocol.request_cache_parts(req),
                (payload.status, payload.body),
            )
        except Exception:
            pass
