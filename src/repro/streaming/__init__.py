"""Streaming-system substrate: operator DAGs, workloads, throughput model."""

from repro.streaming.operators import Operator, StreamDAG
from repro.streaming.workload import (
    aggregation_query,
    diamond_query,
    pipeline_query,
    random_workload,
)
from repro.streaming.simulator import (
    CommCostModel,
    ThroughputReport,
    evaluate_placement,
)
from repro.streaming.pinning import dag_to_instance, place_dag
from repro.streaming.online import (
    ChurnEvent,
    ChurnResult,
    OnlineCounters,
    OnlinePlacer,
    simulate_churn,
)
from repro.streaming.replicate import auto_replicate, replicate_operator

__all__ = [
    "Operator",
    "StreamDAG",
    "aggregation_query",
    "diamond_query",
    "pipeline_query",
    "random_workload",
    "CommCostModel",
    "ThroughputReport",
    "evaluate_placement",
    "dag_to_instance",
    "place_dag",
    "ChurnEvent",
    "ChurnResult",
    "OnlineCounters",
    "OnlinePlacer",
    "simulate_churn",
    "auto_replicate",
    "replicate_operator",
]
