"""Online task placement under churn (extension beyond the paper).

The paper solves the *static* placement problem; real stream systems see
tasks arrive and depart continuously, and migrating a running operator
costs state transfer.  This module adds the natural online layer on top
of the static solver:

* :class:`OnlinePlacer` keeps a live task set, places arrivals greedily
  (capacity-aware, hierarchy-aware incremental cost — the same rule as
  :mod:`repro.baselines.greedy`), and supports *budgeted
  re-optimisation*: solve the static HGP on the live graph, then adopt
  only the most valuable migrations up to a per-call budget, applied in
  decreasing immediate-gain order.
* :func:`simulate_churn` drives an arrival/departure trace through three
  policies (never re-optimise, re-optimise every ``period`` events with
  a budget, unlimited re-optimisation) and reports the cost trajectory —
  the experiment behind bench E11.

The static solver's guarantees apply at each re-optimisation point; in
between, quality degrades gracefully with churn — exactly the trade-off
the simulation quantifies.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DegradedRunError, InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.core.config import SolverConfig
from repro.core.telemetry import RunReport, Telemetry
from repro.obs.metrics import get_registry

__all__ = [
    "OnlineCounters",
    "OnlinePlacer",
    "ChurnEvent",
    "ChurnResult",
    "simulate_churn",
]


@dataclass
class OnlineCounters:
    """Event counters of one :class:`OnlinePlacer` lifetime.

    ``rejections`` counts arrivals that found no leaf within the load
    budget and fell back to the least-loaded leaf (the placement
    succeeded but violated the budget) — previously these were silent.
    ``tree_cache_hits`` / ``tree_cache_misses`` count re-optimisation
    runs whose decomposition ensemble came from the solver cache versus
    being rebuilt — back-to-back calls on an unchanged live graph should
    be all hits after the first.  ``reopt_failures`` counts
    re-optimisations abandoned because the engine run degraded past its
    resilience policy — the placer keeps serving the current placement.
    ``edge_updates`` counts :meth:`OnlinePlacer.update_edge` calls;
    ``incremental_reopts`` / ``incremental_fallbacks`` count
    re-optimisations that ran through the subtree-memo warm path versus
    those forced to a plain full solve because the dirty fraction
    exceeded ``IncrementalConfig.max_dirty_frac`` (placements are
    identical either way — the gate is a performance heuristic).
    """

    arrivals: int = 0
    departures: int = 0
    rejections: int = 0
    migrations: int = 0
    reopt_calls: int = 0
    reopt_seconds: float = 0.0
    reopt_failures: int = 0
    tree_cache_hits: int = 0
    tree_cache_misses: int = 0
    edge_updates: int = 0
    incremental_reopts: int = 0
    incremental_fallbacks: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (used by churn results and experiment logs)."""
        return asdict(self)


@dataclass(frozen=True)
class ChurnEvent:
    """One trace event: an arrival (with demand and edges) or a departure."""

    kind: str  # "arrive" | "depart"
    task: int
    demand: float = 0.0
    edges: Tuple[Tuple[int, float], ...] = ()


class OnlinePlacer:
    """Incremental hierarchy-aware placement with budgeted re-optimisation.

    Parameters
    ----------
    hierarchy:
        The machine.
    config:
        Static-solver configuration used by :meth:`reoptimize`.
    max_violation:
        Leaf-load budget enforced by arrivals and migrations.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: Optional[SolverConfig] = None,
        max_violation: float = 1.0,
    ):
        self.hierarchy = hierarchy
        self.config = config or SolverConfig(n_trees=4, refine=False)
        self.max_violation = max_violation
        self._demand: Dict[int, float] = {}
        self._adj: Dict[int, Dict[int, float]] = {}
        self._leaf: Dict[int, int] = {}
        self._loads = np.zeros(hierarchy.k)
        #: Bumped on every topology change (arrive/depart or a new edge);
        #: the snapshot cache below is keyed on it.  Migrations move
        #: tasks between leaves but never change the graph, so
        #: re-optimisation and the cost probe after it reuse one build.
        self._topology_version = 0
        #: Bumped by pure weight updates (:meth:`update_edge` on an
        #: existing edge).  A weight-only change keeps the snapshot's
        #: structure arrays and patches weights via
        #: :meth:`repro.graph.graph.Graph.reweighted` — no CSR rebuild.
        self._weights_version = 0
        self._snapshot: Optional[
            Tuple[int, int, Graph, np.ndarray, List[int]]
        ] = None
        #: Tasks touched by churn since the last successful reoptimize:
        #: arrivals (plus their live neighbours), departure neighbours
        #: and edge-update endpoints.  Drives the incremental-vs-full
        #: gate in :meth:`reoptimize`; cleared after every successful
        #: re-optimisation.
        self._dirty: set = set()
        #: Aggregate event counters (arrivals, departures, rejections,
        #: migrations, re-optimisation calls/seconds).
        self.counters = OnlineCounters()
        #: Migrations performed by each :meth:`reoptimize` call, in call
        #: order — previously this per-call count was dropped.
        self.reopt_migrations: List[int] = []
        #: Run report of the most recent :meth:`reoptimize` engine run
        #: (``None`` until the first re-optimisation).
        self.last_report: Optional[RunReport] = None

    @property
    def migrations(self) -> int:
        """Total migrations performed across all re-optimisations."""
        return self.counters.migrations

    # ------------------------------------------------------------------
    # live-state queries
    # ------------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """Number of live tasks."""
        return len(self._demand)

    def leaf_of(self, task: int) -> int:
        """Current leaf of a live task."""
        return self._leaf[task]

    def live_graph(self) -> Tuple[Graph, np.ndarray, np.ndarray, List[int]]:
        """Snapshot: (graph, demands, leaf assignment, task ids in order).

        The graph/demand build is cached between topology changes
        (arrivals/departures bump a version counter); only the leaf
        assignment — which migrations mutate — is re-read per call.
        Pure weight updates (:meth:`update_edge` on an existing edge)
        keep the snapshot's structure arrays and only regather weights
        (:meth:`repro.graph.graph.Graph.reweighted`) — no re-sort, no
        CSR rebuild, no new demand vector.
        """
        cached = self._snapshot
        if cached is not None and cached[0] == self._topology_version:
            _tv, wv, g, d, tasks = cached
            if wv != self._weights_version:
                new_w = np.asarray(
                    [
                        self._adj[tasks[u]][tasks[v]]
                        for u, v in zip(g.edges_u, g.edges_v)
                    ],
                    dtype=np.float64,
                )
                g = g.reweighted(new_w)
                self._snapshot = (
                    self._topology_version,
                    self._weights_version,
                    g,
                    d,
                    tasks,
                )
        else:
            tasks = sorted(self._demand)
            index = {t: i for i, t in enumerate(tasks)}
            edges = []
            for t in tasks:
                for u, w in self._adj[t].items():
                    if u > t and u in index:
                        edges.append((index[t], index[u], w))
            g = Graph(len(tasks), edges)
            d = np.asarray([self._demand[t] for t in tasks])
            self._snapshot = (
                self._topology_version,
                self._weights_version,
                g,
                d,
                tasks,
            )
        leaf = np.asarray([self._leaf[t] for t in tasks], dtype=np.int64)
        return g, d, leaf, tasks

    def cost(self) -> float:
        """Current Eq. (1) cost of the live placement."""
        if not self._demand:
            return 0.0
        g, d, leaf, _tasks = self.live_graph()
        return Placement(g, self.hierarchy, d, leaf).cost()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def arrive(
        self, task: int, demand: float, edges: Tuple[Tuple[int, float], ...] = ()
    ) -> int:
        """Place a new task; returns its leaf.

        The leaf minimising the incremental Eq. (1) cost against already
        placed neighbours is chosen among leaves with room; least-loaded
        fallback when none fits.
        """
        if task in self._demand:
            raise InvalidInputError(f"task {task} is already live")
        if demand <= 0 or demand > self.hierarchy.leaf_capacity * self.max_violation:
            raise InvalidInputError(f"task {task}: bad demand {demand}")
        cm = np.asarray(self.hierarchy.cm)
        k = self.hierarchy.k
        inc = np.zeros(k)
        live_edges: Dict[int, float] = {}
        for other, w in edges:
            if w <= 0:
                raise InvalidInputError(f"edge to {other}: weight must be > 0")
            if other in self._leaf:
                live_edges[other] = live_edges.get(other, 0.0) + w
        for other, w in live_edges.items():
            lo = self._leaf[other]
            levels = np.asarray(
                self.hierarchy.lca_level(np.arange(k, dtype=np.int64), lo)
            )
            inc += cm[levels] * w
        budget = self.max_violation * self.hierarchy.leaf_capacity + 1e-12
        fits = self._loads + demand <= budget
        metrics = get_registry()
        if fits.any():
            cand = np.where(fits, inc, np.inf)
            leaf = int(np.argmin(cand + 1e-12 * self._loads))
        else:
            # No leaf has room within the budget: least-loaded fallback.
            # The task is still placed, but the budget is violated —
            # count it so operators can see overload instead of
            # discovering it from drifting costs.
            leaf = int(np.argmin(self._loads))
            self.counters.rejections += 1
            metrics.counter(
                "repro_online_rejections_total",
                "Arrivals that found no leaf within the load budget",
            ).inc()
        self._demand[task] = float(demand)
        self._adj.setdefault(task, {})
        for other, w in live_edges.items():
            self._adj[task][other] = w
            self._adj[other][task] = w
        self._leaf[task] = leaf
        self._loads[leaf] += demand
        self._topology_version += 1
        self._dirty.add(task)
        self._dirty.update(live_edges)
        self.counters.arrivals += 1
        metrics.counter(
            "repro_online_arrivals_total", "Tasks placed by the online placer"
        ).inc()
        metrics.gauge(
            "repro_online_live_tasks", "Currently live tasks"
        ).set(self.n_tasks)
        return leaf

    def depart(self, task: int) -> None:
        """Remove a live task and its edges."""
        if task not in self._demand:
            raise InvalidInputError(f"task {task} is not live")
        self._loads[self._leaf[task]] -= self._demand[task]
        for other in list(self._adj.get(task, ())):
            del self._adj[other][task]
            self._dirty.add(other)
        self._adj.pop(task, None)
        del self._demand[task]
        del self._leaf[task]
        self._dirty.discard(task)
        self._topology_version += 1
        self.counters.departures += 1
        metrics = get_registry()
        metrics.counter(
            "repro_online_departures_total", "Tasks removed from the online placer"
        ).inc()
        metrics.gauge(
            "repro_online_live_tasks", "Currently live tasks"
        ).set(self.n_tasks)

    def update_edge(self, a: int, b: int, weight: float) -> None:
        """Set the weight of the edge between two live tasks.

        Reweighting an existing edge is a *pure weight update*: the live
        graph keeps its topology, so the next :meth:`live_graph` call
        reuses the cached snapshot's structure arrays and only regathers
        weights.  Introducing a new edge (no current adjacency between
        ``a`` and ``b``) is a topology change and invalidates the
        snapshot like an arrival would.  Both endpoints join the dirty
        set driving :meth:`reoptimize`'s incremental-vs-full decision.
        """
        if a not in self._demand or b not in self._demand:
            raise InvalidInputError(
                f"both endpoints must be live tasks, got ({a}, {b})"
            )
        if a == b:
            raise InvalidInputError("self-loops are not allowed")
        if weight <= 0 or not np.isfinite(weight):
            raise InvalidInputError(
                f"edge ({a}, {b}): weight must be finite and > 0, got {weight}"
            )
        existed = b in self._adj.get(a, {})
        self._adj.setdefault(a, {})[b] = float(weight)
        self._adj.setdefault(b, {})[a] = float(weight)
        if existed:
            self._weights_version += 1
        else:
            self._topology_version += 1
        self._dirty.add(a)
        self._dirty.add(b)
        self.counters.edge_updates += 1
        get_registry().counter(
            "repro_online_edge_updates_total",
            "Edge-weight updates applied to the live graph",
        ).inc()

    # ------------------------------------------------------------------
    # re-optimisation
    # ------------------------------------------------------------------

    def reoptimize(self, migration_budget: Optional[int] = None) -> int:
        """Re-solve the static problem; adopt the best migrations.

        Parameters
        ----------
        migration_budget:
            Maximum tasks to move (``None`` = unlimited).

        Returns
        -------
        int
            Number of migrations performed.  Per-call counts are kept in
            :attr:`reopt_migrations` and aggregate event counts in
            :attr:`counters`.
        """
        if self.n_tasks <= 1:
            return 0
        t0 = time.perf_counter()
        moved = self._reoptimize(migration_budget)
        elapsed = time.perf_counter() - t0
        self.counters.reopt_calls += 1
        self.counters.reopt_seconds += elapsed
        self.counters.migrations += moved
        self.reopt_migrations.append(moved)
        metrics = get_registry()
        metrics.counter(
            "repro_online_reopts_total", "Budgeted re-optimisation calls"
        ).inc()
        metrics.counter(
            "repro_online_migrations_total", "Tasks migrated by re-optimisation"
        ).inc(moved)
        metrics.histogram(
            "repro_online_reoptimize_seconds",
            "Wall-clock seconds of one reoptimize() call",
        ).observe(elapsed)
        return moved

    def _reoptimize(self, migration_budget: Optional[int]) -> int:
        """The re-optimisation itself; returns migrations performed."""
        g, d, current, tasks = self.live_graph()
        from repro.core.engine import incremental_enabled, run_pipeline
        from repro.baselines.local_search import enforce_capacity

        # Incremental-vs-full decision: when the fraction of live tasks
        # touched since the last successful reoptimize exceeds
        # ``incremental.max_dirty_frac``, per-subtree memo probes are
        # pure overhead (most digests changed), so the solve runs plain.
        # Placements are bit-identical either way — the memo never
        # changes table contents, only whether they are rebuilt.
        inc = getattr(self.config, "incremental", None)
        warm_capable = inc is not None and incremental_enabled(self.config)
        dirty_live = sum(1 for t in self._dirty if t in self._demand)
        dirty_frac = dirty_live / max(1, self.n_tasks)
        use_warm = bool(warm_capable and dirty_frac <= inc.max_dirty_frac)
        run_cfg = self.config
        if inc is not None and use_warm != inc.enabled:
            run_cfg = replace(
                self.config, incremental=replace(inc, enabled=use_warm)
            )

        tel = Telemetry("streaming")
        tel.counter("live_tasks", float(g.n))
        try:
            result = run_pipeline(
                g, self.hierarchy, d, run_cfg, telemetry=tel
            )
        except DegradedRunError:
            # A background re-optimisation is an *improvement* attempt:
            # losing it must never take the placer down.  Keep serving
            # the current placement and surface the failure through the
            # counter + metric; the next call retries from scratch.
            # The dirty set is kept — the region is still unresolved.
            self.counters.reopt_failures += 1
            get_registry().counter(
                "repro_online_reopt_failures_total",
                "Re-optimisations abandoned after a degraded engine run",
            ).inc()
            return 0
        if warm_capable:
            if use_warm:
                self.counters.incremental_reopts += 1
                get_registry().counter(
                    "repro_incremental_reopts_total",
                    "Re-optimisations run through the subtree-memo warm path",
                ).inc()
            else:
                self.counters.incremental_fallbacks += 1
                get_registry().counter(
                    "repro_incremental_fallbacks_total",
                    "Re-optimisations forced to a full solve by the "
                    "dirty-fraction gate",
                ).inc()
        self._dirty.clear()
        self.last_report = result.report(
            live_tasks=g.n, dirty_frac=round(dirty_frac, 6)
        )
        trees_span = tel.root.lookup("trees")
        if trees_span is not None:
            self.counters.tree_cache_hits += int(
                trees_span.counters.get("cache_hits", 0)
            )
            self.counters.tree_cache_misses += int(
                trees_span.counters.get("cache_misses", 0)
            )
        target = enforce_capacity(result.placement, self.max_violation)
        diffs = [i for i in range(g.n) if current[i] != target.leaf_of[i]]
        current_cost = Placement(g, self.hierarchy, d, current).cost()
        if (migration_budget is None or migration_budget >= len(diffs)) and (
            target.cost() < current_cost - 1e-12
        ):
            # Budget covers the full diff: adopt the target wholesale —
            # greedy per-task adoption cannot execute joint cluster moves
            # whose individual steps have negative gain.
            loads = np.zeros(self.hierarchy.k)
            np.add.at(loads, target.leaf_of, d)
            for i, t in enumerate(tasks):
                self._leaf[t] = int(target.leaf_of[i])
            self._loads = loads
            return len(diffs)
        moved = 0
        leaf = current.copy()
        cm = np.asarray(self.hierarchy.cm)
        loads = self._loads.copy()
        budget_load = self.max_violation * self.hierarchy.leaf_capacity + 1e-12

        # Flattened adjacency, built once per re-optimisation (topology is
        # fixed inside the call): owner[e] / nbr[e] / w[e] per directed
        # half-edge.  Each loop iteration then prices every candidate
        # move in one vectorised pass over the half-edges — the old code
        # re-ran a per-task Python gain() for all pending tasks after
        # every single migration.
        tgt = np.asarray(target.leaf_of, dtype=np.int64)
        nbr_blocks = [g.neighbors(i) for i in range(g.n)]
        counts = np.asarray([b.size for b in nbr_blocks], dtype=np.int64)
        if counts.sum():
            flat_owner = np.repeat(np.arange(g.n, dtype=np.int64), counts)
            flat_nbr = np.concatenate(nbr_blocks)
            flat_w = np.concatenate([g.neighbor_weights(i) for i in range(g.n)])
        else:
            flat_owner = np.empty(0, dtype=np.int64)
            flat_nbr = np.empty(0, dtype=np.int64)
            flat_w = np.empty(0)

        def all_gains() -> np.ndarray:
            """Per-task cost reduction of moving it to its target leaf."""
            gains = np.zeros(g.n)
            if flat_owner.size:
                nl = leaf[flat_nbr]
                before = cm[np.asarray(self.hierarchy.lca_level(leaf[flat_owner], nl))]
                after = cm[np.asarray(self.hierarchy.lca_level(tgt[flat_owner], nl))]
                np.add.at(gains, flat_owner, (before - after) * flat_w)
            gains[leaf == tgt] = 0.0
            return gains

        pending = [i for i in range(g.n) if leaf[i] != target.leaf_of[i]]
        while pending and (migration_budget is None or moved < migration_budget):
            pend = np.asarray(pending, dtype=np.int64)
            gains = all_gains()[pend]
            # Descending (gain, task) — the order the old tuple sort used.
            order = np.lexsort((pend, gains))[::-1]
            applied = False
            for k in order:
                gval, i = float(gains[k]), int(pend[k])
                if gval <= 1e-12:
                    break
                dst = int(target.leaf_of[i])
                if loads[dst] + d[i] > budget_load:
                    continue
                loads[int(leaf[i])] -= d[i]
                loads[dst] += d[i]
                leaf[i] = dst
                pending.remove(i)
                moved += 1
                applied = True
                break
            if not applied:
                break

        for i, t in enumerate(tasks):
            if self._leaf[t] != int(leaf[i]):
                self._leaf[t] = int(leaf[i])
        self._loads = loads
        return moved


@dataclass
class ChurnResult:
    """What one churn replay produced.

    Iterating yields ``(costs, migrations)`` so the pre-observability
    two-value unpacking keeps working; new callers read the richer
    fields directly.

    Attributes
    ----------
    costs:
        Eq. (1) cost after every event.
    migrations:
        Total migrations performed.
    counters:
        The placer's aggregate event counters (arrivals, departures,
        rejections, migrations, re-optimisation calls/seconds).
    reopt_migrations:
        Migrations adopted by each :meth:`OnlinePlacer.reoptimize` call,
        in call order.
    """

    costs: List[float]
    migrations: int
    counters: OnlineCounters = field(default_factory=OnlineCounters)
    reopt_migrations: List[int] = field(default_factory=list)

    def __iter__(self) -> Iterator[object]:
        yield self.costs
        yield self.migrations


def simulate_churn(
    hierarchy: Hierarchy,
    events: List[ChurnEvent],
    reopt_period: int = 0,
    migration_budget: Optional[int] = None,
    config: Optional[SolverConfig] = None,
    max_violation: float = 1.0,
) -> ChurnResult:
    """Replay a churn trace under one re-optimisation policy.

    Parameters
    ----------
    hierarchy:
        The machine.
    events:
        Arrival/departure trace (see :func:`make_churn_trace` in the
        bench for a generator).
    reopt_period:
        Re-optimise every this many events (0 = never).
    migration_budget:
        Migrations allowed per re-optimisation (``None`` = unlimited).
    config, max_violation:
        Forwarded to :class:`OnlinePlacer`.

    Returns
    -------
    ChurnResult
        Cost trajectory, migrations and the placer's event counters
        (unpacks as ``(costs, migrations)`` for legacy callers).
    """
    placer = OnlinePlacer(hierarchy, config=config, max_violation=max_violation)
    costs: List[float] = []
    for i, ev in enumerate(events, start=1):
        if ev.kind == "arrive":
            placer.arrive(ev.task, ev.demand, ev.edges)
        elif ev.kind == "depart":
            placer.depart(ev.task)
        else:
            raise InvalidInputError(f"unknown event kind {ev.kind!r}")
        if reopt_period and i % reopt_period == 0 and placer.n_tasks > 1:
            placer.reoptimize(migration_budget)
        costs.append(placer.cost())
    return ChurnResult(
        costs=costs,
        migrations=placer.migrations,
        counters=placer.counters,
        reopt_migrations=list(placer.reopt_migrations),
    )
