"""Streaming operator DAG model (the paper's Section 1 motivation).

A minimal but faithful model of a parallelized data-stream processing
system in the TidalRace / Infosphere Streams / Storm family: a DAG of
operators between stream sources and sinks, each with a per-tuple CPU
service cost and a selectivity (output tuples per input tuple).  Given
source input rates, rates propagate through the DAG in topological order;
every edge then carries a *traffic volume* (tuples/s × bytes/tuple) —
exactly the edge weights the HGP instance will see.

The model is analytic (no event simulation needed to capture the
placement question): throughput limits come from core utilisation, which
:mod:`repro.streaming.simulator` evaluates for any placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError

__all__ = ["Operator", "StreamDAG"]


@dataclass(frozen=True)
class Operator:
    """One streaming operator.

    Attributes
    ----------
    name:
        Human-readable label.
    service_cost:
        CPU-seconds consumed per input tuple (fraction of one core at
        rate 1 tuple/s).
    selectivity:
        Output tuples emitted per input tuple (> 1 for splitters /
        windows, < 1 for filters/aggregations, 0 for sinks).
    tuple_bytes:
        Size of each emitted tuple.
    source_rate:
        Exogenous input rate in tuples/s (> 0 marks the operator as a
        source).
    """

    name: str
    service_cost: float = 1e-4
    selectivity: float = 1.0
    tuple_bytes: float = 100.0
    source_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.service_cost < 0:
            raise InvalidInputError(f"{self.name}: service_cost must be >= 0")
        if self.selectivity < 0:
            raise InvalidInputError(f"{self.name}: selectivity must be >= 0")
        if self.tuple_bytes <= 0:
            raise InvalidInputError(f"{self.name}: tuple_bytes must be > 0")
        if self.source_rate < 0:
            raise InvalidInputError(f"{self.name}: source_rate must be >= 0")


class StreamDAG:
    """A directed acyclic graph of streaming operators.

    Edges carry a ``share``: the fraction of the producer's output stream
    routed to that consumer (shares out of one producer should sum to
    ≤ 1 for partitioned fan-out, or each be 1.0 for replicated fan-out).
    """

    def __init__(self) -> None:
        self.operators: List[Operator] = []
        self.edges: List[Tuple[int, int, float]] = []
        self._succ: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    def add_operator(self, op: Operator) -> int:
        """Register an operator; returns its integer id."""
        self.operators.append(op)
        return len(self.operators) - 1

    def add_edge(self, src: int, dst: int, share: float = 1.0) -> None:
        """Connect producer ``src`` to consumer ``dst``.

        ``share`` is the fraction of ``src``'s output sent along this
        edge.
        """
        n = len(self.operators)
        if not (0 <= src < n and 0 <= dst < n) or src == dst:
            raise InvalidInputError(f"bad stream edge ({src}, {dst})")
        if not (0 < share <= 1.0):
            raise InvalidInputError(f"share must be in (0, 1], got {share}")
        self.edges.append((src, dst, share))
        self._succ.setdefault(src, []).append(len(self.edges) - 1)

    @property
    def n_operators(self) -> int:
        """Number of registered operators."""
        return len(self.operators)

    # ------------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Operators in topological order; raises on cycles."""
        n = self.n_operators
        indeg = [0] * n
        for _, dst, _ in self.edges:
            indeg[dst] += 1
        queue = [v for v in range(n) if indeg[v] == 0]
        order: List[int] = []
        succ_by_node: Dict[int, List[int]] = {}
        for src, dst, _ in self.edges:
            succ_by_node.setdefault(src, []).append(dst)
        while queue:
            v = queue.pop()
            order.append(v)
            for u in succ_by_node.get(v, []):
                indeg[u] -= 1
                if indeg[u] == 0:
                    queue.append(u)
        if len(order) != n:
            raise InvalidInputError("stream graph contains a cycle")
        return order

    def propagate_rates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Steady-state rates.

        Returns
        -------
        (op_input_rate, edge_traffic):
            ``op_input_rate[v]`` — total tuples/s entering operator ``v``
            (including its own ``source_rate``); ``edge_traffic[e]`` —
            bytes/s on edge ``e`` (aligned with :attr:`edges`).
        """
        n = self.n_operators
        in_rate = np.zeros(n)
        for v, op in enumerate(self.operators):
            in_rate[v] += op.source_rate
        edge_traffic = np.zeros(len(self.edges))
        for v in self.topological_order():
            op = self.operators[v]
            out_rate = in_rate[v] * op.selectivity
            for eid in self._succ.get(v, []):
                src, dst, share = self.edges[eid]
                rate = out_rate * share
                in_rate[dst] += rate
                edge_traffic[eid] = rate * op.tuple_bytes
        return in_rate, edge_traffic

    def cpu_demands(self, relative_to: Optional[float] = None) -> np.ndarray:
        """Per-operator CPU utilisation at the nominal source rates.

        ``cpu[v] = in_rate[v] · service_cost[v]``; with ``relative_to``
        set, demands are rescaled so their maximum equals that value
        (useful to build feasible HGP instances).
        """
        in_rate, _ = self.propagate_rates()
        cpu = np.array(
            [in_rate[v] * self.operators[v].service_cost for v in range(self.n_operators)]
        )
        if relative_to is not None:
            peak = cpu.max() if cpu.size else 0.0
            if peak > 0:
                cpu = cpu * (relative_to / peak)
        return cpu

    def communication_graph(self) -> Tuple[int, List[Tuple[int, int, float]]]:
        """Undirected communication view: ``(n, [(u, v, bytes/s), ...])``.

        Parallel/opposite edges merge by traffic summation (handled by
        :class:`repro.graph.Graph`'s constructor); zero-traffic edges are
        dropped.
        """
        _, traffic = self.propagate_rates()
        triples = [
            (src, dst, float(t))
            for (src, dst, _), t in zip(self.edges, traffic)
            if t > 0
        ]
        return self.n_operators, triples
