"""Bridging streaming workloads and the HGP solver.

``dag_to_instance`` converts a :class:`StreamDAG` into the HGP triple
``(Graph, demands)`` — communication traffic becomes edge weights, CPU
utilisation becomes vertex demand — and ``place_dag`` runs any placement
method end-to-end, returning both the placement and its throughput
report.  This is the code path a user of the original system would
actually call: "here is my query workload and my server, pin it."
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InvalidInputError
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.placement import Placement
from repro.core.config import SolverConfig
from repro.core.telemetry import Telemetry
from repro.streaming.operators import StreamDAG
from repro.streaming.simulator import CommCostModel, ThroughputReport, evaluate_placement

__all__ = ["dag_to_instance", "place_dag"]


def dag_to_instance(
    dag: StreamDAG,
    hierarchy: Hierarchy,
    target_fill: float = 0.7,
    min_demand: float = 1e-3,
) -> Tuple[Graph, np.ndarray]:
    """Convert a stream DAG into an HGP instance.

    CPU demands are rescaled so the aggregate equals ``target_fill``
    times the hierarchy's capacity (placements should be load-feasible
    but non-trivial); traffic becomes undirected edge weight.

    Returns
    -------
    (Graph, numpy.ndarray)
        Communication graph and per-operator demand vector.
    """
    if not (0 < target_fill <= 1):
        raise InvalidInputError(f"target_fill must be in (0, 1], got {target_fill}")
    n, triples = dag.communication_graph()
    g = Graph(n, triples)
    cpu = dag.cpu_demands()
    total = float(cpu.sum())
    if total <= 0:
        demands = np.full(n, min_demand)
    else:
        demands = cpu / total * (target_fill * hierarchy.total_capacity)
    demands = np.clip(demands, min_demand, hierarchy.leaf_capacity)
    return g, demands


def place_dag(
    dag: StreamDAG,
    hierarchy: Hierarchy,
    method: str = "hgp",
    config: Optional[SolverConfig] = None,
    model: Optional[CommCostModel] = None,
    seed: int | None = 0,
    replicate_hot: bool = False,
    max_utilisation: float = 0.8,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Placement, ThroughputReport]:
    """Pin a streaming workload onto a core hierarchy and score it.

    Parameters
    ----------
    dag:
        Workload.
    hierarchy:
        Core hierarchy.
    method:
        ``"hgp"`` (the paper's algorithm) or any key of
        :func:`repro.baselines.placement_baselines`.
    config:
        Solver configuration for the ``"hgp"`` method.
    model:
        Communication tax model for the throughput report.
    seed:
        Seed forwarded to baseline methods.
    replicate_hot:
        First split operators hotter than ``max_utilisation`` of a core
        into data-parallel replicas (see
        :func:`repro.streaming.replicate.auto_replicate`); the returned
        placement then covers the *transformed* DAG's operators.
    max_utilisation:
        Per-replica CPU budget used when ``replicate_hot`` is set.
    telemetry:
        Collector threaded through the ``"hgp"`` engine run (``None`` =
        a fresh ``Telemetry("streaming")``); ignored by baselines.

    Returns
    -------
    (Placement, ThroughputReport)
    """
    if replicate_hot:
        from repro.streaming.replicate import auto_replicate

        dag, _applied = auto_replicate(dag, max_utilisation=max_utilisation)
    g, demands = dag_to_instance(dag, hierarchy)
    if method == "hgp":
        from repro.core.engine import run_pipeline

        cfg = config if config is not None else SolverConfig(seed=seed or 0)
        tel = telemetry if telemetry is not None else Telemetry("streaming")
        placement = run_pipeline(g, hierarchy, demands, cfg, telemetry=tel).placement
    else:
        from repro.baselines import placement_baselines

        registry = placement_baselines()
        if method not in registry:
            raise InvalidInputError(
                f"unknown method {method!r}; use 'hgp' or one of {sorted(registry)}"
            )
        placement = registry[method](g, hierarchy, demands, seed=seed)
    report = evaluate_placement(dag, hierarchy, placement.leaf_of, model=model)
    return placement, report
