"""Operator replication (data parallelism) for hot operators.

A single operator whose CPU demand exceeds one core cannot be placed at
all — stream systems split such operators into data-parallel replicas,
each handling a share of the input (Storm's parallelism hints, Streams'
UDP channels).  This module adds that transform on top of
:class:`repro.streaming.StreamDAG`:

* :func:`replicate_operator` — replace one operator by ``factor``
  replicas; every incoming edge's share splits evenly across replicas,
  every outgoing edge is re-emitted per replica.  Steady-state rates of
  all *other* operators are exactly preserved (asserted in tests).
* :func:`auto_replicate` — one pass that replicates every operator whose
  utilisation at nominal rates exceeds ``max_utilisation`` of a core,
  with the minimal sufficient factor.

Replication is placement-friendly by construction: replicas inherit a
fraction of the original traffic to each neighbour, so the HGP solver
can co-locate each replica with its share of producers/consumers.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Tuple

from repro.errors import InvalidInputError
from repro.streaming.operators import Operator, StreamDAG

__all__ = ["replicate_operator", "auto_replicate"]


def replicate_operator(dag: StreamDAG, op: int, factor: int) -> StreamDAG:
    """Return a new DAG with operator ``op`` split into ``factor`` replicas.

    Parameters
    ----------
    dag:
        Source DAG (not modified).
    op:
        Operator id to replicate.
    factor:
        Number of replicas, ``>= 1`` (1 returns an equivalent copy).

    Notes
    -----
    Incoming edges split their ``share`` evenly across replicas; each
    replica emits the original outgoing edges (its output rate is
    ``1/factor`` of the original, so totals are conserved).  Source
    operators split their exogenous ``source_rate`` likewise.
    """
    if not (0 <= op < dag.n_operators):
        raise InvalidInputError(f"operator {op} out of range")
    if factor < 1:
        raise InvalidInputError(f"factor must be >= 1, got {factor}")

    out = StreamDAG()
    # id mapping: original -> new id(s)
    replica_ids: List[int] = []
    id_map: Dict[int, int] = {}
    for v, oper in enumerate(dag.operators):
        if v == op:
            for r in range(factor):
                rid = out.add_operator(
                    replace(
                        oper,
                        name=f"{oper.name}#r{r}",
                        source_rate=oper.source_rate / factor,
                    )
                )
                replica_ids.append(rid)
            id_map[v] = replica_ids[0]
        else:
            id_map[v] = out.add_operator(oper)

    for src, dst, share in dag.edges:
        if src == op and dst == op:  # pragma: no cover - self loops rejected upstream
            continue
        if dst == op:
            for rid in replica_ids:
                out.add_edge(id_map[src], rid, share=share / factor)
        elif src == op:
            for rid in replica_ids:
                out.add_edge(rid, id_map[dst], share=share)
        else:
            out.add_edge(id_map[src], id_map[dst], share=share)
    return out


def auto_replicate(
    dag: StreamDAG,
    max_utilisation: float = 0.8,
    max_factor: int = 16,
) -> Tuple[StreamDAG, Dict[str, int]]:
    """Replicate every operator hotter than ``max_utilisation`` of a core.

    Parameters
    ----------
    dag:
        Workload at nominal rates.
    max_utilisation:
        Per-replica CPU budget in core fractions.
    max_factor:
        Upper bound on any single operator's replication factor.

    Returns
    -------
    (StreamDAG, dict)
        The transformed DAG and a map ``original name -> factor`` for
        the operators that were split.

    Notes
    -----
    One pass suffices: replication never changes any *other* operator's
    input rate, so hotness is computed once on the input DAG.
    """
    if not (0 < max_utilisation):
        raise InvalidInputError(
            f"max_utilisation must be > 0, got {max_utilisation}"
        )
    in_rate, _ = dag.propagate_rates()
    factors: Dict[int, int] = {}
    for v, oper in enumerate(dag.operators):
        util = float(in_rate[v]) * oper.service_cost
        if util > max_utilisation:
            factors[v] = min(max_factor, math.ceil(util / max_utilisation))

    result = dag
    applied: Dict[str, int] = {}
    # Apply in descending id order so earlier ids stay valid.
    for v in sorted(factors, reverse=True):
        name = dag.operators[v].name
        # Recompute the operator's id in `result`: ids below v are stable
        # because replication of higher ids appends/remaps only ids > v.
        result = replicate_operator(result, _locate(result, name), factors[v])
        applied[name] = factors[v]
    return result, applied


def _locate(dag: StreamDAG, name: str) -> int:
    for v, oper in enumerate(dag.operators):
        if oper.name == name:
            return v
    raise InvalidInputError(f"operator named {name!r} not found")
