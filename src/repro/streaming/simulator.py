"""Throughput evaluation of operator placements.

The analytic model behind the paper's motivating observation ("pinning
strongly-communicating tasks on nearby cores improves maximum
throughput"):

* each operator consumes ``in_rate · service_cost`` of its core;
* every byte crossing cores costs *both* endpoint cores CPU time, scaled
  by how far apart they are in the hierarchy — co-located (same core)
  traffic is free (shared L1/L2), same-socket traffic pays the base tax,
  cross-socket traffic pays more (the ``comm_tax`` vector mirrors
  ``cm``);
* input rates scale uniformly by λ until the busiest core saturates:
  ``max throughput = 1 / max_core_utilisation`` at nominal rates.

Minimising Eq. (1) with traffic edge weights is exactly minimising the
aggregate communication tax, so better HGP placements yield higher λ*;
experiment E9 quantifies the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import InvalidInputError
from repro.hierarchy.hierarchy import Hierarchy
from repro.streaming.operators import StreamDAG

__all__ = ["CommCostModel", "ThroughputReport", "evaluate_placement"]


@dataclass(frozen=True)
class CommCostModel:
    """CPU tax per byte/s of traffic, by LCA level of the endpoint cores.

    ``tax[j]`` applies to traffic whose endpoint leaves meet at level
    ``j``; it must be non-increasing in ``j`` and ``tax[h]`` (co-located)
    is usually 0.  Units: core-fraction per (byte/s), split evenly
    between sender and receiver.
    """

    tax: tuple

    @classmethod
    def for_hierarchy(
        cls, hierarchy: Hierarchy, base: float = 1e-7, ratio: float = 4.0
    ) -> "CommCostModel":
        """Geometric tax profile: level ``h`` free, each level up costs
        ``ratio×`` more, starting at ``base`` for level ``h − 1``."""
        h = hierarchy.h
        tax = [0.0] * (h + 1)
        for j in range(h - 1, -1, -1):
            tax[j] = base * (ratio ** (h - 1 - j))
        return cls(tuple(tax))

    def __post_init__(self) -> None:
        t = self.tax
        if any(a < 0 for a in t):
            raise InvalidInputError("taxes must be >= 0")
        if any(t[i] < t[i + 1] for i in range(len(t) - 1)):
            raise InvalidInputError("taxes must be non-increasing by level")


@dataclass
class ThroughputReport:
    """Result of :func:`evaluate_placement`.

    Attributes
    ----------
    max_scale:
        λ*: the factor by which all source rates can grow before a core
        saturates (``> 1`` = headroom, ``< 1`` = overload at nominal).
    core_utilisation:
        Per-core utilisation at nominal rates.
    comm_fraction:
        Fraction of total CPU burned on communication tax.
    traffic_by_level:
        Bytes/s of traffic whose endpoints meet at each hierarchy level.
    """

    max_scale: float
    core_utilisation: np.ndarray
    comm_fraction: float
    traffic_by_level: np.ndarray


def evaluate_placement(
    dag: StreamDAG,
    hierarchy: Hierarchy,
    leaf_of: Sequence[int],
    model: Optional[CommCostModel] = None,
) -> ThroughputReport:
    """Evaluate a pin assignment of operators to cores.

    Parameters
    ----------
    dag:
        The streaming workload.
    hierarchy:
        Core hierarchy (leaves = cores).
    leaf_of:
        Core id per operator.
    model:
        Communication tax model (default: geometric
        :meth:`CommCostModel.for_hierarchy`).
    """
    leaf_of = np.asarray(leaf_of, dtype=np.int64)
    if leaf_of.shape != (dag.n_operators,):
        raise InvalidInputError(
            f"leaf_of must have shape ({dag.n_operators},), got {leaf_of.shape}"
        )
    if dag.n_operators and (leaf_of.min() < 0 or leaf_of.max() >= hierarchy.k):
        raise InvalidInputError("operator pinned to a non-existent core")
    if model is None:
        model = CommCostModel.for_hierarchy(hierarchy)
    if len(model.tax) != hierarchy.h + 1:
        raise InvalidInputError(
            f"tax model has {len(model.tax)} levels, hierarchy needs "
            f"{hierarchy.h + 1}"
        )

    in_rate, traffic = dag.propagate_rates()
    util = np.zeros(hierarchy.k)
    compute_total = 0.0
    for v, op in enumerate(dag.operators):
        load = float(in_rate[v]) * op.service_cost
        util[leaf_of[v]] += load
        compute_total += load

    tax = np.asarray(model.tax)
    traffic_by_level = np.zeros(hierarchy.h + 1)
    comm_total = 0.0
    for (src, dst, _share), t in zip(dag.edges, traffic):
        if t <= 0:
            continue
        level = int(hierarchy.lca_level(int(leaf_of[src]), int(leaf_of[dst])))
        traffic_by_level[level] += t
        cost = float(t) * float(tax[level])
        util[leaf_of[src]] += cost / 2.0
        util[leaf_of[dst]] += cost / 2.0
        comm_total += cost

    peak = float(util.max()) if util.size else 0.0
    max_scale = float("inf") if peak <= 0 else 1.0 / peak
    total = compute_total + comm_total
    return ThroughputReport(
        max_scale=max_scale,
        core_utilisation=util,
        comm_fraction=0.0 if total <= 0 else comm_total / total,
        traffic_by_level=traffic_by_level,
    )
