"""Synthetic streaming-query workload generator.

Stand-in for the AT&T TidalRace production traces the paper's authors
optimised (DESIGN.md substitution note): multi-query workloads whose
topology mixes the three canonical stream shapes —

* **pipelines** (parse → filter → enrich → project chains),
* **aggregation trees** (parallel partial aggregation with fan-in), and
* **diamonds** (split into parallel branches, re-join),

plus shared sources across queries and skewed source rates/selectivities.
These are exactly the structures that make placement matter: pipelines
want to be co-located end-to-end, aggregation trees want each subtree on
one socket, diamonds want both branches near their join.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import InvalidInputError
from repro.streaming.operators import Operator, StreamDAG
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["pipeline_query", "aggregation_query", "diamond_query", "random_workload"]


def pipeline_query(
    dag: StreamDAG, source: int, length: int, rng: np.random.Generator
) -> int:
    """Append a linear operator chain below ``source``; returns the sink id."""
    prev = source
    for i in range(length):
        op = Operator(
            name=f"pipe{source}_{i}",
            service_cost=float(rng.uniform(0.5e-4, 2e-4)),
            selectivity=float(rng.uniform(0.4, 1.0)),
            tuple_bytes=float(rng.uniform(50, 200)),
        )
        nid = dag.add_operator(op)
        dag.add_edge(prev, nid)
        prev = nid
    return prev


def aggregation_query(
    dag: StreamDAG, sources: List[int], rng: np.random.Generator
) -> int:
    """Binary fan-in aggregation tree over ``sources``; returns the root id."""
    layer = list(sources)
    depth = 0
    while len(layer) > 1:
        nxt: List[int] = []
        for i in range(0, len(layer) - 1, 2):
            op = Operator(
                name=f"agg_d{depth}_{i}",
                service_cost=float(rng.uniform(1e-4, 3e-4)),
                selectivity=float(rng.uniform(0.05, 0.3)),  # aggregations shrink
                tuple_bytes=float(rng.uniform(30, 100)),
            )
            nid = dag.add_operator(op)
            dag.add_edge(layer[i], nid)
            dag.add_edge(layer[i + 1], nid)
            nxt.append(nid)
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
        depth += 1
    return layer[0]


def diamond_query(
    dag: StreamDAG, source: int, branches: int, depth: int, rng: np.random.Generator
) -> int:
    """Split → parallel branches → join; returns the join id."""
    split = dag.add_operator(
        Operator(
            name=f"split{source}",
            service_cost=float(rng.uniform(0.3e-4, 1e-4)),
            selectivity=1.0,
        )
    )
    dag.add_edge(source, split)
    heads: List[int] = []
    for b in range(branches):
        prev = split
        for i in range(depth):
            op = Operator(
                name=f"dia{source}_b{b}_{i}",
                service_cost=float(rng.uniform(0.5e-4, 2e-4)),
                selectivity=float(rng.uniform(0.5, 1.0)),
                tuple_bytes=float(rng.uniform(50, 200)),
            )
            nid = dag.add_operator(op)
            dag.add_edge(prev, nid, share=1.0 / branches if prev == split else 1.0)
            prev = nid
        heads.append(prev)
    join = dag.add_operator(
        Operator(
            name=f"join{source}",
            service_cost=float(rng.uniform(1e-4, 4e-4)),
            selectivity=float(rng.uniform(0.3, 0.8)),
        )
    )
    for head in heads:
        dag.add_edge(head, join)
    return join


def random_workload(
    n_queries: int = 4,
    n_sources: int = 3,
    seed: SeedLike = None,
) -> StreamDAG:
    """Generate a mixed multi-query workload over shared sources.

    Parameters
    ----------
    n_queries:
        Number of queries appended (shape drawn uniformly from pipeline /
        aggregation / diamond).
    n_sources:
        Shared source operators with lognormal-skewed input rates.
    seed:
        RNG seed.

    Returns
    -------
    StreamDAG
        A connected DAG whose communication graph typically has
        ``15–40 · n_queries`` operators.
    """
    if n_queries < 1 or n_sources < 1:
        raise InvalidInputError("need n_queries >= 1 and n_sources >= 1")
    rng = ensure_rng(seed)
    dag = StreamDAG()
    sources = [
        dag.add_operator(
            Operator(
                name=f"src{i}",
                service_cost=float(rng.uniform(0.2e-4, 0.5e-4)),
                selectivity=1.0,
                tuple_bytes=float(rng.uniform(100, 400)),
                source_rate=float(rng.lognormal(mean=8.0, sigma=0.6)),
            )
        )
        for i in range(n_sources)
    ]
    for _q in range(n_queries):
        kind = rng.integers(0, 3)
        if kind == 0:
            src = int(sources[rng.integers(0, n_sources)])
            pipeline_query(dag, src, int(rng.integers(3, 8)), rng)
        elif kind == 1:
            # Aggregate over per-source pre-filters.
            heads = []
            for s in sources:
                pre = dag.add_operator(
                    Operator(
                        name=f"pre{s}_{_q}",
                        service_cost=float(rng.uniform(0.5e-4, 1.5e-4)),
                        selectivity=float(rng.uniform(0.3, 0.9)),
                    )
                )
                dag.add_edge(int(s), pre)
                heads.append(pre)
            aggregation_query(dag, heads, rng)
        else:
            src = int(sources[rng.integers(0, n_sources)])
            diamond_query(
                dag, src, int(rng.integers(2, 4)), int(rng.integers(2, 4)), rng
            )
    return dag
