"""Test-support utilities that ship with the library.

Only :mod:`repro.testing.faults` lives here today: the env-gated fault
injection harness the chaos tests (and the CI ``chaos`` job) use to
exercise the resilience layer.  Everything in this package is inert in
production — the hooks are no-ops unless ``REPRO_FAULT_SPEC`` is set.
"""

from repro.testing.faults import (
    FaultSpec,
    InjectedFaultError,
    active_specs,
    maybe_inject,
    parse_fault_spec,
)

__all__ = [
    "FaultSpec",
    "InjectedFaultError",
    "active_specs",
    "maybe_inject",
    "parse_fault_spec",
]
