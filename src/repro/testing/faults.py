"""Deterministic, env-gated fault injection for chaos testing.

The resilience layer (:mod:`repro.core.resilience`) promises recovery
from crashed workers, hung solves and corrupt spool/cache entries.
Those failures are hard to produce organically and impossible to produce
*deterministically*, so the library's own fault sites call
:func:`maybe_inject` at well-defined points and this module decides —
purely from the ``REPRO_FAULT_SPEC`` environment variable — whether to
fire a fault there.  With the variable unset every hook is a cheap
no-op, so production runs pay one ``os.environ`` lookup per member.

Spec grammar
------------
``REPRO_FAULT_SPEC`` holds one or more specs separated by ``;``::

    spec     = kind [":" key "=" value]*
    kind     = "worker_crash" | "worker_hang" | "member_error"
             | "spool_corrupt" | "cache_corrupt"
             | "serve_slow_client" | "serve_flood"
    key      = "member" | "attempt" | "seconds" | "exit" | "kind" | "every"

Examples::

    worker_crash:member=2:attempt=1      # kill the worker solving member 2,
                                         # but only on its first attempt
    worker_hang:member=1:seconds=60      # member 1's solve sleeps 60 s
    member_error:member=0                # member 0 raises on every attempt
    spool_corrupt:attempt=1              # generation payload reads fail once
    cache_corrupt:kind=trees             # disk-cache reads of tree ensembles
                                         # see garbage bytes
    serve_slow_client:seconds=2          # placement clients stall 2 s between
                                         # sending headers and body (slow-loris)
    serve_flood:every=3                  # every 3rd serve admission behaves as
                                         # if the queue were full (shed/503)

Constraint keys restrict where a spec fires: ``member`` and ``attempt``
must equal the site's context values when present; omitting a key means
"any".  ``worker_crash`` and ``worker_hang`` additionally require the
site to be inside a pool worker — they never fire on the engine's
in-process (serial) attempts, which would take the parent down with
them; use ``member_error`` to make a member unrecoverable across *all*
attempts including the serial fallback.

``every=N`` is an *effect* parameter available on every kind: the spec
fires only on every Nth matching site visit (a deterministic per-process
counter), so chaos runs can mix faulty and healthy traffic — e.g.
``serve_flood:every=3`` sheds a third of admissions while the rest
solve normally.

Injection sites
---------------
``member``
    Entered once per member solve attempt (pool worker *and* serial
    fallback).  ``worker_crash`` calls ``os._exit``, ``worker_hang``
    sleeps, ``member_error`` raises :class:`InjectedFaultError`.
``spool``
    Entered in the pool worker just before the generation payload is
    unpickled; ``spool_corrupt`` raises ``pickle.UnpicklingError`` as a
    corrupted spool read would.
``cache``
    Entered in :meth:`repro.cache.cache.SolverCache._disk_load` before
    an entry is unpickled; ``cache_corrupt`` overwrites the entry file
    with garbage so the cache's *real* corrupt-entry recovery path runs.
``serve_client``
    Entered in :mod:`repro.serve.client` between sending the request
    head and the body; ``serve_slow_client`` sleeps there, simulating a
    slow-loris tenant so the server's read deadline path runs.
``serve_admit``
    Entered in the serve admission path just before a request is
    offered to the bounded queue; ``serve_flood`` raises
    :class:`InjectedFaultError`, which the server treats exactly like a
    full queue — the *real* shed/503/Retry-After path runs.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Tuple

__all__ = [
    "ENV_FAULT_SPEC",
    "FaultSpec",
    "InjectedFaultError",
    "parse_fault_spec",
    "active_specs",
    "maybe_inject",
    "reset_fault_counters",
]

ENV_FAULT_SPEC = "REPRO_FAULT_SPEC"

#: Fault kind -> injection site it fires at.
_SITE_OF = {
    "worker_crash": "member",
    "worker_hang": "member",
    "member_error": "member",
    "spool_corrupt": "spool",
    "cache_corrupt": "cache",
    "serve_slow_client": "serve_client",
    "serve_flood": "serve_admit",
}

#: Kinds that only make sense inside a pool worker process.
_WORKER_ONLY = {"worker_crash", "worker_hang"}

#: Constraint keys compared as integers against the site context.
_INT_KEYS = {"member", "attempt"}


class InjectedFaultError(RuntimeError):
    """The exception ``member_error`` faults raise inside a member solve.

    Deliberately *not* a :class:`repro.errors.ReproError`: injected
    faults simulate unexpected failures, and the resilience layer must
    classify them like any other foreign exception (kind ``error``).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: a kind plus the constraints limiting where it fires."""

    kind: str
    constraints: Tuple[Tuple[str, str], ...] = ()

    @property
    def site(self) -> str:
        """The injection site this fault fires at."""
        return _SITE_OF[self.kind]

    def get(self, key: str, default: str = "") -> str:
        """The raw value of constraint ``key`` (``default`` when absent)."""
        for k, v in self.constraints:
            if k == key:
                return v
        return default

    def matches(self, context: Mapping[str, object]) -> bool:
        """Whether this fault fires for one site visit's context."""
        if self.kind in _WORKER_ONLY and not context.get("in_worker"):
            return False
        for key, raw in self.constraints:
            if key in ("seconds", "exit", "every"):
                continue  # effect parameters, not constraints
            if key not in context:
                return False
            actual = context[key]
            if key in _INT_KEYS:
                if int(actual) != int(raw):  # type: ignore[call-overload]
                    return False
            elif str(actual) != raw:
                return False
        return True


def parse_fault_spec(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULT_SPEC`` value into :class:`FaultSpec` tuples.

    Raises ``ValueError`` on unknown kinds or malformed ``key=value``
    parts — a chaos run with a typo'd spec must fail loudly, not run
    fault-free and report a false green.
    """
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, *parts = chunk.split(":")
        kind = head.strip()
        if kind not in _SITE_OF:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {sorted(_SITE_OF)}"
            )
        constraints = []
        for part in parts:
            if "=" not in part:
                raise ValueError(f"malformed fault constraint {part!r} in {chunk!r}")
            key, value = part.split("=", 1)
            constraints.append((key.strip(), value.strip()))
        specs.append(FaultSpec(kind=kind, constraints=tuple(constraints)))
    return tuple(specs)


@lru_cache(maxsize=8)
def _parse_cached(text: str) -> Tuple[FaultSpec, ...]:
    return parse_fault_spec(text)


def active_specs() -> Tuple[FaultSpec, ...]:
    """The faults currently enabled via ``REPRO_FAULT_SPEC`` (may be empty)."""
    text = os.environ.get(ENV_FAULT_SPEC, "").strip()
    if not text:
        return ()
    return _parse_cached(text)


def _fire(spec: FaultSpec, context: Mapping[str, object]) -> None:
    where = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
    if spec.kind == "worker_crash":
        os._exit(int(spec.get("exit", "23")))
    if spec.kind == "worker_hang":
        time.sleep(float(spec.get("seconds", "3600")))
        return
    if spec.kind == "member_error":
        raise InjectedFaultError(f"injected member_error ({where})")
    if spec.kind == "spool_corrupt":
        raise pickle.UnpicklingError(f"injected spool corruption ({where})")
    if spec.kind == "cache_corrupt":
        path = context.get("path")
        if path is not None:
            try:
                with open(str(path), "wb") as fh:
                    fh.write(b"\x00injected cache corruption\x00")
            except OSError:
                pass
        return
    if spec.kind == "serve_slow_client":
        time.sleep(float(spec.get("seconds", "1")))
        return
    if spec.kind == "serve_flood":
        raise InjectedFaultError(f"injected serve_flood ({where})")
    raise AssertionError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover


#: Per-process visit counters for ``every=N`` periodic firing, keyed by
#: spec.  Deterministic: the Nth, 2Nth, ... matching visit fires.
_VISITS: dict = {}
_VISITS_LOCK = threading.Lock()


def reset_fault_counters() -> None:
    """Reset the ``every=N`` visit counters (test isolation helper)."""
    with _VISITS_LOCK:
        _VISITS.clear()


def maybe_inject(site: str, **context: object) -> None:
    """Fire every active fault matching ``site`` + ``context`` (usually none).

    Call sites pass the facts a spec can constrain on: ``member`` and
    ``attempt`` at the ``member``/``spool`` sites, ``kind`` and ``path``
    at the ``cache`` site, plus ``in_worker`` wherever it is known.
    """
    for spec in active_specs():
        if spec.site != site:
            continue
        if spec.matches(context):
            every = int(spec.get("every", "1") or "1")
            if every > 1:
                with _VISITS_LOCK:
                    count = _VISITS.get(spec, 0) + 1
                    _VISITS[spec] = count
                if count % every != 0:
                    continue
            _fire(spec, context)
