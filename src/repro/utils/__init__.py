"""Shared utilities: seeded randomness, validation helpers, timing.

These are deliberately dependency-light; every other subpackage may import
from here, but :mod:`repro.utils` imports nothing else from :mod:`repro`.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
