"""Deterministic random-number-generator plumbing.

Every randomized routine in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the coercion here guarantees
that (a) experiments are reproducible bit-for-bit given a seed and (b) a
single generator can be threaded through a pipeline without accidental
re-seeding (which would correlate supposedly independent draws).
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so helper functions
    can be composed without resetting stream state.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or a
        ``Generator``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used by ensemble routines (e.g. building several random decomposition
    trees) so each member sees an independent stream while the whole
    ensemble stays reproducible from one seed.

    Parameters
    ----------
    seed:
        Master seed (any :data:`SeedLike`).
    n:
        Number of child generators, ``n >= 0``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the master stream deterministically.
        return [
            np.random.default_rng(seed.integers(0, 2**63 - 1)) for _ in range(n)
        ]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
