"""Lightweight wall-clock instrumentation for the benchmark harness.

The HPC guides' first rule is *measure before optimising*; the experiment
drivers use :class:`Stopwatch` to report per-phase timings (tree building
vs. DP vs. repair) so regressions in any stage are visible in the tables.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.section("dp"):
    ...     _ = sum(range(1000))
    >>> sw.total("dp") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Context manager accumulating elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def merge(self, other: "Stopwatch") -> "Stopwatch":
        """Fold another stopwatch's sections into this one; returns self.

        The engine uses this to aggregate per-worker phase timings from
        the process pool: each worker times its own ``dp``/``repair``
        sections and ships the stopwatch back with its result, so the
        parallel path reports the same phase breakdown as the serial one.
        """
        for name, secs in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + secs
            self.counts[name] = self.counts.get(name, 0) + other.counts.get(name, 0)
        return self

    def summary(self) -> str:
        """Human-readable one-line-per-section report, longest first."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1])
        return "\n".join(
            f"{name:<24s} {secs * 1e3:10.2f} ms  ({self.counts[name]}x)"
            for name, secs in rows
        )


@contextmanager
def timed() -> Iterator[list[float]]:
    """Yield a one-element list that holds the elapsed seconds on exit.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
