"""Small argument-validation helpers with consistent error messages.

Raising early with a named-argument message is worth far more in a numeric
library than the few nanoseconds the checks cost: silent NaNs or negative
weights deep inside a DP are otherwise brutal to track down.
"""

from __future__ import annotations

import math
from typing import Iterable


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number ``> 0``, else raise."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number ``>= 0``, else raise."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in ``[0, 1]``, else raise."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Return ``value`` if ``lo <= value <= hi``, else raise."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return value


def check_all_finite(name: str, values: Iterable[float]) -> None:
    """Raise if any element of ``values`` is NaN or infinite."""
    for i, v in enumerate(values):
        if not math.isfinite(v):
            raise ValueError(f"{name}[{i}] is not finite: {v!r}")
