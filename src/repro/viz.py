"""Graphviz (DOT) exporters for graphs, decomposition trees and placements.

Pure text generation — no graphviz dependency is required to *write* the
files; render them offline with ``dot -Tsvg``.  Three exporters:

* :func:`graph_to_dot` — the task graph, optionally coloured by a
  placement's leaf assignment (tasks on the same core share a colour).
* :func:`decomposition_tree_to_dot` — a decomposition tree with edge
  weights (the ``w_T`` values the DP sees).
* :func:`hierarchy_to_dot` — the hierarchy tree annotated with a
  placement's per-node loads.
"""

from __future__ import annotations

from typing import Optional


from repro.graph.graph import Graph
from repro.decomposition.tree import DecompositionTree
from repro.hierarchy.placement import Placement

__all__ = ["graph_to_dot", "decomposition_tree_to_dot", "hierarchy_to_dot"]

# A colour-blind-safe cycle for leaf colouring.
_PALETTE = (
    "#4477AA", "#EE6677", "#228833", "#CCBB44",
    "#66CCEE", "#AA3377", "#BBBBBB", "#222255",
    "#999933", "#882255", "#44AA99", "#117733",
)


def _col(i: int) -> str:
    return _PALETTE[i % len(_PALETTE)]


def graph_to_dot(g: Graph, placement: Optional[Placement] = None) -> str:
    """DOT rendering of a task graph.

    With a placement, vertices are filled by their leaf's colour and
    labelled ``v (leaf)``; edge pen width scales with weight.
    """
    lines = ["graph G {", "  node [style=filled, fontsize=10];"]
    wmax = float(g.edges_w.max()) if g.m else 1.0
    for v in range(g.n):
        if placement is not None:
            leaf = int(placement.leaf_of[v])
            lines.append(
                f'  {v} [label="{v}\\nleaf {leaf}", fillcolor="{_col(leaf)}"];'
            )
        else:
            lines.append(f'  {v} [fillcolor="#DDDDDD"];')
    for u, v, w in g.iter_edges():
        pen = 0.5 + 2.5 * w / wmax
        lines.append(f'  {u} -- {v} [penwidth={pen:.2f}, label="{w:.3g}"];')
    lines.append("}")
    return "\n".join(lines)


def decomposition_tree_to_dot(tree: DecompositionTree) -> str:
    """DOT rendering of a decomposition tree (leaves show graph vertices)."""
    lines = ["graph T {", "  node [fontsize=10];"]
    for node in range(tree.n_nodes):
        if tree.is_leaf(node):
            lines.append(
                f'  t{node} [shape=box, label="v{int(tree.leaf_vertex[node])}"];'
            )
        else:
            lines.append(f'  t{node} [shape=point];')
    for node in range(tree.n_nodes):
        p = int(tree.parent[node])
        if p >= 0:
            w = float(tree.edge_weight[node])
            lines.append(f'  t{p} -- t{node} [label="{w:.3g}"];')
    lines.append("}")
    return "\n".join(lines)


def hierarchy_to_dot(placement: Placement) -> str:
    """DOT rendering of the hierarchy with per-node loads and capacities."""
    hier = placement.hierarchy
    lines = ["graph H {", "  node [style=filled, fontsize=10];"]
    loads = [placement.level_loads(j) for j in range(hier.h + 1)]
    for level in range(hier.h + 1):
        cap = hier.capacity(level)
        for node in range(hier.count(level)):
            load = float(loads[level][node])
            over = load > cap * (1 + 1e-9)
            color = "#EE6677" if over else ("#CCDDEE" if level < hier.h else _col(node))
            shape = "box" if level == hier.h else "ellipse"
            lines.append(
                f'  h{level}_{node} [shape={shape}, fillcolor="{color}", '
                f'label="L{level}.{node}\\n{load:.2f}/{cap:.2f}"];'
            )
    for level in range(hier.h):
        for node in range(hier.count(level)):
            for child in hier.children(level, node):
                lines.append(f"  h{level}_{node} -- h{level + 1}_{int(child)};")
    lines.append("}")
    return "\n".join(lines)
