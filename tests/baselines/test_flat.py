"""Tests for flat placement and dual-recursive-bipartition mapping."""

import numpy as np
import pytest

from repro.baselines.flat import flat_placement, map_parts_to_leaves
from repro.baselines.multilevel import partition_kway
from repro.baselines.recursive_bisection import recursive_bisection_placement
from repro.errors import InvalidInputError
from repro.graph.generators import planted_partition, random_demands


class TestFlatPlacement:
    def test_identity_uses_partition_labels(self, clustered_instance):
        g, hier, d = clustered_instance
        p = flat_placement(g, hier, d, mapping="identity", seed=0)
        # Identity mapping: leaves == part labels directly.
        assert np.unique(p.leaf_of).size == hier.k

    def test_quotient_is_permutation_of_identity_parts(self, clustered_instance):
        g, hier, d = clustered_instance
        ident = flat_placement(g, hier, d, mapping="identity", seed=0)
        quot = flat_placement(g, hier, d, mapping="quotient", seed=0)
        # Same partition, different leaf naming: the partition cut weight
        # must be identical.
        assert g.partition_cut_weight(ident.leaf_of) == pytest.approx(
            g.partition_cut_weight(quot.leaf_of)
        )

    def test_quotient_cost_no_worse_here(self, hier_2x4):
        g = planted_partition(8, 4, 0.9, 0.05, seed=7)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=8)
        ident = flat_placement(g, hier_2x4, d, mapping="identity", seed=0)
        quot = flat_placement(g, hier_2x4, d, mapping="quotient", seed=0)
        assert quot.cost() <= ident.cost() + 1e-9

    def test_unknown_mapping(self, clustered_instance):
        g, hier, d = clustered_instance
        with pytest.raises(InvalidInputError):
            flat_placement(g, hier, d, mapping="magic")


class TestMapPartsToLeaves:
    def test_bijective_when_k_parts(self, clustered_instance):
        g, hier, d = clustered_instance
        labels = partition_kway(g, hier.k, vertex_weights=d, seed=0)
        part_to_leaf = map_parts_to_leaves(g, hier, labels, seed=0)
        assert sorted(part_to_leaf.tolist()) == list(range(hier.k))

    def test_fewer_parts_than_leaves(self, hier_2x4):
        g = planted_partition(2, 6, 0.9, 0.1, seed=1)
        labels = np.arange(12) // 6  # 2 parts on 8 leaves
        part_to_leaf = map_parts_to_leaves(g, hier_2x4, labels, seed=0)
        assert part_to_leaf.size == 2
        assert np.unique(part_to_leaf).size == 2

    def test_too_many_parts_rejected(self, hier_2x4):
        g = planted_partition(2, 6, 0.9, 0.1, seed=1)
        labels = np.arange(12)  # 12 parts on 8 leaves
        with pytest.raises(InvalidInputError):
            map_parts_to_leaves(g, hier_2x4, labels)

    def test_groups_communicating_parts(self, hier_2x4):
        """Parts that talk a lot should land under the same socket."""
        # 8 parts in 4 chatty pairs: (0,1), (2,3), (4,5), (6,7).
        edges = []
        base = 0
        for pair in range(4):
            a, b = 2 * pair, 2 * pair + 1
            edges.append((a, b, 50.0))
        for i in range(8):
            edges.append((i, (i + 2) % 8, 0.1))
        from repro import Graph

        g = Graph(8, edges)
        labels = np.arange(8)
        part_to_leaf = map_parts_to_leaves(g, hier_2x4, labels, seed=0)
        for pair in range(4):
            a, b = 2 * pair, 2 * pair + 1
            # Chatty pairs share a socket (LCA level >= 1).
            assert hier_2x4.lca_level(
                int(part_to_leaf[a]), int(part_to_leaf[b])
            ) >= 1


class TestRecursiveBisection:
    def test_balanced_by_demand(self, clustered_instance):
        g, hier, d = clustered_instance
        p = recursive_bisection_placement(g, hier, d, seed=0)
        assert p.max_violation() <= 1.3

    def test_socket_split_minimises_heavy_cut(self, hier_2x4):
        g = planted_partition(2, 12, 0.9, 0.02, seed=3)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=4)
        p = recursive_bisection_placement(g, hier_2x4, d, seed=0)
        # The cross-socket traffic should be close to the planted cut.
        sockets = np.asarray(hier_2x4.ancestor(p.leaf_of, 1))
        cross = g.partition_cut_weight(sockets)
        planted = g.cut_weight(np.arange(24) < 12)
        assert cross <= 2.0 * planted + 1e-9
