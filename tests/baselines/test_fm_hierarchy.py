"""Tests for the hierarchy-aware FM refiner (multilevel uncoarsening)."""

import numpy as np
import pytest

from repro.baselines.fm import eq1_cost, fm_refine_hierarchy
from repro.graph.generators import grid_2d, random_demands
from repro.graph.graph import Graph
from repro.hierarchy.hierarchy import Hierarchy
from repro.utils.rng import ensure_rng


@pytest.fixture()
def instance():
    g = grid_2d(12, 12, weight_range=(0.5, 2.0), seed=5)
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0], leaf_capacity=30.0)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=6)
    return g, hier, d


def block_labels(g, hier):
    """A reasonable starting labelling: contiguous vertex blocks."""
    return (np.arange(g.n) * hier.k // g.n).astype(np.int64)


class TestEq1Cost:
    def test_matches_placement_cost(self, instance):
        g, hier, d = instance
        from repro.hierarchy.placement import Placement

        leaf = block_labels(g, hier)
        p = Placement(g, hier, d, leaf, meta={})
        assert eq1_cost(g, hier, leaf) == pytest.approx(p.cost())

    def test_empty_graph(self):
        hier = Hierarchy([2], [1.0, 0.0])
        assert eq1_cost(Graph(3, []), hier, np.zeros(3, dtype=np.int64)) == 0.0


class TestFmRefineHierarchy:
    def test_never_worsens_cost(self, instance):
        g, hier, d = instance
        rng = ensure_rng(7)
        for trial in range(5):
            leaf = rng.integers(0, hier.k, size=g.n)
            before = eq1_cost(g, hier, leaf)
            out, stats = fm_refine_hierarchy(g, hier, d, leaf, max_passes=3)
            after = eq1_cost(g, hier, out)
            assert after <= before + 1e-9
            assert stats.gain == pytest.approx(before - after, abs=1e-9)

    def test_improves_bad_placement(self, instance):
        g, hier, d = instance
        rng = ensure_rng(8)
        leaf = rng.integers(0, hier.k, size=g.n)
        before = eq1_cost(g, hier, leaf)
        out, stats = fm_refine_hierarchy(g, hier, d, leaf, max_passes=4)
        assert stats.moves > 0
        assert eq1_cost(g, hier, out) < before

    def test_never_worsens_capacity_violation(self, instance):
        g, hier, d = instance
        from repro.hierarchy.placement import Placement

        rng = ensure_rng(9)
        leaf = rng.integers(0, hier.k, size=g.n)
        before = Placement(g, hier, d, leaf, meta={}).max_violation()
        out, _ = fm_refine_hierarchy(g, hier, d, leaf, max_passes=3)
        after = Placement(g, hier, d, out, meta={}).max_violation()
        assert after <= max(1.0, before) + 1e-9

    def test_load_limit_respected(self, instance):
        g, hier, d = instance
        leaf = block_labels(g, hier)
        out, _ = fm_refine_hierarchy(
            g, hier, d, leaf, max_passes=3, load_limit=1.25
        )
        loads = np.bincount(out, weights=d, minlength=hier.k)
        assert loads.max() <= 1.25 * hier.leaf_capacity + 1e-9

    def test_zero_passes_is_identity(self, instance):
        g, hier, d = instance
        leaf = block_labels(g, hier)
        out, stats = fm_refine_hierarchy(g, hier, d, leaf, max_passes=0)
        assert np.array_equal(out, leaf)
        assert stats.passes == 0 and stats.moves == 0

    def test_constant_cm_no_moves(self, instance):
        g, _, d = instance
        hier = Hierarchy([2, 4], [5.0, 5.0, 5.0], leaf_capacity=30.0)
        leaf = block_labels(g, hier)
        out, stats = fm_refine_hierarchy(g, hier, d, leaf, max_passes=2)
        assert np.array_equal(out, leaf)
        assert stats.moves == 0

    def test_input_not_mutated(self, instance):
        g, hier, d = instance
        rng = ensure_rng(10)
        leaf = rng.integers(0, hier.k, size=g.n)
        copy = leaf.copy()
        fm_refine_hierarchy(g, hier, d, leaf, max_passes=2)
        assert np.array_equal(leaf, copy)
