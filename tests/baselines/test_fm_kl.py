"""Tests for FM and KL two-way refinement."""

import numpy as np
import pytest

from repro.baselines.fm import fm_refine
from repro.baselines.kl import kl_refine
from repro.errors import InvalidInputError
from repro.graph.generators import grid_2d, planted_partition


def scrambled_blocks(seed, swap=4):
    """Two cliques + bridge, with `swap` vertices exchanged across sides."""
    g = planted_partition(2, 8, 0.95, 0.05, weight_in=3.0, weight_out=1.0, seed=seed)
    side = np.arange(16) < 8
    rng = np.random.default_rng(seed)
    a = rng.choice(8, size=swap, replace=False)
    b = 8 + rng.choice(8, size=swap, replace=False)
    side[a] = False
    side[b] = True
    return g, side


class TestFM:
    def test_never_worse(self):
        for seed in range(4):
            g, side = scrambled_blocks(seed)
            refined = fm_refine(g, side)
            assert g.cut_weight(refined) <= g.cut_weight(side) + 1e-9

    def test_recovers_planted_cut(self):
        g, side = scrambled_blocks(1)
        refined = fm_refine(g, side, tol=0.05)
        # Perfect recovery: only the sparse inter-block edges remain.
        planted = g.cut_weight(np.arange(16) < 8)
        assert g.cut_weight(refined) <= planted + 1e-9

    def test_balance_respected(self):
        g, side = scrambled_blocks(2)
        w = np.ones(16)
        refined = fm_refine(g, side, vertex_weights=w, target_fraction=0.5, tol=0.125)
        frac = refined.sum() / 16
        assert 0.375 - 1e-9 <= frac <= 0.625 + 1e-9

    def test_weighted_balance(self):
        g = grid_2d(4, 4)
        w = np.ones(16)
        w[0] = 8.0  # heavy vertex
        side = np.zeros(16, dtype=bool)
        side[:8] = True
        refined = fm_refine(g, side, vertex_weights=w, target_fraction=0.5, tol=0.2)
        wa = w[refined].sum()
        assert 0.3 * w.sum() <= wa <= 0.7 * w.sum()

    def test_input_not_mutated(self):
        g, side = scrambled_blocks(3)
        original = side.copy()
        fm_refine(g, side)
        assert np.array_equal(side, original)

    def test_bad_shapes(self, grid44):
        with pytest.raises(InvalidInputError):
            fm_refine(grid44, np.zeros(5, dtype=bool))
        with pytest.raises(InvalidInputError):
            fm_refine(grid44, np.zeros(16, dtype=bool), vertex_weights=np.ones(3))


class TestKL:
    def test_never_worse(self):
        for seed in range(4):
            g, side = scrambled_blocks(seed)
            refined = kl_refine(g, side)
            assert g.cut_weight(refined) <= g.cut_weight(side) + 1e-9

    def test_preserves_side_sizes_exactly(self):
        g, side = scrambled_blocks(0)
        refined = kl_refine(g, side)
        assert refined.sum() == side.sum()

    def test_improves_scrambled_blocks(self):
        g, side = scrambled_blocks(5, swap=3)
        refined = kl_refine(g, side, max_passes=8)
        assert g.cut_weight(refined) < g.cut_weight(side)

    def test_fixed_point_on_optimal(self, two_blocks):
        side = np.arange(12) < 6
        refined = kl_refine(two_blocks, side)
        assert two_blocks.cut_weight(refined) == pytest.approx(0.5)

    def test_bad_shape(self, grid44):
        with pytest.raises(InvalidInputError):
            kl_refine(grid44, np.zeros(4, dtype=bool))
