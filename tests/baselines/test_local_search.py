"""Tests for local-search refinement and capacity enforcement."""

import numpy as np
import pytest

from repro import Graph, Placement
from repro.baselines.local_search import enforce_capacity, refine_placement
from repro.baselines.random_placement import random_placement
from repro.graph.generators import planted_partition, random_demands


@pytest.fixture
def noisy_placement(hier_2x4):
    g = planted_partition(4, 6, 0.85, 0.05, seed=2)
    d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=3)
    return random_placement(g, hier_2x4, d, seed=4)


class TestRefine:
    def test_cost_never_increases(self, noisy_placement):
        refined = refine_placement(noisy_placement, max_passes=4)
        assert refined.cost() <= noisy_placement.cost() + 1e-9

    def test_improves_random(self, noisy_placement):
        refined = refine_placement(noisy_placement, max_passes=4)
        assert refined.cost() < noisy_placement.cost()

    def test_respects_violation_budget(self, noisy_placement):
        refined = refine_placement(noisy_placement, max_passes=4, max_violation=1.0)
        assert refined.max_violation() <= max(
            1.0, noisy_placement.max_violation()
        ) + 1e-9

    def test_zero_passes_identity(self, noisy_placement):
        refined = refine_placement(noisy_placement, max_passes=0)
        assert refined is noisy_placement

    def test_fixed_point_returns_same_object(self, hier_2x4):
        """A placement with no improving move comes back unchanged."""
        g = Graph(2, [(0, 1, 1.0)])
        p = Placement(g, hier_2x4, np.array([0.4, 0.4]), np.array([0, 0]))
        assert refine_placement(p, max_passes=2) is p

    def test_meta_marks_refined(self, noisy_placement):
        refined = refine_placement(noisy_placement, max_passes=4)
        if refined is not noisy_placement:
            assert refined.meta.get("refined") is True


class TestEnforceCapacity:
    def test_restores_feasibility(self, hier_2x4):
        g = planted_partition(2, 8, 0.8, 0.1, seed=5)
        d = np.full(16, 0.3)  # total 4.8 on capacity 8
        # Cram everything onto two leaves (violation 2.4).
        leaf_of = np.array([0] * 8 + [1] * 8)
        p = Placement(g, hier_2x4, d, leaf_of)
        assert p.max_violation() > 2.0
        fixed = enforce_capacity(p, target_violation=1.0)
        assert fixed.max_violation() <= 1.0 + 1e-9

    def test_noop_when_feasible(self, hier_2x4):
        g = Graph(4, [])
        p = Placement(g, hier_2x4, np.full(4, 0.2), np.array([0, 1, 2, 3]))
        assert enforce_capacity(p, 1.0) is p

    def test_prefers_cheap_moves(self, hier_2x4):
        """The evicted vertex should be one with little cost impact."""
        # Vertices 0-2 on leaf 0 (over capacity); vertex 2 has no edges,
        # 0-1 are strongly tied. Eviction should move vertex 2.
        g = Graph(3, [(0, 1, 100.0)])
        d = np.array([0.5, 0.5, 0.5])
        p = Placement(g, hier_2x4, d, np.array([0, 0, 0]))
        fixed = enforce_capacity(p, target_violation=1.0)
        assert fixed.leaf_of[0] == fixed.leaf_of[1]  # tie preserved
        assert fixed.cost() == 0.0

    def test_single_oversized_vertex_stays(self, hier_2x4):
        g = Graph(1, [])
        p = Placement(g, hier_2x4, np.array([1.0]), np.array([0]))
        # Already at exactly capacity: feasible, nothing to do.
        out = enforce_capacity(p, target_violation=0.5)
        # A lone vertex can never be fixed by eviction; best effort returns.
        assert out.leaf_of[0] == 0

    def test_meta_marks_enforcement(self, hier_2x4):
        g = planted_partition(2, 8, 0.8, 0.1, seed=5)
        d = np.full(16, 0.3)
        p = Placement(g, hier_2x4, d, np.array([0] * 8 + [1] * 8))
        fixed = enforce_capacity(p, target_violation=1.0)
        assert fixed.meta.get("capacity_enforced") == 1.0
