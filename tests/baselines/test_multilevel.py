"""Tests for the multilevel partitioner."""

import numpy as np
import pytest

from repro.baselines.multilevel import bisect, coarsen, partition_kway
from repro.errors import InvalidInputError
from repro.graph.generators import (
    grid_2d,
    planted_partition,
    power_law,
    random_regular,
)
from repro.utils.rng import ensure_rng


class TestCoarsen:
    def test_reaches_target(self):
        g = grid_2d(8, 8)
        graphs, weights, maps = coarsen(g, np.ones(64), 12, ensure_rng(0))
        assert graphs[-1].n <= 12 or len(maps) == 0

    def test_weights_conserved(self):
        g = grid_2d(6, 6)
        w0 = np.random.default_rng(0).random(36) + 0.5
        graphs, weights, maps = coarsen(g, w0, 8, ensure_rng(1))
        for w in weights:
            assert w.sum() == pytest.approx(w0.sum())

    def test_maps_compose(self):
        g = grid_2d(6, 6)
        graphs, weights, maps = coarsen(g, np.ones(36), 8, ensure_rng(2))
        labels = np.arange(36)
        for m in maps:
            labels = m[labels]
        # Composition lands in the coarsest graph's id range and is onto.
        assert labels.max() < graphs[-1].n
        assert np.unique(labels).size == graphs[-1].n


class TestBisect:
    def test_balanced(self):
        g = grid_2d(8, 8)
        mask = bisect(g, seed=0)
        assert 24 <= mask.sum() <= 40

    def test_grid_cut_quality(self):
        g = grid_2d(8, 8)
        mask = bisect(g, seed=0, tol=0.05)
        assert g.cut_weight(mask) <= 12.0  # optimum 8, generous bound

    def test_recovers_planted(self):
        g = planted_partition(2, 16, 0.7, 0.02, seed=1)
        mask = bisect(g, seed=0)
        planted = g.cut_weight(np.arange(32) < 16)
        assert g.cut_weight(mask) <= 1.5 * planted + 1e-9

    def test_weighted_target_fraction(self):
        g = grid_2d(6, 6)
        w = np.ones(36)
        mask = bisect(g, vertex_weights=w, target_fraction=0.25, tol=0.05, seed=0)
        assert 0.2 * 36 <= mask.sum() <= 0.3 * 36

    def test_single_vertex(self):
        from repro import Graph

        mask = bisect(Graph(1, []), seed=0)
        assert mask.tolist() == [False]

    def test_bad_fraction(self, grid44):
        with pytest.raises(InvalidInputError):
            bisect(grid44, target_fraction=1.5)


class TestPartitionKway:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_exact_k_parts(self, k):
        g = grid_2d(6, 6)
        labels = partition_kway(g, k, seed=0)
        assert np.unique(labels).size == k

    def test_balanced_parts(self):
        g = grid_2d(8, 8)
        labels = partition_kway(g, 4, seed=0)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() >= 12 and counts.max() <= 20

    def test_weighted_balance(self):
        g = power_law(48, seed=0)
        rng = np.random.default_rng(3)
        w = rng.random(48) + 0.2
        labels = partition_kway(g, 4, vertex_weights=w, tol=0.05, seed=0)
        loads = np.zeros(4)
        np.add.at(loads, labels, w)
        assert loads.max() <= 1.6 * w.sum() / 4

    def test_k1_trivial(self, grid44):
        labels = partition_kway(grid44, 1, seed=0)
        assert (labels == 0).all()

    def test_recovers_four_blocks(self):
        g = planted_partition(4, 8, 0.9, 0.01, seed=5)
        labels = partition_kway(g, 4, seed=0)
        planted = np.arange(32) // 8
        # Cut should be close to the planted sparse cut.
        assert g.partition_cut_weight(labels) <= 2.0 * g.partition_cut_weight(
            planted
        ) + 1e-9

    def test_expander_beats_random(self):
        g = random_regular(32, 4, seed=2)
        labels = partition_kway(g, 4, seed=0)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 4, size=32)
        assert g.partition_cut_weight(labels) < g.partition_cut_weight(random_labels)

    def test_bad_k(self, grid44):
        with pytest.raises(InvalidInputError):
            partition_kway(grid44, 0)
