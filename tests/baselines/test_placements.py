"""Uniform contract tests over every baseline placement method."""

import numpy as np
import pytest

from repro.baselines import placement_baselines
from repro.graph.generators import planted_partition, power_law, random_demands

REGISTRY = placement_baselines()


@pytest.mark.parametrize("name", sorted(REGISTRY))
class TestBaselineContract:
    def test_valid_assignment(self, name, clustered_instance):
        g, hier, d = clustered_instance
        p = REGISTRY[name](g, hier, d, seed=0)
        assert p.leaf_of.shape == (g.n,)
        assert (p.leaf_of >= 0).all() and (p.leaf_of < hier.k).all()

    def test_deterministic(self, name, clustered_instance):
        g, hier, d = clustered_instance
        a = REGISTRY[name](g, hier, d, seed=7)
        b = REGISTRY[name](g, hier, d, seed=7)
        assert np.array_equal(a.leaf_of, b.leaf_of)

    def test_meta_names_solver(self, name, clustered_instance):
        g, hier, d = clustered_instance
        p = REGISTRY[name](g, hier, d, seed=0)
        assert "solver" in p.meta

    def test_near_feasible(self, name, clustered_instance):
        """Baselines are capacity-aware; modest fill must stay near-feasible."""
        g, hier, d = clustered_instance  # fill = 0.6
        p = REGISTRY[name](g, hier, d, seed=0)
        assert p.max_violation() <= 1.3


class TestOrderingOfQuality:
    """Structured methods must beat random on clusterable inputs."""

    def test_hierarchy_aware_beats_random(self, hier_2x4):
        g = planted_partition(4, 8, 0.8, 0.03, seed=3)
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=4)
        costs = {
            name: REGISTRY[name](g, hier_2x4, d, seed=0).cost()
            for name in ("random", "flat_quotient", "recursive_bisection")
        }
        assert costs["flat_quotient"] < costs["random"]
        assert costs["recursive_bisection"] < costs["random"]

    def test_quotient_mapping_no_worse_than_identity_on_average(self, hier_2x4):
        """Dual recursive bipartitioning should help when cm spread is large."""
        wins = 0
        trials = 5
        for seed in range(trials):
            g = power_law(40, seed=seed)
            d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, seed=seed)
            ident = REGISTRY["flat_identity"](g, hier_2x4, d, seed=seed).cost()
            quot = REGISTRY["flat_quotient"](g, hier_2x4, d, seed=seed).cost()
            if quot <= ident + 1e-9:
                wins += 1
        assert wins >= 3
