"""Tests for the benchmark harness itself (tables, instances, oracles)."""

import numpy as np
import pytest

from repro.bench import (
    FAMILIES,
    METHODS,
    Table,
    brute_force_optimum,
    format_series,
    make_instance,
    path_binary_tree,
    run_method,
    save_result,
    standard_hierarchy,
)
from repro.core.config import SolverConfig


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "long_column"], title="demo")
        t.add_row(["x", 1.23456])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "# demo"
        assert "1.235" in text  # 4 significant digits

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_show_returns_render(self, capsys):
        t = Table(["a"])
        t.add_row([3])
        out = t.show()
        assert "3" in out
        assert "3" in capsys.readouterr().out

    def test_save_result(self, tmp_path):
        path = save_result("demo", "hello", tmp_path)
        assert path.read_text() == "hello\n"

    def test_format_series(self):
        text = format_series([1, 2], [3.0, 4.0], "s")
        assert "# series: s" in text
        assert "1\t3" in text


class TestInstances:
    def test_all_families_build(self):
        hier = standard_hierarchy("2x4")
        for family in FAMILIES:
            inst = make_instance(family, 16, hier, seed=1)
            assert inst.graph.n >= 8
            assert inst.demands.shape == (inst.graph.n,)
            assert inst.demands.sum() <= hier.total_capacity

    def test_standard_hierarchies(self):
        assert standard_hierarchy("2x4").k == 8
        assert standard_hierarchy("2x2x2").h == 3
        assert standard_hierarchy("flat16").h == 1
        with pytest.raises(KeyError):
            standard_hierarchy("weird")

    def test_run_method_names(self):
        hier = standard_hierarchy("2x4")
        inst = make_instance("blocks", 16, hier, seed=2)
        cfg = SolverConfig(seed=0, n_trees=2, refine=False)
        for method in METHODS:
            p = run_method(method, inst, seed=0, config=cfg)
            assert p.leaf_of.shape == (inst.graph.n,)

    def test_instances_deterministic(self):
        hier = standard_hierarchy("2x4")
        a = make_instance("grid", 16, hier, seed=3)
        b = make_instance("grid", 16, hier, seed=3)
        assert a.graph == b.graph
        assert np.allclose(a.demands, b.demands)


class TestOracles:
    def test_path_binary_tree_structure(self):
        bt = path_binary_tree([1.0, 2.0, 3.0], [1, 2, 3, 4])
        bt.validate()
        leaves = [v for v in range(bt.n_nodes) if bt.is_leaf(v)]
        assert len(leaves) == 4

    def test_oracle_zero_when_everything_fits(self):
        bt = path_binary_tree([1.0], [1, 1])
        assert brute_force_optimum(bt, [2], [0.0, 1.0]) == 0.0

    def test_oracle_infeasible_is_inf(self):
        bt = path_binary_tree([1.0], [3, 3])
        assert brute_force_optimum(bt, [2], [0.0, 1.0]) == float("inf")
