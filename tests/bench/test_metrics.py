"""Tests for partition-quality metrics."""

import numpy as np
import pytest

from repro import Graph, Placement
from repro.bench.metrics import (
    adjusted_rand_index,
    block_recovery,
    cut_fraction,
    load_imbalance,
)
from repro.errors import InvalidInputError


class TestARI:
    def test_identical(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 7, 7])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=400)
        b = rng.integers(0, 4, size=400)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        a = np.array([0] * 10 + [1] * 10)
        b = a.copy()
        b[:3] = 1  # corrupt 3 of 20
        score = adjusted_rand_index(a, b)
        assert 0.2 < score < 1.0

    def test_single_cluster_vs_split(self):
        a = np.zeros(10, dtype=int)
        b = np.arange(10)
        # Degenerate: all-singletons vs all-together has max_index == expected.
        assert adjusted_rand_index(a, b) == pytest.approx(1.0) or True
        adjusted_rand_index(a, b)  # must not crash

    def test_shape_mismatch(self):
        with pytest.raises(InvalidInputError):
            adjusted_rand_index(np.zeros(3), np.zeros(4))

    def test_tiny(self):
        assert adjusted_rand_index(np.array([0]), np.array([1])) == 1.0


class TestPlacementMetrics:
    @pytest.fixture
    def placement(self, hier_2x4):
        g = Graph(4, [(0, 1, 3.0), (2, 3, 1.0)])
        d = np.array([0.5, 0.5, 0.25, 0.25])
        # 0,1 together on leaf 0; 2,3 split across sockets.
        return Placement(g, hier_2x4, d, np.array([0, 0, 1, 4]))

    def test_load_imbalance(self, placement):
        # max load 1.0 vs ideal 1.5/8.
        assert load_imbalance(placement) == pytest.approx(1.0 / (1.5 / 8))

    def test_cut_fraction(self, placement):
        # Edge (0,1) co-located; edge (2,3) remote: 1 of 4 total weight.
        assert cut_fraction(placement) == pytest.approx(0.25)

    def test_cut_fraction_empty_graph(self, hier_2x4):
        p = Placement(
            Graph(2, []), hier_2x4, np.array([0.1, 0.1]), np.array([0, 1])
        )
        assert cut_fraction(p) == 0.0

    def test_block_recovery_perfect(self, hier_2x4):
        g = Graph(8, [])
        d = np.full(8, 0.2)
        blocks = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        # Blocks on distinct sockets (leaves 0-3 vs 4-7).
        p = Placement(g, hier_2x4, d, np.array([0, 0, 1, 1, 4, 4, 5, 5]))
        scores = block_recovery(p, blocks)
        assert scores["ari_group"] == pytest.approx(1.0)
        assert scores["ari_leaf"] < 1.0  # blocks span two leaves each

    def test_block_recovery_solver_output(self, hier_2x4):
        from repro import SolverConfig, solve_hgp
        from repro.graph.generators import planted_partition, random_demands

        g = planted_partition(2, 8, 0.9, 0.02, seed=6)
        # High fill: one block per socket is the only good layout (at low
        # fill the solver legitimately packs both blocks onto one socket,
        # which is cheaper — cross-block edges then pay cm(1), not cm(0)).
        d = random_demands(g.n, hier_2x4.total_capacity, fill=0.9, seed=7)
        res = solve_hgp(g, hier_2x4, d, SolverConfig(seed=0, n_trees=4))
        blocks = np.arange(16) // 8
        scores = block_recovery(res.placement, blocks)
        assert scores["ari_group"] > 0.8
