"""Cache-test isolation: every test starts from a pristine process cache."""

from __future__ import annotations

import pytest

from repro.cache import reset_cache


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Scrub cache env vars and drop the shared instance around each test."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
    reset_cache()
    yield
    reset_cache()
