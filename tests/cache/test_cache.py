"""Unit tests for the content-addressed solver cache itself."""

import numpy as np
import pytest

from repro import Graph
from repro.cache import (
    CacheConfig,
    SolverCache,
    cache_key,
    configure_cache,
    estimate_nbytes,
    get_cache,
    seed_token,
)
from repro.graph.generators import planted_partition
from repro.obs.metrics import get_registry


class TestCacheKey:
    def test_stable_across_calls(self):
        parts = (7, "spectral", (1, 2, 3), 0.25, None)
        assert cache_key("trees", parts) == cache_key("trees", parts)

    def test_kind_separates_namespaces(self):
        assert cache_key("trees", (1,)) != cache_key("fiedler", (1,))

    def test_value_sensitivity(self):
        assert cache_key("k", (1, 2)) != cache_key("k", (2, 1))
        assert cache_key("k", (1.0,)) != cache_key("k", (1,))
        assert cache_key("k", (True,)) != cache_key("k", (1,))
        assert cache_key("k", (None,)) != cache_key("k", ("None",))

    def test_ndarray_parts_hash_by_content(self):
        a = np.arange(5, dtype=np.float64)
        b = np.arange(5, dtype=np.float64)
        assert cache_key("k", (a,)) == cache_key("k", (b,))
        b[0] = 99.0
        assert cache_key("k", (a,)) != cache_key("k", (b,))
        # dtype matters even when the bytes coincide in value terms.
        assert cache_key("k", (np.arange(5, dtype=np.int64),)) != cache_key(
            "k", (np.arange(5, dtype=np.float64),)
        )

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            cache_key("k", (object(),))


class TestSeedToken:
    def test_int_and_bool(self):
        assert seed_token(42) == ("int", 42)
        assert seed_token(np.int64(42)) == ("int", 42)
        assert seed_token(True) == ("int", 1)

    def test_seedsequence(self):
        ss = np.random.SeedSequence(7)
        token = seed_token(ss)
        assert token is not None
        assert token == seed_token(np.random.SeedSequence(7))
        assert token != seed_token(np.random.SeedSequence(8))
        child = ss.spawn(1)[0]
        assert seed_token(child) != token

    def test_uncacheable_material(self):
        assert seed_token(None) is None
        assert seed_token(np.random.default_rng(0)) is None

    def test_os_entropy_seedsequence_is_still_stable(self):
        # SeedSequence() records the entropy it drew, so the object
        # reproduces its stream and makes valid (unique) key material.
        ss = np.random.SeedSequence()
        assert seed_token(ss) == seed_token(ss)
        assert seed_token(ss) != seed_token(np.random.SeedSequence())


class TestGraphDigest:
    def test_content_addressing(self):
        g1 = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        g2 = Graph(3, [(1, 2, 3.0), (0, 1, 2.0)])  # other input order
        assert g1.digest() == g2.digest()
        assert g1.digest() == g1.digest()  # memoised

    def test_sensitivity(self):
        base = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert base.digest() != Graph(3, [(0, 1, 2.0), (1, 2, 3.5)]).digest()
        assert base.digest() != Graph(4, [(0, 1, 2.0), (1, 2, 3.0)]).digest()
        assert base.digest() != Graph(3, [(0, 1, 2.0), (0, 2, 3.0)]).digest()

    def test_from_edge_arrays_matches(self):
        g1 = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        g2 = Graph.from_edge_arrays(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([2.0, 3.0]),
        )
        assert g1.digest() == g2.digest()

    def test_survives_pickle(self):
        import pickle

        g = planted_partition(2, 4, 0.8, 0.1, seed=3)
        assert pickle.loads(pickle.dumps(g)).digest() == g.digest()


class TestMemoryTier:
    def test_roundtrip_and_stats(self):
        cache = SolverCache(max_bytes=1 << 20)
        hit, _ = cache.lookup("trees", (1,))
        assert not hit
        cache.store("trees", (1,), [1, 2, 3])
        hit, value = cache.lookup("trees", (1,))
        assert hit and value == [1, 2, 3]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate() == pytest.approx(0.5)
        assert cache.stats.by_kind["trees"]["hits"] == 1

    def test_lru_eviction_under_byte_budget(self):
        payload = np.zeros(128, dtype=np.float64)
        per_entry = estimate_nbytes(payload)
        cache = SolverCache(max_bytes=3 * per_entry)
        for i in range(5):
            cache.store("k", (i,), payload.copy())
        assert len(cache) <= 3
        assert cache.nbytes <= cache.max_bytes
        assert cache.stats.evictions >= 2
        # Oldest entries evicted first; newest still resident.
        hit, _ = cache.lookup("k", (0,))
        assert not hit
        hit, _ = cache.lookup("k", (4,))
        assert hit

    def test_lookup_refreshes_recency(self):
        payload = np.zeros(128, dtype=np.float64)
        per_entry = estimate_nbytes(payload)
        cache = SolverCache(max_bytes=2 * per_entry)
        cache.store("k", (0,), payload.copy())
        cache.store("k", (1,), payload.copy())
        cache.lookup("k", (0,))  # 0 becomes most recent
        cache.store("k", (2,), payload.copy())  # evicts 1, not 0
        assert cache.lookup("k", (0,))[0]
        assert not cache.lookup("k", (1,))[0]

    def test_oversized_entry_not_resident(self):
        cache = SolverCache(max_bytes=8)
        cache.store("k", (0,), np.zeros(1024))
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_store_overwrites_in_place(self):
        cache = SolverCache(max_bytes=1 << 20)
        cache.store("k", (0,), "old")
        cache.store("k", (0,), "new")
        assert len(cache) == 1
        assert cache.lookup("k", (0,))[1] == "new"

    def test_get_or_build(self):
        cache = SolverCache(max_bytes=1 << 20)
        calls = []

        def build():
            calls.append(1)
            return "built"

        assert cache.get_or_build("k", (1,), build) == "built"
        assert cache.get_or_build("k", (1,), build) == "built"
        assert len(calls) == 1
        # Uncacheable parts build every time and never touch the cache.
        assert cache.get_or_build("k", None, build) == "built"
        assert cache.get_or_build("k", None, build) == "built"
        assert len(calls) == 3

    def test_disabled_cache_is_inert(self):
        cache = SolverCache(max_bytes=1 << 20, enabled=False)
        cache.store("k", (1,), "v")
        assert not cache.lookup("k", (1,))[0]
        assert len(cache) == 0


class TestDiskTier:
    def test_persist_and_promote(self, tmp_path):
        disk = tmp_path / "cachedir"
        first = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        first.store("gomory_hu", (1,), (np.arange(4), np.ones(4)))
        assert list(disk.glob("gomory_hu/*.pkl"))

        # A fresh cache (new process, conceptually) hits via disk.
        second = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        hit, value = second.lookup("gomory_hu", (1,))
        assert hit
        assert np.array_equal(value[0], np.arange(4))
        assert second.stats.disk_hits == 1
        # Promoted into memory: the next lookup is a memory hit.
        second.lookup("gomory_hu", (1,))
        assert second.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        disk = tmp_path / "cachedir"
        cache = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        key = cache.store("k", (1,), "v")
        path = disk / "k" / f"{key}.pkl"
        path.write_bytes(b"not a pickle")
        fresh = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        assert not fresh.lookup("k", (1,))[0]
        assert not path.exists()  # dropped on read failure

    def test_clear_tiers(self, tmp_path):
        disk = tmp_path / "cachedir"
        cache = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        cache.store("a", (1,), "x")
        cache.store("b", (2,), "y")
        dropped = cache.clear(memory=True, disk=False)
        assert dropped["memory_entries"] == 2
        assert dropped["disk_files"] == 0
        assert len(cache) == 0
        assert cache.lookup("a", (1,))[0]  # still on disk
        dropped = cache.clear()
        assert dropped["disk_files"] == 2
        assert not cache.lookup("b", (2,))[0]

    def test_disk_stats(self, tmp_path):
        disk = tmp_path / "cachedir"
        cache = SolverCache(max_bytes=1 << 20, disk_dir=str(disk))
        cache.store("trees", (1,), list(range(100)))
        info = cache.disk_stats()
        assert info["files"] == 1
        assert info["bytes"] > 0
        assert info["by_kind"]["trees"]["files"] == 1

    def test_describe_breaks_memory_tier_down_by_kind(self):
        cache = SolverCache(max_bytes=1 << 20)
        cache.store("trees", (1,), list(range(100)))
        cache.store("subtree_tables", (1,), "a")
        cache.store("subtree_tables", (2,), "b")
        mem = cache.describe()["memory"]
        by_kind = mem["by_kind"]
        assert by_kind["subtree_tables"]["entries"] == 2
        assert by_kind["trees"]["entries"] == 1
        assert sum(k["entries"] for k in by_kind.values()) == mem["entries"]
        assert sum(k["bytes"] for k in by_kind.values()) == mem["bytes"]


class TestConfigPlumbing:
    def test_env_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        cache = SolverCache()
        assert cache.max_bytes == 4096
        assert str(cache.disk_dir).endswith("env-cache")
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert SolverCache().enabled is False

    def test_cacheconfig_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(max_bytes=-1)
        assert CacheConfig().enabled is True

    def test_apply_config_shrinks_and_evicts(self):
        cache = SolverCache(max_bytes=1 << 20)
        cache.store("k", (1,), np.zeros(256))
        cache.apply_config(CacheConfig(max_bytes=8))
        assert cache.max_bytes == 8
        assert len(cache) == 0

    def test_configure_cache_replaces_shared_instance(self, tmp_path):
        configure_cache(max_bytes=1234, disk_dir=str(tmp_path / "d"))
        cache = get_cache()
        assert cache.max_bytes == 1234
        assert get_cache() is cache


class TestMetricsWiring:
    def test_hit_miss_eviction_counters(self):
        registry = get_registry()
        registry.reset()
        payload = np.zeros(256, dtype=np.float64)
        cache = SolverCache(max_bytes=2 * estimate_nbytes(payload))
        cache.lookup("trees", (1,))  # miss
        cache.store("trees", (1,), payload.copy())
        cache.lookup("trees", (1,))  # hit
        for i in range(2, 6):
            cache.store("trees", (i,), payload.copy())  # forces evictions

        assert registry.get("repro_cache_misses_total").value(kind="trees") == 1
        assert (
            registry.get("repro_cache_hits_total").value(kind="trees", tier="memory")
            == 1
        )
        assert registry.get("repro_cache_evictions_total").value() >= 3
        assert registry.get("repro_cache_bytes").value() == cache.nbytes
        assert registry.get("repro_cache_entries").value() == len(cache)
        hist = registry.get("repro_cache_lookup_seconds")
        assert hist.snapshot()["count"] == 2
