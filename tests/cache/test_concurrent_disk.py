"""Concurrent-writer safety of the disk tier.

Two processes storing the same content-addressed key must never corrupt
the entry: each writer stages into its own ``O_EXCL`` temp file (pid +
uuid in the name) and publishes with an atomic rename, so the survivor
is always one writer's complete bytes.
"""

import multiprocessing as mp
import pickle

import numpy as np
import pytest

from repro.cache.cache import SolverCache


def _store_many(disk_dir: str, start_evt, rounds: int) -> None:
    """Worker: hammer the same keys ``rounds`` times."""
    cache = SolverCache(max_bytes=1, disk_dir=disk_dir)  # tiny memory tier
    start_evt.wait()
    for r in range(rounds):
        for k in range(8):
            cache.store("trees", ("entry", k), {"k": k, "blob": np.arange(256)})


class TestConcurrentDiskWriters:
    def test_two_writers_same_key_never_corrupt(self, tmp_path):
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        start = ctx.Event()
        procs = [
            ctx.Process(target=_store_many, args=(str(tmp_path), start, 20))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        start.set()  # release both writers at once to maximise interleaving
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        # No temp droppings left behind...
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        # ...and every entry on disk unpickles to complete content.
        entries = list(tmp_path.rglob("*.pkl"))
        assert len(entries) == 8
        for path in entries:
            value = pickle.loads(path.read_bytes())
            assert np.array_equal(value["blob"], np.arange(256))

    def test_reader_sees_whole_entry_after_concurrent_store(self, tmp_path):
        cache = SolverCache(max_bytes=1, disk_dir=str(tmp_path))
        cache.store("trees", ("entry", 0), {"k": 0, "blob": np.arange(256)})
        fresh = SolverCache(max_bytes=1, disk_dir=str(tmp_path))
        hit, value = fresh.lookup("trees", ("entry", 0))
        assert hit
        assert np.array_equal(value["blob"], np.arange(256))
