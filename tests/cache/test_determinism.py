"""Determinism under caching: warm results must be bit-for-bit cold results.

The cache is allowed to change *when* work happens, never *what* is
produced — these tests pin that contract at every integration point:
engine runs, the cached builders, and streaming re-optimisation.
"""

import numpy as np
import pytest

from repro import SolverConfig, run_pipeline
from repro.cache import CacheConfig, configure_cache, get_cache
from repro.decomposition.racke import racke_ensemble
from repro.flow.gomory_hu import gomory_hu_tree
from repro.graph.generators import planted_partition, random_demands
from repro.graph.spectral import fiedler_vector
from repro.hierarchy.hierarchy import Hierarchy
from repro.streaming.online import OnlinePlacer


@pytest.fixture
def instance():
    hier = Hierarchy([2, 4], [10.0, 3.0, 0.0])
    g = planted_partition(4, 6, 0.9, 0.05, seed=11)
    d = random_demands(g.n, hier.total_capacity, fill=0.6, skew=0.3, seed=12)
    return g, hier, d


class TestEngineColdVsWarm:
    def test_warm_run_identical_and_skips_tree_build(self, instance):
        g, hier, d = instance
        cfg = SolverConfig(seed=0, n_trees=4, refine=False)
        cold = run_pipeline(g, hier, d, cfg)
        warm = run_pipeline(g, hier, d, cfg)

        assert warm.cost == cold.cost
        assert np.array_equal(warm.placement.leaf_of, cold.placement.leaf_of)
        assert warm.tree_costs == cold.tree_costs
        assert warm.dp_costs == cold.dp_costs

        cold_span = cold.telemetry.root.lookup("trees")
        warm_span = warm.telemetry.root.lookup("trees")
        assert cold_span.counters.get("cache_misses") == 1.0
        assert "cache_hits" not in cold_span.counters
        assert warm_span.counters.get("cache_hits") == 1.0
        assert "cache_misses" not in warm_span.counters
        # The warm embed stage did no tree construction at all.
        assert get_cache().stats.by_kind["trees"]["hits"] == 1

    def test_content_addressing_hits_for_equal_graph_objects(self, instance):
        g, hier, d = instance
        cfg = SolverConfig(seed=0, n_trees=4, refine=False)
        run_pipeline(g, hier, d, cfg)
        # A structurally identical but distinct Graph object still hits.
        g2 = planted_partition(4, 6, 0.9, 0.05, seed=11)
        assert g2 is not g and g2.digest() == g.digest()
        warm = run_pipeline(g2, hier, d, cfg)
        assert warm.telemetry.root.lookup("trees").counters.get("cache_hits") == 1.0

    def test_no_cache_config_matches_cached_result(self, instance):
        g, hier, d = instance
        cached = run_pipeline(g, hier, d, SolverConfig(seed=0, n_trees=4, refine=False))
        off = run_pipeline(
            g,
            hier,
            d,
            SolverConfig(
                seed=0, n_trees=4, refine=False, cache=CacheConfig(enabled=False)
            ),
        )
        assert off.cost == cached.cost
        assert np.array_equal(off.placement.leaf_of, cached.placement.leaf_of)
        span = off.telemetry.root.lookup("trees")
        assert "cache_hits" not in span.counters
        assert "cache_misses" not in span.counters

    def test_different_seeds_and_params_do_not_collide(self, instance):
        g, hier, d = instance
        run_pipeline(g, hier, d, SolverConfig(seed=0, n_trees=4, refine=False))
        for cfg in (
            SolverConfig(seed=1, n_trees=4, refine=False),
            SolverConfig(seed=0, n_trees=3, refine=False),
            SolverConfig(
                seed=0, n_trees=4, refine=False, tree_methods=("spectral", "mincut")
            ),
        ):
            result = run_pipeline(g, hier, d, cfg)
            span = result.telemetry.root.lookup("trees")
            assert span.counters.get("cache_misses") == 1.0

    def test_eviction_under_tiny_budget_stays_correct(self, instance):
        g, hier, d = instance
        configure_cache(max_bytes=64)  # nothing fits: every store evicts/skips
        cfg = SolverConfig(seed=0, n_trees=4, refine=False)
        first = run_pipeline(g, hier, d, cfg)
        second = run_pipeline(g, hier, d, cfg)
        assert second.cost == first.cost
        assert np.array_equal(second.placement.leaf_of, first.placement.leaf_of)
        # Nothing resident -> the second run was a miss, not a hit.
        assert second.telemetry.root.lookup("trees").counters.get("cache_misses") == 1.0
        assert len(get_cache()) == 0


class TestBuilderCaching:
    def test_racke_ensemble_warm_equals_cold(self, instance):
        g, _, _ = instance
        cold = racke_ensemble(g, n_trees=4, seed=5)
        warm = racke_ensemble(g, n_trees=4, seed=5)
        assert get_cache().stats.by_kind["trees"]["hits"] == 1
        assert len(warm) == len(cold)
        for a, b in zip(cold, warm):
            assert a.method == b.method
            assert np.array_equal(a.graph.edges_w, b.graph.edges_w)

    def test_racke_ensemble_seed_none_bypasses_cache(self, instance):
        g, _, _ = instance
        racke_ensemble(g, n_trees=2, seed=None)
        racke_ensemble(g, n_trees=2, seed=None)
        assert "trees" not in get_cache().stats.by_kind

    def test_gomory_hu_warm_copy_is_safe(self, instance):
        g, _, _ = instance
        p1, f1 = gomory_hu_tree(g)
        p2, f2 = gomory_hu_tree(g)
        assert np.array_equal(p1, p2) and np.array_equal(f1, f2)
        assert get_cache().stats.by_kind["gomory_hu"]["hits"] == 1
        p2[0] = 99  # mutating a hit must not poison the cache
        p3, _ = gomory_hu_tree(g)
        assert p3[0] == p1[0]

    def test_fiedler_preserves_rng_stream_on_hit(self, instance):
        g, _, _ = instance
        # Cold pass: one shared generator across two calls.
        rng_cold = np.random.default_rng(123)
        cold_a = fiedler_vector(g, seed=rng_cold)
        cold_after = rng_cold.standard_normal(3)
        # Warm pass: the same generator sequence must consume identical
        # entropy even though the eigensolve itself is skipped.
        rng_warm = np.random.default_rng(123)
        warm_a = fiedler_vector(g, seed=rng_warm)
        warm_after = rng_warm.standard_normal(3)
        assert np.array_equal(cold_a, warm_a)
        assert np.array_equal(cold_after, warm_after)
        assert get_cache().stats.by_kind["fiedler"]["hits"] == 1


class TestStreamingColdVsWarm:
    def _run_sequence(self, cache_enabled: bool):
        hier = Hierarchy([2, 4], [10.0, 3.0, 0.0], leaf_capacity=4.0)
        cfg = SolverConfig(
            seed=0, n_trees=3, refine=False, cache=CacheConfig(enabled=cache_enabled)
        )
        placer = OnlinePlacer(hier, cfg)
        rng = np.random.default_rng(2)
        for task in range(12):
            edges = tuple(
                (other, 1.0) for other in range(task) if rng.random() < 0.4
            )
            placer.arrive(task, 0.5, edges)
        costs, migrations = [], []
        for _ in range(4):
            moved = placer.reoptimize()
            migrations.append(moved)
            costs.append(placer.cost())
        return placer, costs, migrations

    def test_reoptimize_sequence_identical_and_hits(self):
        placer_on, costs_on, migrations_on = self._run_sequence(True)
        configure_cache()  # drop entries so the "off" pass is independent
        placer_off, costs_off, migrations_off = self._run_sequence(False)

        assert costs_on == costs_off
        assert migrations_on == migrations_off
        assert placer_on.counters.migrations == placer_off.counters.migrations
        assert np.array_equal(
            placer_on.live_graph()[2], placer_off.live_graph()[2]
        )
        # Unchanged live graph between calls 2..4 -> all ensemble hits.
        assert placer_on.counters.tree_cache_misses == 1
        assert placer_on.counters.tree_cache_hits == 3
        assert placer_off.counters.tree_cache_hits == 0
        assert placer_off.counters.tree_cache_misses == 0
