"""Shared fixtures: canonical small instances reused across the suite."""

from __future__ import annotations

import pytest

from repro import Graph, Hierarchy
from repro.graph import grid_2d, planted_partition, random_demands


@pytest.fixture
def path3() -> Graph:
    """Path a–b–c with weights 2 and 3."""
    return Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])


@pytest.fixture
def triangle() -> Graph:
    """Unit triangle."""
    return Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])


@pytest.fixture
def k4() -> Graph:
    """Complete graph on 4 vertices, unit weights."""
    edges = [(i, j, 1.0) for i in range(4) for j in range(i + 1, 4)]
    return Graph(4, edges)


@pytest.fixture
def grid44() -> Graph:
    """4x4 unit mesh."""
    return grid_2d(4, 4)


@pytest.fixture
def two_blocks() -> Graph:
    """Two dense 6-cliques joined by a single light edge."""
    edges = []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                edges.append((base + i, base + j, 5.0))
    edges.append((0, 6, 0.5))
    return Graph(12, edges)


@pytest.fixture
def hier_2x4() -> Hierarchy:
    """2 sockets x 4 cores, multipliers 10 / 3 / 0."""
    return Hierarchy([2, 4], [10.0, 3.0, 0.0])


@pytest.fixture
def hier_flat8() -> Hierarchy:
    """Flat hierarchy of 8 leaves (k-BGP form)."""
    return Hierarchy([8], [1.0, 0.0])


@pytest.fixture
def hier_deep() -> Hierarchy:
    """Height-3 hierarchy 2x2x2 with strictly decreasing multipliers."""
    return Hierarchy([2, 2, 2], [8.0, 4.0, 1.0, 0.0])


@pytest.fixture
def clustered_instance(hier_2x4):
    """A clusterable HGP instance: 4 planted blocks on a 2x4 hierarchy."""
    g = planted_partition(4, 6, 0.9, 0.05, seed=11)
    d = random_demands(g.n, hier_2x4.total_capacity, fill=0.6, skew=0.3, seed=12)
    return g, hier_2x4, d
